"""Energy model (paper Section 5.2, Tables 3 and 4).

* :mod:`repro.energy.params` -- the Table 3 constants (32 nm, 1 GHz,
  1.9 W dynamic / 0.9 W leakage per SM, 2.37 mW/KB SRAM leakage,
  40 pJ/bit DRAM).
* :mod:`repro.energy.sram` -- per-access SRAM bank energy.  The paper
  used CACTI plus synthesis data; we substitute a power-law fit
  ``E = a * C^b`` computed from the paper's own Table 4 points, which
  reproduces the published numbers within ~3% and extrapolates to the
  arbitrary bank sizes the unified allocator can produce.
* :mod:`repro.energy.model` -- chip-level accounting: constant core
  dynamic energy (priced at the baseline configuration's runtime, per
  the paper), per-access bank energy with the +10% wiring overhead for
  unified shared/cache accesses, capacity-dependent SRAM leakage, and
  DRAM energy.
"""

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import EnergyParams
from repro.energy.sram import SRAMEnergyFit, TABLE4_POINTS, bank_energy

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "SRAMEnergyFit",
    "TABLE4_POINTS",
    "bank_energy",
]
