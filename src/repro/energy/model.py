"""Chip-level energy accounting (paper Section 5.2).

The paper's accounting, reproduced here:

* **Core dynamic energy** is constant per benchmark across memory
  configurations: the SM's 1.9 W dynamic power priced at the *baseline*
  configuration's runtime ("We use the performance of the baseline
  256/64/64 configuration to calculate SM dynamic power for each
  benchmark").  Only bank accesses and DRAM vary between designs.
* **Bank energy**: every MRF/shared/cache 16-byte access priced at its
  structure's bank size (Table 4 fit).  Unified shared/cache accesses
  (including tag lookups) pay the +10% wiring overhead of the extra
  4:1 cluster mux and longer crossbar (Section 5.2).
* **SRAM leakage** scales with deployed capacity (2.37 mW/KB) and with
  the configuration's own runtime -- faster configs leak less.
* **DRAM energy**: 40 pJ/bit transferred.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import DesignStyle
from repro.energy.params import EnergyParams
from repro.energy.sram import READ_FIT, WRITE_FIT
from repro.sm.result import SimResult

PJ = 1e-12


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Per-component energy of one simulated run, in joules."""

    core_dynamic_j: float
    bank_j: float
    leakage_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return self.core_dynamic_j + self.bank_j + self.leakage_j + self.dram_j

    def ratio_to(self, baseline: "EnergyBreakdown") -> float:
        return self.total_j / baseline.total_j

    def summary(self) -> str:
        t = self.total_j
        return (
            f"total {t * 1e3:.3f} mJ = "
            f"core {self.core_dynamic_j / t:.0%} + banks {self.bank_j / t:.0%} + "
            f"leakage {self.leakage_j / t:.0%} + DRAM {self.dram_j / t:.0%}"
        )


class EnergyModel:
    """Prices a :class:`~repro.sm.result.SimResult` in joules."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def bank_energy_j(self, result: SimResult) -> float:
        """Total bank + hierarchy + tag access energy."""
        p = self.params
        part = result.partition
        c = result.energy_counts
        rf_kb = part.rf_geometry.bank_kb
        smem_kb = part.smem_geometry.bank_kb
        cache_kb = part.cache_geometry.bank_kb
        overhead = (
            1.0 + p.unified_wire_overhead
            if part.style is DesignStyle.UNIFIED
            else 1.0
        )
        pj = 0.0
        pj += c.mrf_reads * READ_FIT(rf_kb) + c.mrf_writes * WRITE_FIT(rf_kb)
        pj += overhead * (
            c.shared_row_reads * READ_FIT(smem_kb)
            + c.shared_row_writes * WRITE_FIT(smem_kb)
            + c.cache_row_reads * READ_FIT(cache_kb)
            + c.cache_row_writes * WRITE_FIT(cache_kb)
            + c.tag_lookups * p.tag_lookup_pj
        )
        pj += (c.orf_reads + c.orf_writes) * p.orf_access_pj
        pj += (c.lrf_reads + c.lrf_writes) * p.lrf_access_pj
        return pj * PJ

    def leakage_w(self, partition) -> float:
        """One SM's leakage power under ``partition`` (core + SRAM)."""
        p = self.params
        kb = (partition.total_bytes + partition.tag_bytes) / 1024
        return p.sm_core_leakage_w + p.sram_leakage_w(kb)

    def leakage_j(self, result: SimResult) -> float:
        return self.leakage_w(result.partition) * result.cycles * self.params.cycle_seconds

    def dram_j(self, result: SimResult) -> float:
        return result.energy_counts.dram_bits * self.params.dram_energy_pj_per_bit * PJ

    def core_dynamic_j(self, baseline_cycles: float) -> float:
        return self.params.sm_dynamic_power_w * baseline_cycles * self.params.cycle_seconds

    def evaluate(
        self, result: SimResult, baseline_cycles: float | None = None
    ) -> EnergyBreakdown:
        """Price one run.

        Args:
            result: The simulated run.
            baseline_cycles: Runtime of the baseline 256/64/64 partition
                for the same benchmark, used to price the constant core
                dynamic energy.  Defaults to the run's own cycles (exact
                when pricing the baseline itself).
        """
        base = baseline_cycles if baseline_cycles is not None else result.cycles
        return EnergyBreakdown(
            core_dynamic_j=self.core_dynamic_j(base),
            bank_j=self.bank_energy_j(result),
            leakage_j=self.leakage_j(result),
            dram_j=self.dram_j(result),
        )
