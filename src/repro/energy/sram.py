"""SRAM bank access energy -- CACTI substitute calibrated to Table 4.

The paper derives per-access energies from CACTI and synthesis results
(Section 5.2) and publishes the operating points in Table 4:

============== ========= ========== ===========
Structure      Bank size Read (pJ)  Write (pJ)
============== ========= ========== ===========
Shared/cache    2 KB      3.9        5.1
MRF             8 KB      9.8       11.8
Unified        12 KB     12.1       14.9
============== ========= ========== ===========

Access energy of an SRAM grows sublinearly with capacity (longer
bit/word lines), which a power law ``E = a * C^b`` captures well.  We
fit the law through the published points by least squares in log space
at import time; the fit reproduces every Table 4 entry within ~3% and
extrapolates to the arbitrary bank sizes the unified allocator creates
(e.g. a 4 KB Fermi-like pool bank or a 10 KB unified bank at 320 KB
total capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: (bank_kb, read_pj, write_pj) -- paper Table 4.
TABLE4_POINTS: tuple[tuple[float, float, float], ...] = (
    (2.0, 3.9, 5.1),
    (8.0, 9.8, 11.8),
    (12.0, 12.1, 14.9),
)


def _loglog_fit(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares fit of E = a * C^b in log space; returns (a, b)."""
    xs = [math.log(c) for c, _ in points]
    ys = [math.log(e) for _, e in points]
    n = len(points)
    mx = sum(xs) / n
    my = sum(ys) / n
    var = sum((x - mx) ** 2 for x in xs)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    b = cov / var
    a = math.exp(my - b * mx)
    return a, b


@dataclass(frozen=True, slots=True)
class SRAMEnergyFit:
    """Power-law energy model for one access type."""

    a: float
    b: float

    def __call__(self, bank_kb: float) -> float:
        if bank_kb < 0:
            raise ValueError("bank capacity must be non-negative")
        if bank_kb == 0:
            return 0.0
        return self.a * bank_kb**self.b


READ_FIT = SRAMEnergyFit(*_loglog_fit([(c, r) for c, r, _ in TABLE4_POINTS]))
WRITE_FIT = SRAMEnergyFit(*_loglog_fit([(c, w) for c, _, w in TABLE4_POINTS]))


def bank_energy(bank_kb: float, write: bool = False) -> float:
    """Energy (pJ) of one 16-byte access to a bank of ``bank_kb`` KB."""
    return (WRITE_FIT if write else READ_FIT)(bank_kb)
