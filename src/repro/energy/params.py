"""Energy parameters -- paper Table 3 plus hierarchy constants.

The LRF/ORF access energies are not in Table 3; they come from the
register-file-hierarchy prior work the paper builds on ([8, 9]), which
reports the small structures costing roughly an order of magnitude less
than an MRF bank access.  They are identical across designs, so they
only add a common offset to both sides of every comparison.

Note on leakage: the paper states both "0.2 W of SRAM leakage at 384 KB"
and "2.37 mW per KB" (which gives 0.91 W at 384 KB).  The two are
inconsistent; we follow the 2.37 mW/KB figure because it is the one the
paper says it uses to adjust leakage across capacities (Section 6.4
depends on that adjustment).  EXPERIMENTS.md records the deviation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EnergyParams:
    """Table 3 constants (32 nm process, 1 GHz, 0.9 V)."""

    frequency_ghz: float = 1.0
    wire_energy_pj_per_mm: float = 1.9
    sm_dynamic_power_w: float = 1.9
    sm_core_leakage_w: float = 0.7
    sram_leakage_mw_per_kb: float = 2.37
    dram_energy_pj_per_bit: float = 40.0
    #: Extra wiring/muxing energy for unified shared/cache accesses
    #: (Section 5.2: modelled as 10% of bank access energy).
    unified_wire_overhead: float = 0.10
    #: Per-access energy of the small hierarchy structures (pJ), from [9].
    lrf_access_pj: float = 0.4
    orf_access_pj: float = 0.9
    #: Cache tag lookup energy (pJ per lookup).
    tag_lookup_pj: float = 1.0
    #: Chip design power at 32 nm (paper Section 5.2: 130 W).
    chip_power_w: float = 130.0
    #: Share of chip energy consumed by the SMs; the remainder is the
    #: memory system (paper Section 5.2: 70% / 30%).
    sm_energy_share: float = 0.70

    @property
    def cycle_seconds(self) -> float:
        return 1e-9 / self.frequency_ghz

    def sram_leakage_w(self, capacity_kb: float) -> float:
        return self.sram_leakage_mw_per_kb * 1e-3 * capacity_kb
