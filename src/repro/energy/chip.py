"""Chip-level aggregation of single-SM results (paper Section 5.2).

The paper simulates one SM and scales to the chip analytically: a 32-SM
GPU at 32 nm consuming 130 W, with SMs taking 70% of chip energy and
the memory system 30%, and leakage one third of chip power.  This
module performs the same scale-up so results can be quoted as
chip-level power, energy, and efficiency:

* every SM runs the same workload share, so chip runtime = SM runtime;
* SM energy (dynamic core + banks + SRAM leakage) multiplies by 32;
* DRAM energy is already chip-shared in the SM model (each SM's
  40 pJ/bit covers its own traffic; 32 SMs carry 32 shares);
* the remaining (non-DRAM) memory-system power closes the budget to
  the paper's 130 W at baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import EnergyParams
from repro.sm.result import SimResult

#: SMs per chip (paper Section 2).
NUM_SMS = 32
#: Chip design power at 32 nm (paper Section 5.2).
CHIP_POWER_W = 130.0
#: Share of chip energy consumed by the SMs (the rest: memory system).
SM_ENERGY_SHARE = 0.70


@dataclass(frozen=True)
class ChipSummary:
    """Chip-level view of one simulated configuration."""

    runtime_s: float
    sm_energy_j: float  # all 32 SMs
    memory_system_j: float  # DRAM + the non-DRAM memory-system share
    total_j: float
    avg_power_w: float
    energy_per_instruction_pj: float

    def summary(self) -> str:
        return (
            f"chip: {self.runtime_s * 1e6:.1f} us, {self.total_j * 1e3:.2f} mJ, "
            f"{self.avg_power_w:.0f} W average"
        )


class ChipModel:
    """Scales a :class:`SimResult` to the paper's 32-SM, 130 W chip."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()
        self.energy_model = EnergyModel(self.params)

    def non_dram_memory_power_w(self) -> float:
        """Constant power of the non-DRAM memory system (crossbars, L2,
        controllers): the residual of the 130 W budget after the SM
        share, minus what DRAM traffic accounts for dynamically."""
        return CHIP_POWER_W * (1.0 - SM_ENERGY_SHARE) / 2.0

    def evaluate(
        self, result: SimResult, baseline_cycles: float | None = None
    ) -> ChipSummary:
        sm: EnergyBreakdown = self.energy_model.evaluate(result, baseline_cycles)
        runtime_s = result.cycles * self.params.cycle_seconds
        sm_all = NUM_SMS * (sm.core_dynamic_j + sm.bank_j + sm.leakage_j)
        dram_all = NUM_SMS * sm.dram_j
        mem_rest = self.non_dram_memory_power_w() * runtime_s
        total = sm_all + dram_all + mem_rest
        return ChipSummary(
            runtime_s=runtime_s,
            sm_energy_j=sm_all,
            memory_system_j=dram_all + mem_rest,
            total_j=total,
            avg_power_w=total / runtime_s if runtime_s else 0.0,
            energy_per_instruction_pj=(
                total / (NUM_SMS * result.instructions) * 1e12
                if result.instructions
                else 0.0
            ),
        )
