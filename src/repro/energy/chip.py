"""Chip-level energy: analytic scale-up and measured multi-SM pricing.

The paper simulates one SM and scales to the chip analytically (Section
5.2): a 32-SM GPU at 32 nm consuming 130 W, with SMs taking 70% of chip
energy and the memory system 30%.  :meth:`ChipModel.evaluate` performs
that scale-up from a single :class:`~repro.sm.result.SimResult`:

* every SM runs the same workload share, so chip runtime = SM runtime;
* SM energy (dynamic core + banks + SRAM leakage) multiplies by N;
* DRAM energy is already chip-shared in the SM model (each SM's
  40 pJ/bit covers its own traffic; N SMs carry N shares);
* the remaining (non-DRAM) memory-system power closes the budget to
  the chip design power at baseline.

:meth:`ChipModel.evaluate_chip` replaces the scale-up with measurement:
given a :class:`~repro.chip.result.ChipResult` from
:func:`repro.chip.simulate_chip`, each SM's bank and DRAM energies come
from its *own* counters (SMs doing more work, or stalled behind the
shared bus, are priced as such), and leakage is priced at the chip
makespan -- an SM that drained its CTAs early still leaks until the
last one finishes.  The chip power and SM-share constants are
:class:`~repro.energy.params.EnergyParams` fields (paper values as
defaults), and the SM count comes from the configuration, not a
module-level constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import EnergyParams
from repro.sm.result import SimResult


@dataclass(frozen=True)
class ChipSummary:
    """Chip-level view of one simulated configuration."""

    runtime_s: float
    sm_energy_j: float  # all SMs: dynamic core + banks + leakage
    memory_system_j: float  # DRAM + the non-DRAM memory-system share
    total_j: float
    avg_power_w: float
    energy_per_instruction_pj: float

    def summary(self) -> str:
        return (
            f"chip: {self.runtime_s * 1e6:.1f} us, {self.total_j * 1e3:.2f} mJ, "
            f"{self.avg_power_w:.0f} W average"
        )


class ChipModel:
    """Prices chip-level energy, analytically or from measured SMs.

    Args:
        params: Table 3 constants plus the chip budget
            (``chip_power_w``, ``sm_energy_share``).
        num_sms: SMs assumed by the analytic :meth:`evaluate` scale-up
            (paper: 32).  The measured :meth:`evaluate_chip` path uses
            the SM count of the run it is handed instead.
    """

    def __init__(self, params: EnergyParams | None = None, num_sms: int = 32) -> None:
        if num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        self.params = params or EnergyParams()
        self.num_sms = num_sms
        self.energy_model = EnergyModel(self.params)

    def non_dram_memory_power_w(self) -> float:
        """Constant power of the non-DRAM memory system (crossbars, L2,
        controllers): the residual of the chip budget after the SM
        share, minus what DRAM traffic accounts for dynamically."""
        p = self.params
        return p.chip_power_w * (1.0 - p.sm_energy_share) / 2.0

    def evaluate(
        self, result: SimResult, baseline_cycles: float | None = None
    ) -> ChipSummary:
        """The paper's analytic scale-up of one SM to ``num_sms``."""
        sm: EnergyBreakdown = self.energy_model.evaluate(result, baseline_cycles)
        n = self.num_sms
        runtime_s = result.cycles * self.params.cycle_seconds
        sm_all = n * (sm.core_dynamic_j + sm.bank_j + sm.leakage_j)
        dram_all = n * sm.dram_j
        mem_rest = self.non_dram_memory_power_w() * runtime_s
        total = sm_all + dram_all + mem_rest
        return ChipSummary(
            runtime_s=runtime_s,
            sm_energy_j=sm_all,
            memory_system_j=dram_all + mem_rest,
            total_j=total,
            avg_power_w=total / runtime_s if runtime_s else 0.0,
            energy_per_instruction_pj=(
                total / (n * result.instructions) * 1e12
                if result.instructions
                else 0.0
            ),
        )

    def evaluate_chip(
        self, chip_result, baseline_cycles: float | None = None
    ) -> ChipSummary:
        """Price a measured multi-SM run (no per-SM uniformity assumed).

        Args:
            chip_result: A :class:`~repro.chip.result.ChipResult`; bank
                and DRAM energies come from each SM's own counters.
            baseline_cycles: Baseline *chip* makespan for the same
                benchmark, pricing the constant core dynamic power (the
                paper's convention); defaults to this run's makespan.
        """
        em = self.energy_model
        p = self.params
        runtime_s = chip_result.cycles * p.cycle_seconds
        base = baseline_cycles if baseline_cycles is not None else chip_result.cycles
        n = chip_result.num_sms
        core_j = n * em.core_dynamic_j(base)
        bank_j = sum(em.bank_energy_j(r) for r in chip_result.per_sm)
        # Leakage runs until the *chip* finishes: an SM whose CTAs
        # drained early still leaks while others work.
        leakage_j = n * em.leakage_w(chip_result.partition) * runtime_s
        dram_j = sum(em.dram_j(r) for r in chip_result.per_sm)
        mem_rest = self.non_dram_memory_power_w() * runtime_s
        sm_all = core_j + bank_j + leakage_j
        total = sm_all + dram_j + mem_rest
        instructions = chip_result.instructions
        return ChipSummary(
            runtime_s=runtime_s,
            sm_energy_j=sm_all,
            memory_system_j=dram_j + mem_rest,
            total_j=total,
            avg_power_w=total / runtime_s if runtime_s else 0.0,
            energy_per_instruction_pj=(
                total / instructions * 1e12 if instructions else 0.0
            ),
        )
