"""Benchmark kernels: algorithmic trace generators for the Table 1 suite.

The paper traces 26 CUDA benchmarks with Ocelot (Section 5.1).  We
substitute each with a warp-level re-implementation of the same
algorithm on scaled inputs: the generators execute the real computation
structure (wavefront dynamic programming, blocked matrix multiply,
cyclic reduction, graph traversal, stencils, hashing, ray marching, ...)
and emit per-warp instruction and address streams.  What the paper's
evaluation actually consumes from a trace -- instruction mix, per-thread
register pressure, shared-memory footprint, barrier structure, and
global-memory locality -- is reproduced by construction; see each
module's docstring for the mapping and the engineering targets taken
from Table 1.

Use :mod:`repro.kernels.registry` to enumerate benchmarks::

    from repro.kernels import get_benchmark, all_benchmarks
    trace = get_benchmark("needle").build("small")
"""

from repro.kernels.registry import (
    BENEFIT_SET,
    NO_BENEFIT_SET,
    Benchmark,
    Category,
    all_benchmarks,
    benchmarks_in,
    get_benchmark,
)

__all__ = [
    "BENEFIT_SET",
    "Benchmark",
    "Category",
    "NO_BENEFIT_SET",
    "all_benchmarks",
    "benchmarks_in",
    "get_benchmark",
]
