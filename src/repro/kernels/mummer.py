"""GPU-mummer (Rodinia mummergpu) -- DNA alignment via suffix-tree walks.

Cache-limited (Sections 3.2, 3.3.3, Figures 4, 9).  Table 1: 21
registers/thread, no shared memory, DRAM 1.48x uncached / 1.01x at
64 KB; the paper notes its working set (the reference suffix tree) was
small for their inputs, so the cache benefit is modest but real.

We build an actual suffix *trie* over a seeded random DNA reference
(numpy), capped in node count, and give each thread one query (a
substring of the reference plus mutations).  Each query character is a
data-dependent gather into the node table: the hot top levels of the
trie cache well, deep nodes are scattered -- the locality structure
that makes tree traversal cache-sensitive.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "gpu-mummer"
TARGET_REGS = 21
THREADS_PER_CTA = 256
SEED = 20120613
NODE_BYTES = 32  # child pointers + suffix link + depth

_CONFIG = {
    "tiny": (1024, 256, 12, 1500),
    "small": (4096, 2048, 20, 6000),
    "paper": (65536, 16384, 28, 60000),
}
# (reference length, queries, query length, max trie nodes).  The node
# cap sizes the tree's memory footprint: 6000 nodes x 32 B = 192 KB at
# the default scale, between the 64 KB and 256 KB cache points.

_TREE, _QUERIES, _OUT = region(0), region(1), region(2)


class _Trie:
    """Suffix trie over the 4-letter DNA alphabet, capped in size."""

    def __init__(self, reference: np.ndarray, max_nodes: int) -> None:
        self.children: list[list[int]] = [[-1, -1, -1, -1]]
        n = len(reference)
        for start in range(n):
            node = 0
            for c in reference[start : min(n, start + 24)]:
                nxt = self.children[node][c]
                if nxt < 0:
                    if len(self.children) >= max_nodes:
                        break
                    nxt = len(self.children)
                    self.children.append([-1, -1, -1, -1])
                    self.children[node][c] = nxt
                node = nxt

    def walk(self, query: np.ndarray) -> list[int]:
        """Node index sequence visited while matching a query."""
        node, path = 0, [0]
        for c in query:
            nxt = self.children[node][c]
            if nxt < 0:
                node = 0  # mismatch: restart from the root
            else:
                node = nxt
            path.append(node)
        return path


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    ref_len, num_queries, qlen, max_nodes = _CONFIG[scale]
    rng = np.random.default_rng(SEED)
    reference = rng.integers(0, 4, size=ref_len, dtype=np.int8)
    trie = _Trie(reference, max_nodes=max_nodes)
    warps_per_cta = THREADS_PER_CTA // WARP_SIZE
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_queries // THREADS_PER_CTA,
    )
    # Each thread's query: a reference substring with sparse mutations.
    starts = rng.integers(0, ref_len - qlen, size=num_queries)
    mutations = rng.integers(0, 4, size=(num_queries, qlen), dtype=np.int8)
    mutate = rng.random((num_queries, qlen)) < 0.05

    def query(q: int) -> np.ndarray:
        s = reference[starts[q] : starts[q] + qlen].copy()
        s[mutate[q]] = mutations[q][mutate[q]]
        return s

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        q0 = (cta * warps_per_cta + warp) * WARP_SIZE
        paths = [trie.walk(query(q0 + t)) for t in range(WARP_SIZE)]
        # Load each thread's query once (coalesced byte stream, modelled
        # as word loads every 4 characters).
        for chunk in range(0, qlen, 4):
            qv = b.load_global([_QUERIES + qlen * (q0 + t) + chunk for t in range(WARP_SIZE)])
            b.touch(qv)
        match = b.iconst()
        for step in range(1, qlen + 1):
            addrs = [_TREE + NODE_BYTES * paths[t][step] for t in range(WARP_SIZE)]
            node = b.load_global(addrs, match)
            match = b.alu(match, node)
            match = b.alu(match)
        b.store_global(coalesced(_OUT, q0), match)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
