"""BFS (Rodinia) -- breadth-first search over a large sparse graph.

Cache-limited (Sections 3.2, 3.3.3, Figures 2, 4, 9).  Table 1: 9
registers/thread (the smallest of the suite), no shared memory, DRAM
1.46x uncached and 1.13x at 64 KB: the node and edge lists are re-read
on every frontier level, and their combined footprint sits between the
64 KB and 256 KB cache points at the default scale.

The graph is a seeded random graph generated with numpy.  The real
application launches one kernel per BFS level with every thread
checking frontier membership; we flatten the levels into consecutive
CTA groups of a single launch and encode frontier membership in the
active masks, which preserves both the per-level re-streaming of the
node array and the data-dependent edge/visited gathers.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "bfs"
TARGET_REGS = 9
THREADS_PER_CTA = 256
SEED = 20120612

_CONFIG = {"tiny": (1024, 4), "small": (4096, 4), "paper": (1 << 20, 6)}
# (nodes, average degree)

_NODES, _EDGES, _COST = region(0), region(1), region(2)


def generate_graph(nodes: int, avg_degree: int, seed: int = SEED):
    """Seeded random graph in CSR form: (offsets, targets)."""
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, size=nodes).clip(1, 4 * avg_degree)
    offsets = np.zeros(nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    targets = rng.integers(0, nodes, size=int(offsets[-1]), dtype=np.int64)
    return offsets, targets


def bfs_levels(offsets, targets, source: int = 0):
    """Host-side BFS producing the per-level frontiers."""
    nodes = len(offsets) - 1
    level = np.full(nodes, -1, dtype=np.int64)
    level[source] = 0
    frontier = [source]
    levels = [frontier]
    while frontier:
        nxt = []
        for u in frontier:
            for v in targets[offsets[u] : offsets[u + 1]]:
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(int(v))
        if nxt:
            levels.append(sorted(nxt))
        frontier = nxt
    return levels, level


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    nodes, avg_degree = _CONFIG[scale]
    offsets, targets = generate_graph(nodes, avg_degree)
    levels, _ = bfs_levels(offsets, targets)
    warps_per_cta = THREADS_PER_CTA // WARP_SIZE

    # One CTA group per level, each covering the whole node array (the
    # real kernel tests every node's frontier flag each level).
    ctas_per_level = nodes // THREADS_PER_CTA
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=ctas_per_level * len(levels),
        smem_bytes_per_cta=0,
    )
    frontier_sets = [set(f) for f in levels]

    def warp_fn(cta: int, warp: int, pad: int):
        lvl, cta_in_level = divmod(cta, ctas_per_level)
        b = PaddedWarp(pad)
        node0 = (cta_in_level * warps_per_cta + warp) * WARP_SIZE
        # Every thread checks its node's frontier flag (cost array).
        flag = b.load_global(coalesced(_COST, node0))
        b.touch(flag)
        mine = [n for n in range(node0, node0 + WARP_SIZE) if n in frontier_sets[lvl]]
        if not mine:
            return b.finish()
        na = len(mine)
        # Frontier threads read their CSR offsets (8-byte entries).
        off = b.load_global([_NODES + 4 * n for n in mine], active=na)
        b.touch(off, active=na)
        max_deg = max(int(offsets[n + 1] - offsets[n]) for n in mine)
        for e in range(max_deg):
            idx = [n for n in mine if offsets[n] + e < offsets[n + 1]]
            if not idx:
                break
            ne = len(idx)
            eaddr = [_EDGES + 4 * int(offsets[n] + e) for n in idx]
            tgt = b.load_global(eaddr, active=ne)
            # Visit check: gather into the cost array at the target node.
            vaddr = [_COST + 4 * int(targets[offsets[n] + e]) for n in idx]
            seen = b.load_global(vaddr, tgt, active=ne)
            upd = b.alu(seen, tgt, active=ne)
            b.store_global(vaddr, upd, active=ne)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
