"""NN -- small neural-network inference (Bakhoda et al. suite).

Table 1: 13 registers/thread, no shared memory, and the most dramatic
cache sensitivity of the suite: 20.81x DRAM accesses with no cache.  The
network weights are a few kilobytes re-read by every thread for every
input, so even a small cache almost eliminates DRAM traffic while the
uncached design re-fetches the weights continuously.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, broadcast, build_kernel_trace, coalesced, region, require_scale

NAME = "nn"
TARGET_REGS = 13
THREADS_PER_CTA = 256

_CONFIG = {"tiny": (2, 16, 64), "small": (8, 24, 128), "paper": (28, 32, 256)}
# (CTAs, hidden units, weights per hidden unit)

_W, _IN, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    num_ctas, hidden, wlen = _CONFIG[scale]
    launch = LaunchConfig(threads_per_cta=THREADS_PER_CTA, num_ctas=num_ctas)
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        elem0 = (cta * warps_per_cta + warp) * WARP_SIZE
        x = b.load_global(coalesced(_IN, elem0))
        acc = b.iconst()
        for h in range(hidden):
            # Every thread walks the same weight row: broadcast reads of
            # a small, hot array -- the cache's best case.
            for j in range(0, wlen, 8):
                w = b.load_global(broadcast(_W, h * wlen + j))
                b.alu_into(acc, w, x)
            acc = b.sfu(acc)  # activation
        b.store_global(coalesced(_OUT, elem0), acc)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
