"""RAY -- ray tracing with reflections (Bakhoda et al. suite).

Register-limited with cacheable scene reuse (Sections 3.2, 3.3.1,
Figures 2, 8, 9).  Table 1: 42 registers/thread (spills at every
smaller allocation the paper tests), no shared memory; a larger cache
captures the scene/BVH data (DRAM 1.02x uncached but energy/perf gain
from a big cache holding the environment, Figure 9: 1.13x at 384 KB).

Each thread renders one pixel: per bounce it walks BVH nodes (data
dependent gathers into the scene region), intersects (dependent
ALU/SFU chains), and accumulates shading.  Ray state -- origin,
direction, attenuation, hit record per bounce -- is the register
pressure source.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale
from repro.kernels.patterns import compute_block

NAME = "ray"
TARGET_REGS = 42
THREADS_PER_CTA = 128
SEED = 20120614
NODE_BYTES = 64  # BVH node: bounds + children
BOUNCES = 3

_CONFIG = {"tiny": (16, 1200), "small": (64, 2800), "paper": (512, 40000)}
# (image edge, BVH node count).  2800 nodes x 64 B = 175 KB of scene:
# past the 64 KB cache, inside 256 KB.

_SCENE, _FRAME = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim, num_nodes = _CONFIG[scale]
    pixels = dim * dim
    rng = np.random.default_rng(SEED)
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA, num_ctas=pixels // THREADS_PER_CTA
    )
    warps_per_cta = launch.warps_per_cta
    # BVH walk: the top of the tree is hot (every ray re-reads it); the
    # deep nodes are swept cyclically as rays march across the image --
    # each deep node is revisited by later rays, with a reuse distance
    # of the full deep-node footprint (175 KB at the default scale).
    depth = max(4, int(np.log2(num_nodes)) - 1)
    hot_depth = depth - 2
    deep_base = min(num_nodes - 1, 1 << hot_depth)
    deep_count = max(1, num_nodes - deep_base)

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        warp_seq = cta * warps_per_cta + warp
        pix0 = warp_seq * WARP_SIZE
        # Ray state held live across all bounces.
        origin = [b.iconst() for _ in range(3)]
        direction = [b.iconst() for _ in range(3)]
        colour = b.iconst()
        for bounce in range(BOUNCES):
            hit = b.alu(*direction)
            # Hot traversal: pixels in a tile share the upper branches.
            node = 0
            tile_bits = (pix0 // 128) ^ (0x9E37 * (bounce + 1))
            for step in range(hot_depth):
                node = 2 * node + 1 + ((tile_bits >> step) & 1)
                if node >= deep_base:
                    node = node % deep_base
                nv = b.load_global(
                    [_SCENE + NODE_BYTES * node + 4 * (t % 8) for t in range(WARP_SIZE)],
                    hit,
                )
                hit = compute_block(b, [nv, origin[0], direction[0]], alu_ops=5, sfu_ops=1)
            # Deep traversal: cyclic sweep over the leaf region, threads
            # fanning out over a small neighbourhood of nodes.
            for step in range(hot_depth, depth):
                n0 = ((warp_seq * 8 + 2 * step + bounce) * 13) % deep_count
                addrs = [
                    _SCENE + NODE_BYTES * (deep_base + (n0 + t // 4) % deep_count)
                    for t in range(WARP_SIZE)
                ]
                nv = b.load_global(addrs, hit)
                hit = compute_block(b, [nv, origin[0], direction[0]], alu_ops=5, sfu_ops=1)
            # Shading + reflection: update ray state, keep it live.
            shade = compute_block(b, [hit, direction[1], origin[1]], alu_ops=6, sfu_ops=2)
            colour = b.alu(colour, shade)
            direction = [b.alu(d, shade) for d in direction]
            origin = [b.alu(o, hit) for o in origin]
        b.store_global(coalesced(_FRAME, pix0), colour)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
