"""LPS -- 3D Laplace solver (Bakhoda et al. suite).

Table 1: 15 registers/thread, 19 bytes/thread of shared memory, DRAM
1.48x uncached then flat: the shared tile captures the in-plane stencil
reuse; the vertical neighbours stream from global memory.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "lps"
TARGET_REGS = 15
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 19

_GRID = {"tiny": (32, 4), "small": (64, 8), "paper": (256, 32)}
# (plane dimension, depth)

_U, _OUT = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim, depth = _GRID[scale]
    plane_words = dim * dim
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=plane_words // THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    tile_words = THREADS_PER_CTA

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        elem0 = (cta * warps_per_cta + warp) * WARP_SIZE
        tile_off = warp * WARP_SIZE
        # March down the column: keep current plane in shared memory,
        # stream the planes above/below from global.
        cur = b.load_global(coalesced(_U, elem0))
        b.store_shared([4 * (tile_off + t) for t in range(WARP_SIZE)], cur)
        b.barrier()
        for z in range(1, depth - 1):
            below = b.load_global(coalesced(_U, (z - 1) * plane_words + elem0))
            above = b.load_global(coalesced(_U, (z + 1) * plane_words + elem0))
            centre = b.load_shared([4 * (tile_off + t) for t in range(WARP_SIZE)])
            west = b.load_shared(
                [4 * ((tile_off + t - 1) % tile_words) for t in range(WARP_SIZE)]
            )
            east = b.load_shared(
                [4 * ((tile_off + t + 1) % tile_words) for t in range(WARP_SIZE)]
            )
            s = b.alu(below, above, centre)
            out = b.alu(s, west, east)
            b.store_global(coalesced(_OUT, z * plane_words + elem0), out)
            b.barrier()
            nxt = b.load_global(coalesced(_U, z * plane_words + elem0))
            b.store_shared([4 * (tile_off + t) for t in range(WARP_SIZE)], nxt)
            b.barrier()
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
