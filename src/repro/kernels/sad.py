"""SAD (Parboil) -- sum-of-absolute-differences block matching.

Table 1: 31 registers/thread, no shared memory.  Each thread evaluates
one candidate motion vector for a macroblock: it holds the current
block's pixels in registers (the register pressure source) and streams
the reference-window rows, which overlap between neighbouring
candidates and benefit modestly from caching.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "sad"
TARGET_REGS = 31
THREADS_PER_CTA = 256

_CONFIG = {"tiny": (4, 4), "small": (16, 8), "paper": (64, 16)}
# (macroblocks, search rows per candidate)

_CUR, _REF, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    blocks, search_rows = _CONFIG[scale]
    launch = LaunchConfig(threads_per_cta=THREADS_PER_CTA, num_ctas=blocks)
    warps_per_cta = launch.warps_per_cta
    row_words = 1024  # reference frame row pitch

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        # The current block's 8 rows live in registers for the whole
        # search (the Table 1 register driver).
        cur_rows = [
            b.load_global(coalesced(_CUR, cta * 64 + r * 8)) for r in range(8)
        ]
        best = b.iconst()
        cand0 = (cta * warps_per_cta + warp) * WARP_SIZE
        for s in range(search_rows):
            sad = b.iconst()
            for r in range(8):
                # Candidate windows of adjacent threads overlap heavily:
                # thread t reads ref[row + t ..], rows shared with
                # neighbouring warps -> cacheable locality.
                ref = b.load_global(
                    [_REF + 4 * ((cand0 + s) % 64 * row_words + r * WARP_SIZE + t)
                     for t in range(WARP_SIZE)]
                )
                b.alu_into(sad, ref, cur_rows[r])
            best = b.alu(best, sad)
        b.store_global(coalesced(_OUT, cand0), best)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
