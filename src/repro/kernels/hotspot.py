"""Hotspot (Rodinia) -- thermal simulation stencil with shared tiles.

Table 1: 22 registers/thread, 12 bytes/thread of shared memory, DRAM
1.44x uncached then flat: the shared-memory tile provides the stencil
reuse, so the cache adds little.  Each CTA loads a tile of the
temperature and power grids, iterates the 5-point stencil in shared
memory with barriers, and writes the tile back.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "hotspot"
TARGET_REGS = 22
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 12  # temp tile + power tile + result

_GRID = {"tiny": 64, "small": 128, "paper": 512}
_STEPS = {"tiny": 2, "small": 2, "paper": 4}

_TEMP, _POWER, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim = _GRID[scale]
    steps = _STEPS[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=(dim * dim) // THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    tile_words = THREADS_PER_CTA  # 16x16 tile
    s_temp, s_power = 0, tile_words * 4

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        elem0 = (cta * warps_per_cta + warp) * WARP_SIZE
        tile_off = warp * WARP_SIZE
        t_val = b.load_global(coalesced(_TEMP, elem0))
        b.store_shared([s_temp + 4 * (tile_off + t) for t in range(WARP_SIZE)], t_val)
        p_val = b.load_global(coalesced(_POWER, elem0))
        b.store_shared([s_power + 4 * (tile_off + t) for t in range(WARP_SIZE)], p_val)
        b.barrier()
        for _ in range(steps):
            # 5-point stencil within the tile (wrapping halo).
            centre = b.load_shared([s_temp + 4 * (tile_off + t) for t in range(WARP_SIZE)])
            west = b.load_shared(
                [s_temp + 4 * ((tile_off + t - 1) % tile_words) for t in range(WARP_SIZE)]
            )
            east = b.load_shared(
                [s_temp + 4 * ((tile_off + t + 1) % tile_words) for t in range(WARP_SIZE)]
            )
            north = b.load_shared(
                [s_temp + 4 * ((tile_off + t - 16) % tile_words) for t in range(WARP_SIZE)]
            )
            south = b.load_shared(
                [s_temp + 4 * ((tile_off + t + 16) % tile_words) for t in range(WARP_SIZE)]
            )
            power = b.load_shared([s_power + 4 * (tile_off + t) for t in range(WARP_SIZE)])
            a = b.alu(west, east, north)
            c = b.alu(a, south, centre)
            new_t = b.alu(c, power)
            b.barrier()
            b.store_shared([s_temp + 4 * (tile_off + t) for t in range(WARP_SIZE)], new_t)
            b.barrier()
        out = b.load_shared([s_temp + 4 * (tile_off + t) for t in range(WARP_SIZE)])
        b.store_global(coalesced(_OUT, elem0), out)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
