"""RecursiveGaussian (CUDA SDK) -- IIR Gaussian blur, column scans.

Table 1: 23 registers/thread, 2.125 bytes/thread of shared memory.
Each thread filters one image column with a 4-tap recursive chain: the
loop-carried state (previous inputs/outputs) is what drives the
register count.  Adjacent threads process adjacent columns, so each row
step is one coalesced load/store pair.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "recursivegaussian"
TARGET_REGS = 23
THREADS_PER_CTA = 256
SMEM_PER_CTA = 544

_DIM = {"tiny": (256, 16), "small": (256, 64), "paper": (1024, 256)}
# (columns, rows)

_IN, _OUT = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    cols, rows = _DIM[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=cols // THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        col0 = (cta * warps_per_cta + warp) * WARP_SIZE
        # 4-tap recursive state, loop-carried across rows.
        xp = [b.iconst() for _ in range(2)]  # previous inputs
        yp = [b.iconst() for _ in range(2)]  # previous outputs
        for r in range(rows):
            x = b.load_global(coalesced(_IN, r * cols + col0))
            y = b.alu(x, xp[0], yp[0])
            y = b.alu(y, xp[1], yp[1])
            b.store_global(coalesced(_OUT, r * cols + col0), y)
            xp = [x, xp[0]]
            yp = [y, yp[0]]
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
