"""Construction framework shared by all benchmark kernels.

Every kernel module defines ``build(scale, **overrides) -> KernelTrace``
using :func:`build_kernel_trace`, which handles the two-pass
register-pressure padding: the kernel's algorithm determines a base
register footprint, and long-lived padding values raise the peak
liveness to the Table 1 target (real kernels hold more address
arithmetic, loop, and predicate state than a warp-level model needs to
carry explicitly; the padding stands in for exactly that state).

Address space convention: each global array lives in its own 16 MB
region (:func:`region`), far below the spill area at ``1 << 40``, so
arrays, spill traffic, and regions of different kernels never alias.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.compiler.liveness import max_live_registers
from repro.isa.builder import WarpBuilder
from repro.isa.kernel import CTATrace, KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE, WarpOp

#: Supported workload scales.  "tiny" keeps unit tests fast, "small" is
#: the default for experiments, "paper" approaches the publication sizes.
SCALES = ("tiny", "small", "paper")


def region(index: int) -> int:
    """Base byte address of global array number ``index``."""
    if index < 0:
        raise ValueError("region index must be non-negative")
    return (index + 1) << 24


def coalesced(base: int, first_elem: int, n: int = WARP_SIZE, elem_bytes: int = 4) -> list[int]:
    """Per-thread addresses of ``n`` consecutive elements."""
    return [base + (first_elem + t) * elem_bytes for t in range(n)]


def broadcast(base: int, elem: int, n: int = WARP_SIZE, elem_bytes: int = 4) -> list[int]:
    """All threads read the same element (hardware broadcasts)."""
    return [base + elem * elem_bytes] * n


class PaddedWarp(WarpBuilder):
    """A WarpBuilder that carries ``pad`` extra long-lived values.

    The padding registers are created first and touched last, so they
    are live across the whole stream and raise peak liveness by exactly
    ``pad`` (provided the natural peak does not occur during the final
    touches, which :func:`build_kernel_trace` verifies).
    """

    def __init__(self, pad: int, active: int = WARP_SIZE) -> None:
        super().__init__(active=active)
        self._pad_values = [self.iconst() for _ in range(pad)]

    def finish(self) -> list[WarpOp]:
        for v in self._pad_values:
            self.touch(v)
        return self.ops


#: A kernel's per-warp generator: (cta_index, warp_index, pad) -> ops.
WarpFn = Callable[[int, int, int], Sequence[WarpOp]]


def build_kernel_trace(
    name: str,
    launch: LaunchConfig,
    warp_fn: WarpFn,
    target_regs: int | None = None,
    uses_texture: bool = False,
) -> KernelTrace:
    """Build a kernel trace, padding register pressure up to a target.

    Args:
        name: Benchmark name.
        launch: Grid shape and per-CTA shared memory.
        warp_fn: Per-warp generator; must route ``pad`` into a
            :class:`PaddedWarp` (or otherwise honour it).
        target_regs: Desired peak liveness (Table 1, column 2).  The
            natural footprint must not exceed it; padding only raises
            pressure.
        uses_texture: Kernel issues TEX instructions.

    Returns:
        The finished :class:`~repro.isa.kernel.KernelTrace`.
    """

    def build(pad: int) -> KernelTrace:
        ctas = [
            CTATrace([list(warp_fn(c, w, pad)) for w in range(launch.warps_per_cta)])
            for c in range(launch.num_ctas)
        ]
        return KernelTrace(name, launch, ctas, uses_texture=uses_texture)

    trace = build(0)
    if target_regs is None:
        return trace
    measured = max(max_live_registers(w) for cta in trace.ctas for w in cta.warps)
    if measured > target_regs:
        raise ValueError(
            f"{name}: natural register footprint {measured} exceeds the "
            f"target of {target_regs}; restructure the kernel"
        )
    if measured == target_regs:
        return trace
    trace = build(target_regs - measured)
    padded = max(max_live_registers(w) for cta in trace.ctas for w in cta.warps)
    if padded != target_regs:
        raise ValueError(
            f"{name}: padding produced peak liveness {padded}, expected "
            f"{target_regs} (natural {measured})"
        )
    return trace


def require_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
