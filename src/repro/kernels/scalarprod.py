"""ScalarProd (CUDA SDK) -- batched dot products with shared-memory
reduction.

Table 1: 18 registers/thread, 16 bytes/thread of shared memory.  Pure
streaming over the vector pairs followed by a CTA tree reduction; no
cacheable reuse (flat DRAM columns).
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, region, require_scale
from repro.kernels.patterns import smem_tree_reduce, stream_mac

NAME = "scalarprod"
TARGET_REGS = 18
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 16  # 4 words/thread of scratch (Table 1)

_CONFIG = {"tiny": (2, 512), "small": (8, 2048), "paper": (32, 8192)}

_A, _B, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    num_pairs, vec_len = _CONFIG[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_pairs,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    elems_per_warp = vec_len // warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        first = cta * vec_len + warp * elems_per_warp
        acc = stream_mac(
            b, [_A, _B], first, iters=elems_per_warp // WARP_SIZE
        )
        smem_tree_reduce(b, 0, warp, warps_per_cta, acc)
        if warp == 0:
            out = b.alu(acc)
            b.store_global([_OUT + 4 * cta], out, active=1)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
