"""MatrixMul (CUDA SDK) -- shared-memory tiled SGEMM, streaming at scale.

Table 1: 17 registers/thread, 8 bytes/thread of shared memory (two
16x16 float tiles per 256-thread CTA), DRAM 4.77x uncached and flat
beyond 64 KB: tiles provide all the reuse, the matrices themselves
stream.  Each CTA computes one 16x16 output tile; per k-tile the CTA
stages A and B sub-tiles into shared memory, synchronises, and runs the
16-step inner product from shared memory.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, require_scale, region

NAME = "matrixmul"
TARGET_REGS = 17
TILE = 16
THREADS_PER_CTA = TILE * TILE  # 256
#: Two TILE x TILE float tiles: 8 bytes per thread (Table 1).
SMEM_PER_CTA = 2 * TILE * TILE * 4

_DIM = {"tiny": 32, "small": 64, "paper": 256}

_A, _B, _C = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    n = _DIM[scale]
    tiles = n // TILE
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=tiles * tiles,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    s_a, s_b = 0, TILE * TILE * 4

    def warp_fn(cta: int, warp: int, pad: int):
        tile_row, tile_col = divmod(cta, tiles)
        b = PaddedWarp(pad)
        acc = b.iconst()
        # Each warp covers 2 rows of the 16x16 tile (32 threads).
        warp_r0 = warp * 2
        for kt in range(tiles):
            # Stage this warp's slice of the A and B tiles.
            for half in range(2):
                r = warp_r0 + half
                a_elem = (tile_row * TILE + r) * n + kt * TILE
                a_addrs = [_A + 4 * (a_elem + t % TILE) for t in range(WARP_SIZE)]
                va = b.load_global(a_addrs)
                b.store_shared(
                    [s_a + 4 * (r * TILE + t % TILE) for t in range(WARP_SIZE)], va
                )
                b_elem = (kt * TILE + r) * n + tile_col * TILE
                b_addrs = [_B + 4 * (b_elem + t % TILE) for t in range(WARP_SIZE)]
                vb = b.load_global(b_addrs)
                b.store_shared(
                    [s_b + 4 * (r * TILE + t % TILE) for t in range(WARP_SIZE)], vb
                )
            b.barrier()
            # Inner product over the staged tiles.
            for k in range(TILE):
                # thread (r, c) reads As[r][k] and Bs[k][c].
                a_addrs = [
                    s_a + 4 * ((warp_r0 + t // TILE) * TILE + k) for t in range(WARP_SIZE)
                ]
                va = b.load_shared(a_addrs)
                b_addrs = [s_b + 4 * (k * TILE + t % TILE) for t in range(WARP_SIZE)]
                vb = b.load_shared(b_addrs)
                b.alu_into(acc, va, vb)
            b.barrier()
        c_elem = (tile_row * TILE + warp_r0) * n + tile_col * TILE
        b.store_global([_C + 4 * (c_elem + t % TILE) for t in range(WARP_SIZE)], acc)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
