"""VectorAdd (CUDA SDK) -- pure streaming, the minimal-capacity extreme.

Table 1: 9 registers/thread, no shared memory, DRAM accesses 3.88x with
no cache (each 128-byte warp load becomes four sector transactions) and
flat from 64 KB up (zero reuse).  The kernel computes ``C = A + B``
element-wise; each thread handles one element.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "vectoradd"
TARGET_REGS = 9
THREADS_PER_CTA = 256

_ELEMS = {"tiny": 4 * 1024, "small": 48 * 1024, "paper": 256 * 1024}

_A, _B, _C = region(0), region(1), region(2)


def build(scale: str = "small", threads_per_cta: int = THREADS_PER_CTA) -> KernelTrace:
    require_scale(scale)
    n = _ELEMS[scale]
    num_ctas = n // threads_per_cta
    launch = LaunchConfig(threads_per_cta=threads_per_cta, num_ctas=num_ctas)
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        elem = (cta * warps_per_cta + warp) * WARP_SIZE
        idx = b.iconst()  # global thread index
        addr = b.alu(idx)  # base + 4 * idx
        a = b.load_global(coalesced(_A, elem), addr)
        c = b.load_global(coalesced(_B, elem), addr)
        s = b.alu(a, c)
        b.store_global(coalesced(_C, elem), addr, s)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
