"""SRAD (Rodinia) -- speckle-reducing anisotropic diffusion stencil.

Cache-limited (Sections 3.2, 3.3.3, Figure 9).  Table 1: 18
registers/thread, 24 bytes/thread of shared memory, DRAM 1.22x uncached
/ 1.20x at 64 KB: each output element reads its four neighbours from
global memory, so the image rows above and below a CTA's tile are also
read by the adjacent CTAs -- reuse a 64 KB cache captures only
partially for an image larger than it, while 256 KB holds the whole
image.  Two kernel phases (diffusion coefficients, then update) re-read
the image, like the real application's two kernels per iteration.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "srad"
TARGET_REGS = 18
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 24

_DIM = {"tiny": 64, "small": 192, "paper": 2048}

_IMG, _COEFF, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim = _DIM[scale]
    elems = dim * dim
    ctas_per_phase = elems // THREADS_PER_CTA
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=2 * ctas_per_phase,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        phase, cta_in_phase = divmod(cta, ctas_per_phase)
        b = PaddedWarp(pad)
        elem0 = (cta_in_phase * warps_per_cta + warp) * WARP_SIZE
        row, col = divmod(elem0, dim)
        centre = b.load_global(coalesced(_IMG, elem0))
        north = b.load_global(coalesced(_IMG, ((row - 1) % dim) * dim + col))
        south = b.load_global(coalesced(_IMG, ((row + 1) % dim) * dim + col))
        west = b.load_global([_IMG + 4 * (row * dim + (col + t - 1) % dim) for t in range(WARP_SIZE)])
        east = b.load_global([_IMG + 4 * (row * dim + (col + t + 1) % dim) for t in range(WARP_SIZE)])
        dv = b.alu(north, south, centre)
        dh = b.alu(west, east, centre)
        g2 = b.alu(dv, dh)
        c = b.sfu(g2, centre)  # the PDE coefficient involves divisions/sqrt
        # Stage the coefficient through shared memory (24 B/thread
        # scratch) for the divergence step of the same tile.
        sb = warp * WARP_SIZE * 4
        b.store_shared([sb + 4 * t for t in range(WARP_SIZE)], c)
        b.barrier()
        cl = b.load_shared([sb + 4 * ((t + 1) % WARP_SIZE) for t in range(WARP_SIZE)])
        upd = b.alu(c, cl, centre)
        target = _COEFF if phase == 0 else _OUT
        b.store_global(coalesced(target, elem0), upd)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
