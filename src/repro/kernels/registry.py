"""Benchmark registry: the Table 1 suite with its published metadata.

Each entry couples a trace builder with the paper's published
characteristics so experiments can compare measured values against the
paper (see EXPERIMENTS.md).  ``paper_dram`` holds the normalized DRAM
access columns of Table 1 (0 KB, 64 KB; the 256 KB point is the
normalisation base of 1.0).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.isa.kernel import KernelTrace
from repro.kernels import (
    aes,
    backprop,
    bfs,
    bicubictexture,
    dct8x8,
    dgemm,
    dwthaar1d,
    hotspot,
    hwt,
    lps,
    lu,
    matrixmul,
    mummer,
    nbody,
    needle,
    nn,
    pcr,
    ray,
    recursivegaussian,
    sad,
    scalarprod,
    sgemv,
    sobolqrng,
    srad,
    sto,
    vectoradd,
)


class Category(enum.Enum):
    """Table 1 groupings."""

    SHARED_LIMITED = "shared memory limited"
    CACHE_LIMITED = "cache limited"
    REGISTER_LIMITED = "register limited"
    BALANCED = "balanced / minimal capacity requirements"


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: builder plus the paper's published facts."""

    name: str
    category: Category
    build: Callable[..., KernelTrace]
    paper_regs: int
    paper_smem_bytes_per_thread: float
    #: Normalised DRAM accesses at (no cache, 64 KB); 256 KB is 1.0.
    paper_dram: tuple[float, float]
    #: Unified 384 KB speedup over the partitioned baseline (Fig 9 /
    #: Table 6); 1.0 for the no-benefit set (Fig 7: within 1%).
    paper_speedup_384: float = 1.0
    #: Table 6 performance at 128/256/384 KB (benefit set only).
    paper_table6_perf: tuple[float, float, float] | None = None
    #: Table 6 energy at 128/256/384 KB (benefit set only).
    paper_table6_energy: tuple[float, float, float] | None = None
    description: str = ""
    extra_params: dict = field(default_factory=dict)

    @property
    def benefits(self) -> bool:
        return self.paper_table6_perf is not None


_ALL: list[Benchmark] = [
    # ------------------------- shared memory limited -------------------
    Benchmark(
        "needle", Category.SHARED_LIMITED, needle.build,
        paper_regs=18, paper_smem_bytes_per_thread=264.1,
        paper_dram=(0.85, 1.0), paper_speedup_384=1.71,
        paper_table6_perf=(1.29, 1.75, 1.71),
        paper_table6_energy=(0.76, 0.64, 0.67),
        description="Needleman-Wunsch DP sequence alignment",
    ),
    Benchmark(
        "sto", Category.SHARED_LIMITED, sto.build,
        paper_regs=33, paper_smem_bytes_per_thread=127,
        paper_dram=(3.95, 1.0),
        description="StoreGPU sliding-window hashing in shared memory",
    ),
    Benchmark(
        "lu", Category.SHARED_LIMITED, lu.build,
        paper_regs=20, paper_smem_bytes_per_thread=96,
        paper_dram=(1.94, 1.46), paper_speedup_384=1.07,
        paper_table6_perf=(0.96, 1.07, 1.07),
        paper_table6_energy=(1.00, 0.91, 0.89),
        description="blocked LU decomposition",
    ),
    # ----------------------------- cache limited -----------------------
    Benchmark(
        "gpu-mummer", Category.CACHE_LIMITED, mummer.build,
        paper_regs=21, paper_smem_bytes_per_thread=0,
        paper_dram=(1.48, 1.01), paper_speedup_384=1.04,
        paper_table6_perf=(0.96, 1.04, 1.04),
        paper_table6_energy=(0.97, 0.95, 0.97),
        description="suffix-tree DNA alignment",
    ),
    Benchmark(
        "bfs", Category.CACHE_LIMITED, bfs.build,
        paper_regs=9, paper_smem_bytes_per_thread=0,
        paper_dram=(1.46, 1.13), paper_speedup_384=1.12,
        paper_table6_perf=(1.03, 1.08, 1.12),
        paper_table6_energy=(0.91, 0.89, 0.88),
        description="breadth-first graph search",
    ),
    Benchmark(
        "backprop", Category.CACHE_LIMITED, backprop.build,
        paper_regs=17, paper_smem_bytes_per_thread=2.125,
        paper_dram=(1.56, 1.0),
        description="neural-network layer training",
    ),
    Benchmark(
        "matrixmul", Category.CACHE_LIMITED, matrixmul.build,
        paper_regs=17, paper_smem_bytes_per_thread=8,
        paper_dram=(4.77, 1.0),
        description="shared-memory tiled matrix multiply",
    ),
    Benchmark(
        "nbody", Category.CACHE_LIMITED, nbody.build,
        paper_regs=23, paper_smem_bytes_per_thread=0,
        paper_dram=(3.52, 1.0),
        description="all-pairs gravitational interaction",
    ),
    Benchmark(
        "vectoradd", Category.CACHE_LIMITED, vectoradd.build,
        paper_regs=9, paper_smem_bytes_per_thread=0,
        paper_dram=(3.88, 1.0),
        description="element-wise vector addition",
    ),
    Benchmark(
        "srad", Category.CACHE_LIMITED, srad.build,
        paper_regs=18, paper_smem_bytes_per_thread=24,
        paper_dram=(1.22, 1.20), paper_speedup_384=1.09,
        paper_table6_perf=(1.00, 1.08, 1.09),
        paper_table6_energy=(0.94, 0.86, 0.89),
        description="speckle-reducing anisotropic diffusion",
    ),
    # --------------------------- register limited ----------------------
    Benchmark(
        "dgemm", Category.REGISTER_LIMITED, dgemm.build,
        paper_regs=57, paper_smem_bytes_per_thread=66.5,
        paper_dram=(1.0, 1.0), paper_speedup_384=1.08,
        paper_table6_perf=(0.77, 1.01, 1.08),
        paper_table6_energy=(1.13, 0.95, 0.94),
        description="register-blocked double-precision GEMM (MAGMA)",
    ),
    Benchmark(
        "pcr", Category.REGISTER_LIMITED, pcr.build,
        paper_regs=33, paper_smem_bytes_per_thread=20,
        paper_dram=(2.88, 1.29), paper_speedup_384=1.06,
        paper_table6_perf=(0.77, 1.04, 1.06),
        paper_table6_energy=(1.33, 0.92, 0.93),
        description="parallel cyclic reduction tridiagonal solver",
    ),
    Benchmark(
        "bicubictexture", Category.REGISTER_LIMITED, bicubictexture.build,
        paper_regs=33, paper_smem_bytes_per_thread=0,
        paper_dram=(1.0, 1.0),
        description="bicubic texture filtering",
    ),
    Benchmark(
        "hwt", Category.REGISTER_LIMITED, hwt.build,
        paper_regs=35, paper_smem_bytes_per_thread=23,
        paper_dram=(1.0, 1.0),
        description="2D Haar wavelet transform",
    ),
    Benchmark(
        "ray", Category.REGISTER_LIMITED, ray.build,
        paper_regs=42, paper_smem_bytes_per_thread=0,
        paper_dram=(1.02, 1.07), paper_speedup_384=1.13,
        paper_table6_perf=(0.94, 1.03, 1.13),
        paper_table6_energy=(1.01, 0.95, 0.89),
        description="recursive ray tracing",
    ),
    # ------------------------------- balanced --------------------------
    Benchmark(
        "hotspot", Category.BALANCED, hotspot.build,
        paper_regs=22, paper_smem_bytes_per_thread=12,
        paper_dram=(1.44, 1.0),
        description="thermal simulation stencil",
    ),
    Benchmark(
        "recursivegaussian", Category.BALANCED, recursivegaussian.build,
        paper_regs=23, paper_smem_bytes_per_thread=2.125,
        paper_dram=(1.04, 1.03),
        description="recursive Gaussian blur",
    ),
    Benchmark(
        "sad", Category.BALANCED, sad.build,
        paper_regs=31, paper_smem_bytes_per_thread=0,
        paper_dram=(1.01, 1.01),
        description="sum-of-absolute-differences block matching",
    ),
    Benchmark(
        "scalarprod", Category.BALANCED, scalarprod.build,
        paper_regs=18, paper_smem_bytes_per_thread=16,
        paper_dram=(1.0, 1.0),
        description="batched dot products",
    ),
    Benchmark(
        "sgemv", Category.BALANCED, sgemv.build,
        paper_regs=14, paper_smem_bytes_per_thread=4,
        paper_dram=(1.01, 1.01),
        description="matrix-vector product",
    ),
    Benchmark(
        "sobolqrng", Category.BALANCED, sobolqrng.build,
        paper_regs=12, paper_smem_bytes_per_thread=2,
        paper_dram=(1.0, 1.0),
        description="Sobol quasi-random number generation",
    ),
    Benchmark(
        "aes", Category.BALANCED, aes.build,
        paper_regs=28, paper_smem_bytes_per_thread=24,
        paper_dram=(1.0, 1.0),
        description="AES block cipher with shared-memory T-boxes",
    ),
    Benchmark(
        "dct8x8", Category.BALANCED, dct8x8.build,
        paper_regs=26, paper_smem_bytes_per_thread=0,
        paper_dram=(1.0, 1.0),
        description="8x8 discrete cosine transform",
    ),
    Benchmark(
        "dwthaar1d", Category.BALANCED, dwthaar1d.build,
        paper_regs=14, paper_smem_bytes_per_thread=8,
        paper_dram=(1.0, 1.0),
        description="1D Haar wavelet transform",
    ),
    Benchmark(
        "lps", Category.BALANCED, lps.build,
        paper_regs=15, paper_smem_bytes_per_thread=19,
        paper_dram=(1.48, 1.0),
        description="3D Laplace solver",
    ),
    Benchmark(
        "nn", Category.BALANCED, nn.build,
        paper_regs=13, paper_smem_bytes_per_thread=0,
        paper_dram=(20.81, 1.07),
        description="small neural-network inference",
    ),
]

REGISTRY: dict[str, Benchmark] = {bm.name: bm for bm in _ALL}

#: Figure 9 benchmarks: significant gains from the unified design.
BENEFIT_SET: tuple[str, ...] = tuple(bm.name for bm in _ALL if bm.benefits)

#: Figure 7 benchmarks: no benefit, overhead must stay under ~1%.
NO_BENEFIT_SET: tuple[str, ...] = tuple(bm.name for bm in _ALL if not bm.benefits)


def get_benchmark(name: str) -> Benchmark:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(REGISTRY))}"
        ) from None


def all_benchmarks() -> list[Benchmark]:
    return list(_ALL)


def benchmarks_in(category: Category) -> list[Benchmark]:
    return [bm for bm in _ALL if bm.category is category]
