"""AES (Bakhoda et al. suite) -- block cipher with shared-memory T-boxes.

Table 1: 28 registers/thread, 24 bytes/thread of shared memory (the
lookup tables staged per CTA).  Each thread encrypts one 16-byte block:
stream the plaintext, run rounds of T-box gathers in shared memory
(bank-conflict-prone scattered reads) mixed with XOR chains, stream the
ciphertext out.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "aes"
TARGET_REGS = 28
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 24  # T-boxes: 6 KB per CTA
ROUNDS = 10

_PLAIN, _CIPHER, _TBOX = region(0), region(1), region(2)

_BLOCKS = {"tiny": 1024, "small": 4096, "paper": 16384}


def _tbox_index(thread: int, rnd: int, word: int) -> int:
    """Deterministic T-box index (stands in for data-dependent bytes).

    The T-boxes are fully replicated per lane -- the conflict-free
    layout GPU AES implementations converge to -- so a warp's round
    lookup reads one contiguous lane-indexed slice whose base varies
    pseudo-randomly per round.  The resulting access is bank-conflict
    free in both the partitioned and unified designs, matching the
    paper's observation that these benchmarks see no measurable
    conflict overhead in either.
    """
    h = ((thread // WARP_SIZE) * 2654435761 + rnd * 40503 + word * 97) & 0xFFFFFFFF
    base = h % (SMEM_PER_CTA // 4 - WARP_SIZE)
    return base + thread % WARP_SIZE


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    blocks = _BLOCKS[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=blocks // THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        block0 = (cta * warps_per_cta + warp) * WARP_SIZE
        if warp == 0:
            # First warp stages the T-boxes, replicating the four 256-byte
            # source tables (1 KB total in global memory) across the 6 KB
            # shared allocation.  The tiny source stays cache-hot across
            # CTA launches in any configuration.
            for r in range(SMEM_PER_CTA // 4 // WARP_SIZE):
                v = b.load_global(
                    [_TBOX + 128 * (r % 8) + 4 * t for t in range(WARP_SIZE)]
                )
                b.store_shared(
                    [4 * (r * WARP_SIZE + t) for t in range(WARP_SIZE)], v
                )
        b.barrier()
        # Load the 4-word state of each block.  The blocks are stored
        # structure-of-arrays (word w of all blocks contiguous), the
        # standard layout that makes each state load one coalesced line.
        state = [
            b.load_global(
                [_PLAIN + 4 * (w * blocks + block0 + t) for t in range(WARP_SIZE)]
            )
            for w in range(4)
        ]
        for rnd in range(ROUNDS):
            new_state = []
            for w in range(4):
                addrs = [
                    4 * _tbox_index(block0 + t, rnd, w) for t in range(WARP_SIZE)
                ]
                tval = b.load_shared(addrs, state[w])
                new_state.append(b.alu(tval, state[(w + 1) % 4]))
            state = new_state
        for w in range(4):
            b.store_global(
                [_CIPHER + 4 * (w * blocks + block0 + t) for t in range(WARP_SIZE)],
                state[w],
            )
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
