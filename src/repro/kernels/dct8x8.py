"""Dct8x8 (CUDA SDK) -- blockwise 8x8 discrete cosine transform.

Table 1: 26 registers/thread, no shared memory.  Each thread processes
one 8-pixel row of an 8x8 block held entirely in registers: load 8
pixels, run the butterfly ALU network, store 8 coefficients.  The high
register count comes from the row held live across the butterflies.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, region, require_scale

NAME = "dct8x8"
TARGET_REGS = 26
THREADS_PER_CTA = 256

_IMAGE_DIM = {"tiny": 64, "small": 256, "paper": 1024}

_IN, _OUT = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim = _IMAGE_DIM[scale]
    # One thread per 8-pixel row of a block: dim/8 x dim blocks-rows.
    rows = dim * (dim // 8)
    launch = LaunchConfig(threads_per_cta=THREADS_PER_CTA, num_ctas=rows // THREADS_PER_CTA)
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        row0 = (cta * warps_per_cta + warp) * WARP_SIZE
        # The warp's 256 pixels are fetched as 8 coalesced 128-byte
        # chunks (the SDK kernel stages via shared memory to get this
        # access order; we model the resulting coalesced stream).
        chunk0 = 8 * row0
        pixels = []
        for p in range(8):
            addrs = [_IN + 4 * (chunk0 + p * WARP_SIZE + t) for t in range(WARP_SIZE)]
            pixels.append(b.load_global(addrs))
        # Butterfly network: pairwise sums/differences, three stages.
        stage = pixels
        for _ in range(3):
            nxt = []
            for i in range(0, len(stage), 2):
                nxt.append(b.alu(stage[i], stage[i + 1]))
                nxt.append(b.alu(stage[i], stage[i + 1]))
            stage = nxt
        for p, v in enumerate(stage):
            addrs = [_OUT + 4 * (chunk0 + p * WARP_SIZE + t) for t in range(WARP_SIZE)]
            b.store_global(addrs, v)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
