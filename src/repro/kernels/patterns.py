"""Reusable warp-level code patterns shared by the benchmark kernels.

These helpers emit the idiomatic CUDA building blocks at warp
granularity: streaming loads with multiply-accumulate, global-to-shared
tile staging, shared-memory tree reductions, and dependent ALU/SFU
chains.  Address arithmetic follows the conventions real kernels use
(row-major arrays, warp-coalesced element order), so the coalescer,
cache, and bank models see realistic patterns.
"""

from __future__ import annotations

from repro.isa.builder import WarpBuilder
from repro.isa.trace import WARP_SIZE

from repro.kernels.base import coalesced


def stream_mac(
    b: WarpBuilder,
    bases: list[int],
    first_elem: int,
    iters: int,
    acc: int | None = None,
    stride_elems: int = WARP_SIZE,
    extra_alu: int = 0,
) -> int:
    """Stream ``iters`` warp-wide chunks from each array, accumulating.

    Per iteration: one coalesced load per base array, one MAC into the
    accumulator, plus ``extra_alu`` dependent ALU ops.  Returns the
    accumulator register.
    """
    if acc is None:
        acc = b.iconst()
    for i in range(iters):
        elem = first_elem + i * stride_elems
        vals = [b.load_global(coalesced(base, elem)) for base in bases]
        b.alu_into(acc, *vals)
        x = acc
        for _ in range(extra_alu):
            x = b.alu(x)
    return acc


def tile_to_smem(
    b: WarpBuilder,
    gbase: int,
    gstart_elem: int,
    sstart_byte: int,
    rows: int,
) -> None:
    """Stage ``rows`` warp-wide rows from global memory into shared memory."""
    for r in range(rows):
        v = b.load_global(coalesced(gbase, gstart_elem + r * WARP_SIZE))
        b.store_shared(
            [sstart_byte + 4 * (r * WARP_SIZE + t) for t in range(WARP_SIZE)], v
        )


def smem_tree_reduce(
    b: WarpBuilder,
    sbase_byte: int,
    warp_index: int,
    warps_per_cta: int,
    value: int,
) -> int:
    """CTA-wide tree reduction through shared memory.

    Each thread deposits its value; ``log2`` rounds of barrier + load +
    add follow.  Every warp executes the same barrier count (SIMT
    requires structured control flow), with upper warps predicated off
    by reduced active masks in later rounds.
    """
    lane_addr = [
        sbase_byte + 4 * (warp_index * WARP_SIZE + t) for t in range(WARP_SIZE)
    ]
    b.store_shared(lane_addr, value)
    total = warps_per_cta * WARP_SIZE
    stride = total // 2
    while stride >= 1:
        b.barrier()
        active_threads = stride - warp_index * WARP_SIZE
        if active_threads > 0:
            n = min(WARP_SIZE, active_threads)
            base_t = warp_index * WARP_SIZE
            mine = b.load_shared(
                [sbase_byte + 4 * (base_t + t) for t in range(n)], active=n
            )
            other = b.load_shared(
                [sbase_byte + 4 * (base_t + t + stride) for t in range(n)], active=n
            )
            s = b.alu(mine, other, active=n)
            b.store_shared(
                [sbase_byte + 4 * (base_t + t) for t in range(n)], s, active=n
            )
            value = s
        stride //= 2
    return value


def alu_chain(b: WarpBuilder, v: int, n: int) -> int:
    """A dependent chain of ``n`` ALU ops (models address/index math)."""
    for _ in range(n):
        v = b.alu(v)
    return v


def compute_block(b: WarpBuilder, inputs: list[int], alu_ops: int, sfu_ops: int = 0) -> int:
    """A mixed ALU/SFU computation consuming ``inputs``.

    Emits a dependent chain with SFU ops interspersed (transcendentals),
    the shape of physics / shading inner loops.
    """
    v = b.alu(*inputs[:3]) if inputs else b.iconst()
    done_sfu = 0
    for i in range(alu_ops - 1):
        if sfu_ops and done_sfu < sfu_ops and i % max(1, alu_ops // (sfu_ops + 1)) == 0:
            v = b.sfu(v)
            done_sfu += 1
        else:
            extra = inputs[(i + 3) % len(inputs)] if inputs else v
            v = b.alu(v, extra)
    for _ in range(sfu_ops - done_sfu):
        v = b.sfu(v)
    return v


def gather_load(b: WarpBuilder, base: int, indices: list[int], elem_bytes: int = 4) -> int:
    """Data-dependent gather: one address per thread from an index list."""
    idx = b.iconst()
    return b.load_global([base + i * elem_bytes for i in indices], idx)


def shared_gather(b: WarpBuilder, sbase: int, indices: list[int], elem_bytes: int = 4) -> int:
    """Scatter/gather read from shared memory (bank-conflict prone)."""
    idx = b.iconst()
    return b.load_shared([sbase + i * elem_bytes for i in indices], idx)
