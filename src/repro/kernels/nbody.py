"""Nbody (CUDA SDK) -- all-pairs gravitation, compute-bound with a tiny
reused working set.

Table 1: 23 registers/thread, no shared memory, DRAM 3.52x uncached and
flat beyond 64 KB: the body array is small enough that any cache
captures it, while the uncached design re-fetches it every tile.  Each
thread integrates one body; the inner loop broadcasts one interaction
partner at a time to the whole warp and runs a dependent ALU/SFU chain
(distance, rsqrt, force accumulation).
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, broadcast, build_kernel_trace, coalesced, region, require_scale
from repro.kernels.patterns import compute_block

NAME = "nbody"
TARGET_REGS = 23

_BODIES = {"tiny": 64, "small": 512, "paper": 2048}
#: Interactions are processed per partner; model every 4th partner to
#: bound trace length while keeping the compute:load ratio of ~7 ALU+SFU
#: per broadcast load.
_PARTNER_STEP = {"tiny": 4, "small": 8, "paper": 8}

_POS, _VEL, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    n = _BODIES[scale]
    threads_per_cta = min(256, n)
    launch = LaunchConfig(threads_per_cta=threads_per_cta, num_ctas=n // threads_per_cta)
    warps_per_cta = launch.warps_per_cta
    step = _PARTNER_STEP[scale]

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        elem = (cta * warps_per_cta + warp) * WARP_SIZE
        # Own position (x, y, z packed as consecutive words per body).
        px = b.load_global(coalesced(_POS, elem))
        pv = b.load_global(coalesced(_VEL, elem))
        ax = b.iconst()
        for j in range(0, n, step):
            partner = b.load_global(broadcast(_POS, j))
            f = compute_block(b, [px, partner], alu_ops=5, sfu_ops=1)
            b.alu_into(ax, f)
        out = b.alu(ax, pv)
        b.store_global(coalesced(_OUT, elem), out)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
