"""LU (Rodinia lud) -- blocked LU decomposition.

Shared-memory heavy with cacheable reuse (Sections 3.2, 3.3.2,
Figures 3, 9).  Table 1: 20 registers/thread, 96 bytes/thread of shared
memory (24 KB per 256-thread CTA -- more than today's GPUs offer at
full occupancy), DRAM 1.94x uncached / 1.46x at 64 KB: the pivot row
and column blocks are re-read by every trailing-submatrix CTA of the
same step, and the matrix itself is re-swept every outer step.

We model the dominant internal kernel across several outer steps: each
CTA stages the pivot-row tile, the pivot-column tile, and its own tile
into shared memory (the 96 B/thread), multiplies, and writes its tile
back.  The pivot tiles are shared across CTAs -- the cache-visible
reuse.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, region, require_scale

NAME = "lu"
TARGET_REGS = 20
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 96  # three staged tiles (Table 1)
TILE = 16  # tile edge; a tile is 16x16 = 256 words

_DIM = {"tiny": 64, "small": 160, "paper": 1024}
_STEPS = {"tiny": 2, "small": 2, "paper": 8}

_MAT = region(0)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    n = _DIM[scale]
    outer_steps = _STEPS[scale]
    tiles = n // TILE
    # Internal-kernel CTAs per outer step: the trailing submatrix.
    ctas = []
    for step in range(outer_steps):
        for ti in range(step + 1, tiles):
            for tj in range(step + 1, tiles):
                ctas.append((step, ti, tj))
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=len(ctas),
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    tile_words = TILE * TILE
    s_row, s_col, s_own = 0, tile_words * 4, 2 * tile_words * 4

    def tile_addrs(ti: int, tj: int, row_in_tile: int):
        elem = (ti * TILE + row_in_tile) * n + tj * TILE
        # A 16-wide tile row is half a warp; two rows per warp load.
        return [_MAT + 4 * (elem + (t % TILE) + (t // TILE) * n) for t in range(WARP_SIZE)]

    def warp_fn(cta: int, warp: int, pad: int):
        step, ti, tj = ctas[cta]
        b = PaddedWarp(pad)
        # Each warp stages 2 rows of each of the three tiles.
        r0 = warp * 2
        for sbase, (src_i, src_j) in (
            (s_row, (step, tj)),  # pivot-row tile (shared across CTAs)
            (s_col, (ti, step)),  # pivot-column tile (shared across CTAs)
            (s_own, (ti, tj)),  # this CTA's tile
        ):
            v = b.load_global(tile_addrs(src_i, src_j, r0))
            b.store_shared(
                [sbase + 4 * (r0 * TILE + t) for t in range(WARP_SIZE)], v
            )
        b.barrier()
        # Tile update: own -= col * row, 16-step inner product.
        acc = b.iconst()
        own = b.load_shared([s_own + 4 * (r0 * TILE + t) for t in range(WARP_SIZE)])
        for k in range(TILE):
            cv = b.load_shared(
                [s_col + 4 * ((r0 + t // TILE) * TILE + k) for t in range(WARP_SIZE)]
            )
            rv = b.load_shared(
                [s_row + 4 * (k * TILE + t % TILE) for t in range(WARP_SIZE)]
            )
            b.alu_into(acc, cv, rv)
        out = b.alu(own, acc)
        b.barrier()
        b.store_global(tile_addrs(ti, tj, r0), out)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
