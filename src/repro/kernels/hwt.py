"""HWT -- 2D Haar wavelet transform (Bakhoda et al. suite).

Table 1: 35 registers/thread, 23 bytes/thread of shared memory.  Each
CTA transforms a tile held in shared memory through several decimation
levels with barriers; per-thread coefficient state drives the register
count.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "hwt"
TARGET_REGS = 35
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 23

_ELEMS = {"tiny": 8 * 1024, "small": 32 * 1024, "paper": 256 * 1024}

_IN, _OUT = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    n = _ELEMS[scale]
    elems_per_cta = 4 * THREADS_PER_CTA
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=n // elems_per_cta,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    tile_words = elems_per_cta  # 1024 words staged per CTA

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        base_elem = cta * elems_per_cta + warp * WARP_SIZE * 4
        # Stage 4 words per thread into shared memory and keep them live
        # in registers as well (register-heavy variant).
        held = []
        for i in range(4):
            v = b.load_global(coalesced(_IN, base_elem + i * WARP_SIZE))
            off = (warp * WARP_SIZE * 4 + i * WARP_SIZE) * 4
            b.store_shared([off + 4 * t for t in range(WARP_SIZE)], v)
            held.append(v)
        b.barrier()
        # Three decimation levels.  Coefficients are kept *compacted*:
        # level l reads the first n/2^l elements and writes results to
        # the front -- the standard layout that keeps every level's
        # accesses unit-stride and bank-conflict free (a strided layout
        # would serialise 8 ways on real hardware too).
        woff = warp * WARP_SIZE * 4 * 4
        for level in range(3):
            n_active = WARP_SIZE >> level
            # Split-half layout (evens at the front, odds behind them):
            # both halves read unit-stride, conflict-free in any design,
            # and match the compacted layout the stores below produce.
            even = b.load_shared(
                [woff + 4 * t for t in range(n_active)], active=n_active
            )
            odd = b.load_shared(
                [woff + 4 * (n_active + t) for t in range(n_active)], active=n_active
            )
            avg = b.alu(even, odd, held[level], active=n_active)
            det = b.alu(even, odd, held[level + 1], active=n_active)
            b.barrier()
            b.store_shared(
                [woff + 4 * t for t in range(n_active)], avg, active=n_active
            )
            b.store_shared(
                [woff + 4 * (n_active + t) for t in range(n_active)],
                det,
                active=n_active,
            )
            b.barrier()
        out = b.alu(held[0], held[3])
        b.store_global(coalesced(_OUT, base_elem), out)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
