"""SGEMV -- matrix-vector product, one warp per row with a small
shared-memory reduction.

Table 1: 14 registers/thread, 4 bytes/thread of shared memory.  The
matrix streams (no reuse), the input vector is re-read by every row and
cached.  Balanced / minimal capacity category.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "sgemv"
TARGET_REGS = 14
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 4  # partial sums, 4 B/thread

_SHAPE = {"tiny": (32, 256), "small": (128, 1024), "paper": (512, 4096)}

_MAT, _X, _Y = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    rows, cols = _SHAPE[scale]
    warps_per_cta = THREADS_PER_CTA // WARP_SIZE
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=rows // warps_per_cta,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        row = cta * warps_per_cta + warp
        acc = b.iconst()
        for j in range(0, cols, WARP_SIZE):
            a = b.load_global(coalesced(_MAT, row * cols + j))
            x = b.load_global(coalesced(_X, j))
            b.alu_into(acc, a, x)
        # Intra-warp reduction through this warp's shared-memory slice.
        sbase = warp * WARP_SIZE * 4
        b.store_shared([sbase + 4 * t for t in range(WARP_SIZE)], acc)
        b.barrier()
        partial = b.load_shared([sbase + 4 * (t % 16) for t in range(WARP_SIZE)])
        total = b.alu(acc, partial)
        b.store_global([_Y + 4 * row] * WARP_SIZE, total, active=1)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
