"""PCR -- parallel cyclic reduction tridiagonal solver (Zhang et al.).

Register-limited with high shared-memory bandwidth demand and a large
streamed dataset (Sections 3.2, 3.3, Figures 2, 4, 8, 9).  Table 1:
33 registers/thread, 20 bytes/thread of shared memory (the a, b, c, d,
x coefficient arrays), 2.88x DRAM accesses with no cache and 1.29x at
64 KB.

The real application runs several kernel launches; each launch
re-reads coefficient data the previous one also read.  We flatten two
launches into one trace:

* phase-1 CTAs (one per system): stage the coefficients, run log2
  steps of stride-doubling cyclic reduction in shared memory (the
  scattered stride-2^s reads are the shared-bandwidth stress), write
  the reduced system out;
* phase-2 CTAs: **re-read the original coefficients** plus the reduced
  system and back-substitute.  The re-read of the full coefficient
  dataset -- sized between the 64 KB and 256 KB cache points at the
  default scale -- is the cache-visible working set that gives pcr its
  Figure 4 sensitivity.  (The cache is no-write-allocate, so only
  read-read reuse is cacheable, exactly as in the paper's design.)
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "pcr"
TARGET_REGS = 33
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 20  # a, b, c, d, x (Table 1)

_CONFIG = {"tiny": (2, 4), "small": (24, 6), "paper": (128, 8)}
# (systems, reduction steps)

_IN, _MID, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    systems, steps = _CONFIG[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=2 * systems,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    nwords = THREADS_PER_CTA  # words per coefficient array
    sa, sb_, sc, sd = 0, nwords * 4, 2 * nwords * 4, 3 * nwords * 4

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        lane0 = warp * WARP_SIZE

        def lanes(sbase, offset=0, stride=1):
            return [
                sbase + 4 * ((lane0 + t * stride + offset) % nwords)
                for t in range(WARP_SIZE)
            ]

        if cta < systems:
            _reduce_phase(b, cta, lane0, lanes, steps)
        else:
            _substitute_phase(b, cta - systems, lane0, lanes)
        return b.finish()

    def _reduce_phase(b, system, lane0, lanes, nsteps):
        sys_elem = system * 4 * nwords
        for arr, sbase in enumerate((sa, sb_, sc, sd)):
            v = b.load_global(coalesced(_IN, sys_elem + arr * nwords + lane0))
            b.store_shared(lanes(sbase), v)
        b.barrier()
        for s in range(nsteps):
            stride = 1 << s
            am = b.load_shared(lanes(sa, -stride))
            ap = b.load_shared(lanes(sa, +stride))
            cm = b.load_shared(lanes(sc, -stride))
            cp = b.load_shared(lanes(sc, +stride))
            dm = b.load_shared(lanes(sd, -stride))
            dp = b.load_shared(lanes(sd, +stride))
            bc = b.load_shared(lanes(sb_))
            k1 = b.sfu(am, bc)  # division by the pivot
            k2 = b.sfu(ap, bc)
            na = b.alu(am, cm, k1)
            nc = b.alu(cp, k2)
            nd = b.alu(dm, dp, k1)
            nd = b.alu(nd, k2)
            b.barrier()
            b.store_shared(lanes(sa), na)
            b.store_shared(lanes(sc), nc)
            b.store_shared(lanes(sd), nd)
            b.barrier()
        for arr, sbase in enumerate((sa, sc, sd)):
            v = b.load_shared(lanes(sbase))
            b.store_global(coalesced(_MID, system * 3 * nwords + arr * nwords + lane0), v)

    def _substitute_phase(b, system, lane0, lanes):
        sys_elem = system * 4 * nwords
        # Re-read the original coefficients (the cacheable reuse) and
        # the reduced system.
        coeffs = [
            b.load_global(coalesced(_IN, sys_elem + arr * nwords + lane0))
            for arr in range(4)
        ]
        mids = [
            b.load_global(coalesced(_MID, system * 3 * nwords + arr * nwords + lane0))
            for arr in range(3)
        ]
        x = b.sfu(mids[2], mids[0])
        x = b.alu(x, mids[1], coeffs[0])
        b.store_shared(lanes(sa), x)
        b.barrier()
        left = b.load_shared(lanes(sa, -1))
        x2 = b.alu(x, left, coeffs[1])
        x2 = b.alu(x2, coeffs[2], coeffs[3])
        b.store_global(coalesced(_OUT, system * nwords + lane0), x2)

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
