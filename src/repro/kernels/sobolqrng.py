"""SobolQRNG (CUDA SDK) -- quasi-random number generation.

Table 1: 12 registers/thread, 2 bytes/thread of shared memory (staged
direction vectors).  Compute-dominated: a small direction-vector table
is read once per CTA, then each thread produces a strided output stream
with XOR chains.  No cacheable reuse beyond the tiny table.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale
from repro.kernels.patterns import alu_chain

NAME = "sobolqrng"
TARGET_REGS = 12
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 2  # direction vectors, 2 B/thread

_CONFIG = {"tiny": (4, 8), "small": (16, 16), "paper": (64, 32)}
# (CTAs, outputs per thread)

_DIRECTIONS, _OUT = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    num_ctas, per_thread = _CONFIG[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_ctas,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    total_threads = num_ctas * THREADS_PER_CTA

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        # Stage the direction vectors; the 512-byte buffer (2 B/thread,
        # Table 1) holds 128 words shared by the CTA's warps.
        smem_words = SMEM_PER_CTA // 4
        slot = [4 * ((warp * WARP_SIZE + t) % smem_words) for t in range(WARP_SIZE)]
        d = b.load_global(coalesced(_DIRECTIONS, warp * WARP_SIZE))
        b.store_shared(slot, d)
        b.barrier()
        dirs = b.load_shared(slot)
        state = b.alu(dirs)
        gtid = (cta * warps_per_cta + warp) * WARP_SIZE
        for i in range(per_thread):
            state = alu_chain(b, b.alu(state, dirs), 4)
            # Grid-stride output: thread t writes out[i*total + gtid + t].
            b.store_global(coalesced(_OUT, i * total_threads + gtid), state)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
