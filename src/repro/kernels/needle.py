"""Needle (Rodinia) -- Needleman-Wunsch DNA sequence alignment.

The paper's flagship shared-memory-limited benchmark (Sections 3.2,
6.5, Figures 3, 8, 9, 11).  Dynamic programming over an N x N score
matrix; the matrix is tiled into ``bf x bf`` sub-blocks, each processed
by one CTA that stages the block plus its halo and the reference
sub-matrix in shared memory and sweeps the 2*bf - 1 anti-diagonal
wavefront with a barrier per step.

Shared memory per CTA is ``((bf+1)^2 + bf^2) * 4`` bytes -- at the
default blocking factor of 32 that is 8452 B for a 32-thread CTA,
i.e. the 264.1 bytes/thread of Table 1.  Registers: 18/thread.

The real application launches one kernel per block anti-diagonal; we
flatten all blocks into a single launch (each CTA's trace is identical
in structure either way).  This preserves what the paper measures --
shared-memory capacity gates the number of concurrent CTAs, and more
CTAs mean more warps to cover the barrier-heavy wavefront -- while
keeping one trace per benchmark.

``blocking_factor`` exposes the Figure 11 tuning knob (16 / 32 / 64).
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, region, require_scale

NAME = "needle"
TARGET_REGS = 18
DEFAULT_BLOCKING = 32

_MATRIX_DIM = {"tiny": 64, "small": 192, "paper": 2048}

_SCORE, _REF = region(0), region(1)


def smem_bytes_for(bf: int) -> int:
    """Shared memory per CTA for a blocking factor (paper Section 3.2).

    The score block is stored with a pitch of ``bf + 2`` words: the same
    one-extra-column padding trick Rodinia uses so that anti-diagonal
    accesses (stride ``pitch - 1``) rotate across banks instead of
    colliding in one.  This adds ~1.5% to the Table 1 footprint
    (268 B/thread vs the published 264.1 at bf = 32).
    """
    return ((bf + 1) * (bf + 2) + bf**2) * 4


def build(scale: str = "small", blocking_factor: int = DEFAULT_BLOCKING) -> KernelTrace:
    require_scale(scale)
    bf = blocking_factor
    n = _MATRIX_DIM[scale]
    if bf not in (16, 32, 64):
        raise ValueError("blocking_factor must be 16, 32, or 64")
    if n % bf:
        raise ValueError(f"matrix dim {n} not divisible by blocking factor {bf}")
    blocks = n // bf
    threads_per_cta = max(WARP_SIZE, bf)
    launch = LaunchConfig(
        threads_per_cta=threads_per_cta,
        num_ctas=blocks * blocks,
        smem_bytes_per_cta=smem_bytes_for(bf),
    )
    warps_per_cta = launch.warps_per_cta
    pitch = bf + 2  # padded row pitch (see smem_bytes_for)
    halo_words = (bf + 1) * pitch
    s_block, s_ref = 0, halo_words * 4

    def warp_fn(cta: int, warp: int, pad: int):
        block_row, block_col = divmod(cta, blocks)
        active = min(WARP_SIZE, bf)
        b = PaddedWarp(pad, active=active)
        lane0 = warp * WARP_SIZE
        # Stage the reference sub-matrix (bf x bf) and the halo row/col
        # of the score matrix for this block.  Wide blocks (bf = 64)
        # stage each row in warp-sized column chunks.
        rows_per_warp = bf // warps_per_cta
        chunks = [
            (warp * rows_per_warp + r, c0)
            for r in range(rows_per_warp)
            for c0 in range(0, bf, active)
        ]
        # Stage in unrolled batches of four rows (load four, store four):
        # the standard unrolling that keeps independent loads in flight
        # instead of serialising each load behind the previous store.
        for i0 in range(0, len(chunks), 4):
            batch = chunks[i0 : i0 + 4]
            vals = []
            for row, c0 in batch:
                elem = (block_row * bf + row) * n + block_col * bf + c0
                vals.append(
                    b.load_global(
                        [_REF + 4 * (elem + t) for t in range(active)], active=active
                    )
                )
            for (row, c0), v in zip(batch, vals):
                b.store_shared(
                    [s_ref + 4 * (row * bf + c0 + t) for t in range(active)],
                    v,
                    active=active,
                )
        # North halo row and west halo column of the score matrix.
        for c0 in range(0, bf, active):
            h = b.load_global(
                [
                    _SCORE + 4 * ((block_row * bf) * n + block_col * bf + c0 + t)
                    for t in range(active)
                ],
                active=active,
            )
            b.store_shared(
                [s_block + 4 * (c0 + t) for t in range(active)], h, active=active
            )
            w = b.load_global(
                [
                    _SCORE + 4 * ((block_row * bf + c0 + t) * n + block_col * bf)
                    for t in range(active)
                ],
                active=active,
            )
            b.store_shared(
                [s_block + 4 * ((c0 + t + 1) * pitch) for t in range(active)],
                w,
                active=active,
            )
        b.barrier()
        # Anti-diagonal wavefront: step s computes cells (i, s - i).
        diag = b.iconst()  # diagonal induction variable
        for step in range(2 * bf - 1):
            # Index arithmetic for this diagonal (dependent chain, as in
            # the Rodinia kernel's t_index_x/t_index_y computation).
            diag = b.alu(diag)
            idx = b.alu(diag)
            lo = max(0, step - bf + 1)
            hi = min(step, bf - 1)
            width = hi - lo + 1
            # This warp's slice of the wavefront.
            w_lo = max(lo, lane0)
            w_hi = min(hi, lane0 + WARP_SIZE - 1)
            if w_lo <= w_hi:
                na = w_hi - w_lo + 1
                cells = [(i, step - i) for i in range(w_lo, w_hi + 1)]

                def saddr(di, dj):
                    return [
                        s_block + 4 * ((i + 1 + di) * pitch + (j + 1 + dj))
                        for i, j in cells
                    ]

                nw = b.load_shared(saddr(-1, -1), idx, active=na)
                no = b.load_shared(saddr(-1, 0), idx, active=na)
                we = b.load_shared(saddr(0, -1), idx, active=na)
                ref = b.load_shared(
                    [s_ref + 4 * (i * bf + j) for i, j in cells], active=na
                )
                m = b.alu(nw, ref, active=na)
                m = b.alu(m, no, we, active=na)
                b.store_shared(saddr(0, 0), m, active=na)
            b.barrier()
        # Write the block back (same 4-row unrolling).
        for i0 in range(0, len(chunks), 4):
            batch = chunks[i0 : i0 + 4]
            vals = [
                b.load_shared(
                    [
                        s_block + 4 * ((row + 1) * pitch + c0 + t + 1)
                        for t in range(active)
                    ],
                    active=active,
                )
                for row, c0 in batch
            ]
            for (row, c0), v in zip(batch, vals):
                elem = (block_row * bf + row) * n + block_col * bf + c0
                b.store_global(
                    [_SCORE + 4 * (elem + t) for t in range(active)], v, active=active
                )
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
