"""BicubicTexture (CUDA SDK) -- bicubic image filtering via texture
fetches.

Table 1: 33 registers/thread (register limited: spills at 18/24 regs),
no shared memory, and *flat* DRAM columns (1/1/1): texture fetches do
not go through the data cache, so data-cache capacity is irrelevant --
the benchmark stresses only the register file.  Each thread computes
one output pixel from a 4x4 texel neighbourhood (16 TEX fetches) and
the cubic weight arithmetic holds the neighbourhood live in registers.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "bicubictexture"
TARGET_REGS = 33
THREADS_PER_CTA = 256

_DIM = {"tiny": 32, "small": 96, "paper": 512}

_OUT = region(0)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    dim = _DIM[scale]
    pixels = dim * dim
    launch = LaunchConfig(threads_per_cta=THREADS_PER_CTA, num_ctas=pixels // THREADS_PER_CTA)
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        pix0 = (cta * warps_per_cta + warp) * WARP_SIZE
        u = b.iconst()
        v = b.iconst()
        # Fetch the 4x4 texel neighbourhood; all 16 stay live until the
        # weighted reduction below (the register-pressure source).
        texels = []
        for i in range(16):
            texels.append(b.tex(u, v))
        # Cubic weights: a dependent SFU/ALU chain per axis.
        wu = b.sfu(u)
        wv = b.sfu(v)
        # Weighted 4x4 reduction: rows then columns.
        row_sums = []
        for r in range(4):
            s = b.alu(texels[4 * r], texels[4 * r + 1], wu)
            s = b.alu(s, texels[4 * r + 2], texels[4 * r + 3])
            row_sums.append(s)
        out = b.alu(row_sums[0], row_sums[1], wv)
        out = b.alu(out, row_sums[2], row_sums[3])
        b.store_global(coalesced(_OUT, pix0), out)
        return b.finish()

    return build_kernel_trace(
        NAME, launch, warp_fn, target_regs=TARGET_REGS, uses_texture=True
    )
