"""DGEMM (MAGMA) -- register-blocked double-precision matrix multiply.

The paper's flagship register-limited benchmark (Sections 3.2, 3.3.1,
Figures 2, 8, 9): 57 registers/thread to avoid spills (a 6x6 register
accumulator block plus staged operand vectors), 66.5 bytes/thread of
shared memory for the A/B tiles, 128 threads per CTA.  At full
occupancy the register file needs 228 KB -- nearly the whole baseline
256 KB RF -- and the shared-memory demand (68 KB at 1024 threads)
slightly exceeds the baseline 64 KB, which is why dgemm gains from the
unified design's ability to grow both.

Structure per k-tile: stage A and B tiles to shared memory, barrier,
run the blocked inner product from shared memory into the 36
accumulators, barrier.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, region, require_scale

NAME = "dgemm"
TARGET_REGS = 57
THREADS_PER_CTA = 128
RB = 6  # register-block edge: 6x6 accumulators per thread
SMEM_PER_CTA = int(66.5 * THREADS_PER_CTA)  # 8512 B (Table 1)

_CONFIG = {"tiny": (2, 2, 4), "small": (8, 2, 8), "paper": (64, 8, 16)}
# (CTAs, k-tiles, inner steps per k-tile)

_A, _B, _C = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    num_ctas, k_tiles, kb = _CONFIG[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_ctas,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    tile_words = SMEM_PER_CTA // 4 // 2  # A and B halves
    rows_per_warp = tile_words // warps_per_cta // WARP_SIZE
    s_a, s_b = 0, tile_words * 4

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        acc = [b.iconst() for _ in range(RB * RB)]
        for kt in range(k_tiles):
            # Stage this warp's slice of the A and B tiles (doubles:
            # each element is two words; addresses advance by 8 bytes).
            for r in range(rows_per_warp):
                chunk = (warp * rows_per_warp + r) * WARP_SIZE
                ga = (cta * k_tiles + kt) * tile_words + chunk
                va = b.load_global([_A + 8 * (ga + t) for t in range(WARP_SIZE)])
                b.store_shared([s_a + 4 * (chunk + t) for t in range(WARP_SIZE)], va)
                vb = b.load_global([_B + 8 * (ga + t) for t in range(WARP_SIZE)])
                b.store_shared([s_b + 4 * (chunk + t) for t in range(WARP_SIZE)], vb)
            b.barrier()
            # Blocked inner product: per step, load a 6-vector of A and
            # a 6-vector of B from shared memory, rank-1 update the 6x6
            # accumulator block.
            for step in range(kb):
                avec = []
                bvec = []
                for i in range(RB):
                    a_off = (step * RB + i) * WARP_SIZE
                    avec.append(
                        b.load_shared(
                            [s_a + 4 * ((a_off + t) % tile_words) for t in range(WARP_SIZE)]
                        )
                    )
                    # B vectors are read in the padded layout MAGMA uses
                    # to keep the accesses bank-conflict free.
                    bvec.append(
                        b.load_shared(
                            [s_b + 4 * ((a_off + t) % tile_words) for t in range(WARP_SIZE)]
                        )
                    )
                for i in range(RB):
                    for j in range(RB):
                        b.alu_into(acc[i * RB + j], avec[i], bvec[j])
            b.barrier()
        # Write the 36 results (two words each).
        out0 = (cta * warps_per_cta + warp) * WARP_SIZE * RB * RB
        for i, a in enumerate(acc):
            b.store_global(
                [_C + 8 * (out0 + i * WARP_SIZE + t) for t in range(WARP_SIZE)], a
            )
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
