"""STO (StoreGPU) -- sliding-window hashing out of shared memory.

Table 1: 33 registers/thread, 127 bytes/thread of shared memory (the
largest per-thread scratch of the suite after needle).  The kernel
stages a data chunk into shared memory once, then runs many rounds of
shared-memory reads, hash arithmetic, and writes before emitting a
small digest.  Because almost all activity is low-latency shared memory
and ALU work, a *small* number of threads already saturates the SM --
the paper's reason sto does not benefit from unified memory despite
being shared-memory limited at full occupancy (Section 3.3.2).
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale
from repro.kernels.patterns import alu_chain

NAME = "sto"
TARGET_REGS = 33
THREADS_PER_CTA = 128
SMEM_PER_CTA = THREADS_PER_CTA * 127  # 15.875 KB per CTA

_CONFIG = {"tiny": (2, 16), "small": (4, 150), "paper": (16, 320)}
# (CTAs, hash rounds).  Rounds dominate the runtime so that -- as the
# paper observes -- a modest number of threads already saturates the SM
# and extra occupancy from unified memory buys nothing.

_DATA, _DIGEST = region(0), region(1)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    num_ctas, rounds = _CONFIG[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_ctas,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta
    words_per_warp = (SMEM_PER_CTA // 4) // warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        gbase_elem = (cta * warps_per_cta + warp) * words_per_warp
        sbase = warp * words_per_warp * 4
        # Stage this warp's chunk into shared memory.
        for r in range(words_per_warp // WARP_SIZE):
            v = b.load_global(coalesced(_DATA, gbase_elem + r * WARP_SIZE))
            b.store_shared([sbase + 4 * (r * WARP_SIZE + t) for t in range(WARP_SIZE)], v)
        b.barrier()
        # Hash rounds: sliding-window reads, mix, write back.
        state = b.iconst()
        for rnd in range(rounds):
            off = (rnd * 37) % (words_per_warp - WARP_SIZE)
            x = b.load_shared([sbase + 4 * (off + t) for t in range(WARP_SIZE)])
            y = b.load_shared(
                [sbase + 4 * ((off + t * 3) % words_per_warp) for t in range(WARP_SIZE)]
            )
            state = b.alu(state, x, y)
            state = alu_chain(b, state, 5)
            b.store_shared([sbase + 4 * (off + t) for t in range(WARP_SIZE)], state)
        d = b.alu(state)
        b.store_global(coalesced(_DIGEST, (cta * warps_per_cta + warp) * WARP_SIZE), d)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
