"""The irregular thread programs and their data generators.

Each builder seeds its data with numpy, writes it into the emulator's
global-memory image, and emulates a full launch.  Region layout follows
the suite convention (16 MB-aligned arrays).
"""

from __future__ import annotations

import numpy as np

from repro.emulator import Program, Special, emulate_kernel
from repro.emulator.ast import Var
from repro.isa.kernel import KernelTrace
from repro.kernels.base import region, require_scale

SEED = 20120615

_IN, _OUT, _TABLE, _AUX, _X = (
    region(8),
    region(9),
    region(10),
    region(11),
    region(12),
)


def _image_from_arrays(arrays: dict[int, np.ndarray]):
    """Global-init callable backed by seeded numpy arrays."""
    lookup = {}
    for base, arr in arrays.items():
        a = np.ascontiguousarray(arr, dtype=np.int64)
        lookup[base] = a

    def init(addr: int) -> int:
        for base, a in lookup.items():
            off = addr - base
            if 0 <= off < 4 * len(a):
                return int(a[off // 4]) & 0xFFFFFFFF
        return (addr * 2654435761 >> 7) & 0xFFFFFFFF

    return init


# ---------------------------------------------------------------------------
# collatz: per-thread iteration count (pure divergence stress)
# ---------------------------------------------------------------------------
def build_collatz(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    ctas = {"tiny": 2, "small": 8, "paper": 64}[scale]
    p = Program()
    g = Special("gtid")
    seed = p.load_global(g * 4 + _IN, name="n")
    p.assign(seed % 89 + 2, name="n")
    p.assign(seed * 0, name="steps")
    with p.while_(Var("n").gt(1), max_iterations=400):
        with p.if_((Var("n") % 2).eq(0)):
            p.assign(Var("n") // 2, name="n")
        with p.else_():
            p.assign(Var("n") * 3 + 1, name="n")
        p.assign(Var("steps") + 1, name="steps")
    p.store_global(g * 4 + _OUT, Var("steps"))
    return emulate_kernel(p, name="collatz", threads_per_cta=128, num_ctas=ctas)


# ---------------------------------------------------------------------------
# binsearch: batched binary search over a sorted table
# ---------------------------------------------------------------------------
def build_binsearch(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    ctas, table_len = {
        "tiny": (2, 1 << 10),
        "small": (8, 48 << 10),  # 192 KB sorted table
        "paper": (64, 1 << 20),
    }[scale]
    rng = np.random.default_rng(SEED)
    table = np.sort(rng.integers(0, 1 << 30, size=table_len))
    queries = rng.integers(0, 1 << 30, size=ctas * 128)
    init = _image_from_arrays({_TABLE: table, _IN: queries})

    p = Program()
    g = Special("gtid")
    q = p.load_global(g * 4 + _IN, name="q")
    p.assign(q * 0, name="lo")
    p.assign(q * 0 + table_len, name="hi")
    with p.while_(Var("lo").lt(Var("hi")), max_iterations=64):
        p.assign((Var("lo") + Var("hi")) // 2, name="mid")
        mid_val = p.load_global(Var("mid") * 4 + _TABLE, name="mv")
        with p.if_(mid_val.lt(Var("q"))):
            p.assign(Var("mid") + 1, name="lo")
        with p.else_():
            p.assign(Var("mid") + 0, name="hi")
    p.store_global(g * 4 + _OUT, Var("lo"))
    return emulate_kernel(
        p, name="binsearch", threads_per_cta=128, num_ctas=ctas, global_init=init
    )


# ---------------------------------------------------------------------------
# spmv: CSR sparse matrix-vector product, one thread per row
# ---------------------------------------------------------------------------
def build_spmv(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    rows, cols, avg_nnz = {
        "tiny": (256, 1024, 4),
        "small": (2048, 24 << 10, 6),  # x vector: 96 KB
        "paper": (1 << 16, 1 << 20, 8),
    }[scale]
    rng = np.random.default_rng(SEED + 1)
    nnz_per_row = rng.poisson(avg_nnz, size=rows).clip(1, 4 * avg_nnz)
    offsets = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(nnz_per_row, out=offsets[1:])
    col_idx = rng.integers(0, cols, size=int(offsets[-1]))
    init = _image_from_arrays({_IN: offsets, _TABLE: col_idx})

    p = Program()
    g = Special("gtid")
    start = p.load_global(g * 4 + _IN, name="k")
    end = p.load_global(g * 4 + 4 + _IN, name="end")
    p.assign(start * 0, name="acc")
    with p.while_(Var("k").lt(Var("end")), max_iterations=64):
        col = p.load_global(Var("k") * 4 + _TABLE, name="col")
        aval = p.load_global(Var("k") * 4 + _AUX, name="aval")  # A values
        xval = p.load_global(col * 4 + _X, name="xval")  # dense x vector
        p.assign(Var("acc") + aval * xval, name="acc")
        p.assign(Var("k") + 1, name="k")
    p.store_global(g * 4 + _OUT, Var("acc"))
    return emulate_kernel(
        p, name="spmv", threads_per_cta=128, num_ctas=rows // 128, global_init=init
    )


# ---------------------------------------------------------------------------
# hashprobe: open-addressing probe chains
# ---------------------------------------------------------------------------
def build_hashprobe(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    ctas, buckets = {
        "tiny": (2, 1 << 12),
        "small": (8, 40 << 10),  # 160 KB table
        "paper": (64, 1 << 20),
    }[scale]
    rng = np.random.default_rng(SEED + 2)
    # ~70% occupied table: nonzero marks an occupied bucket whose key is
    # usually not the probe key, forcing multi-step chains.
    table = np.where(rng.random(buckets) < 0.7, rng.integers(1, 1 << 30, size=buckets), 0)
    keys = rng.integers(1, 1 << 30, size=ctas * 128)
    init = _image_from_arrays({_TABLE: table, _IN: keys})

    p = Program()
    g = Special("gtid")
    key = p.load_global(g * 4 + _IN, name="key")
    p.assign((key * 2654435761) % buckets, name="slot")
    p.assign(key * 0, name="probes")
    p.assign(key * 0 + 1, name="searching")
    with p.while_(Var("searching").gt(0), max_iterations=48):
        entry = p.load_global(Var("slot") * 4 + _TABLE, name="entry")
        with p.if_(entry.eq(0) | entry.eq(Var("key"))):
            p.assign(Var("searching") * 0, name="searching")
        with p.else_():
            p.assign((Var("slot") + 1) % buckets, name="slot")
            p.assign(Var("probes") + 1, name="probes")
    p.store_global(g * 4 + _OUT, Var("probes"))
    return emulate_kernel(
        p, name="hashprobe", threads_per_cta=128, num_ctas=ctas, global_init=init
    )
