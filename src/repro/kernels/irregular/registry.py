"""Registry of the irregular extension workloads."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.isa.kernel import KernelTrace
from repro.kernels.irregular import workloads


@dataclass(frozen=True)
class IrregularWorkload:
    name: str
    build: Callable[..., KernelTrace]
    description: str
    #: The memory behaviour that makes it irregular.
    irregularity: str


IRREGULAR_REGISTRY: dict[str, IrregularWorkload] = {
    w.name: w
    for w in [
        IrregularWorkload(
            "collatz",
            workloads.build_collatz,
            "per-thread Collatz iteration counts",
            "data-dependent loop trip counts (pure divergence)",
        ),
        IrregularWorkload(
            "binsearch",
            workloads.build_binsearch,
            "batched binary search over a 192 KB sorted table",
            "log-depth loops; hot upper levels, scattered leaves",
        ),
        IrregularWorkload(
            "spmv",
            workloads.build_spmv,
            "CSR sparse matrix-vector product, one thread per row",
            "variable row lengths; gathers into a 96 KB dense vector",
        ),
        IrregularWorkload(
            "hashprobe",
            workloads.build_hashprobe,
            "open-addressing probes into a 160 KB hash table",
            "variable probe-chain lengths over a scattered table",
        ),
    ]
}


def get_irregular(name: str) -> IrregularWorkload:
    try:
        return IRREGULAR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown irregular workload {name!r}; available: "
            f"{', '.join(sorted(IRREGULAR_REGISTRY))}"
        ) from None


def all_irregular() -> list[IrregularWorkload]:
    return list(IRREGULAR_REGISTRY.values())
