"""Extension suite: emerging irregular workloads (paper Sections 1, 8).

The paper motivates unified memory with applications beyond the tuned
CUDA suites: "this situation is exacerbated as more applications are
mapped to GPUs, especially irregular ones with diverse memory
requirements", and concludes that the flexible design "broadens the
scope of applications that GPUs can efficiently execute".

This package makes that argument measurable.  Four irregular kernels
are written as per-thread programs and traced by the SIMT emulator
(:mod:`repro.emulator`) -- real divergence, data-dependent loop trip
counts, and pointer-chasing gathers -- then run through the same
baseline-vs-unified comparison as the paper suite
(:mod:`repro.experiments.irregular`):

* ``collatz``   -- per-thread iteration search; pure divergence stress.
* ``binsearch`` -- batched binary search over a sorted table; log-depth
  loops with hot upper levels and scattered leaves.
* ``spmv``      -- CSR sparse matrix-vector product; variable row
  lengths plus gathers into the dense vector.
* ``hashprobe`` -- open-addressing hash-table probing; variable-length
  probe chains over a scattered table.

None of them uses shared memory and all have small register footprints,
so under the Section 4.5 allocator nearly the whole pool becomes cache
-- exactly the adaptation the paper predicts these workloads need.
"""

from repro.kernels.irregular.registry import (
    IRREGULAR_REGISTRY,
    IrregularWorkload,
    all_irregular,
    get_irregular,
)

__all__ = [
    "IRREGULAR_REGISTRY",
    "IrregularWorkload",
    "all_irregular",
    "get_irregular",
]
