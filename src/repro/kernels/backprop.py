"""Backprop (Rodinia) -- neural-network layer forward pass.

Table 1: 17 registers/thread, 2.125 bytes/thread of shared memory (a
small staging buffer), DRAM 1.56x uncached: the weight matrix streams
while the input-unit vector is re-read by every output row and gets
filtered by even a small cache.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, broadcast, build_kernel_trace, coalesced, region, require_scale

NAME = "backprop"
TARGET_REGS = 17
THREADS_PER_CTA = 256
SMEM_PER_CTA = 544  # 2.125 B/thread (Table 1)

_SHAPE = {"tiny": (256, 64), "small": (1024, 256), "paper": (4096, 1024)}
# (output_units, input_units)

_W, _IN, _OUT = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    out_units, in_units = _SHAPE[scale]
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=out_units // THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        unit0 = (cta * warps_per_cta + warp) * WARP_SIZE
        acc = b.iconst()
        for j in range(in_units):
            # Weight row slice: thread t handles output unit unit0+t, so
            # consecutive threads read consecutive weights (column-major
            # weight layout, as Rodinia uses).
            w = b.load_global(coalesced(_W, j * out_units + unit0))
            x = b.load_global(broadcast(_IN, j))
            b.alu_into(acc, w, x)
        # Stage the activation through the small shared buffer.
        saddr = [4 * ((warp * WARP_SIZE + t) % (SMEM_PER_CTA // 4)) for t in range(WARP_SIZE)]
        act = b.sfu(acc)  # sigmoid
        b.store_shared(saddr, act)
        b.barrier()
        out = b.load_shared(saddr)
        b.store_global(coalesced(_OUT, unit0), out)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
