"""DwtHaar1D (CUDA SDK) -- one level of a Haar wavelet transform.

Table 1: 14 registers/thread, 8 bytes/thread of shared memory.  Each
thread loads an even/odd pair, computes average and detail coefficients
through a short shared-memory exchange, and streams both outputs.
"""

from __future__ import annotations

from repro.isa.kernel import KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE
from repro.kernels.base import PaddedWarp, build_kernel_trace, coalesced, region, require_scale

NAME = "dwthaar1d"
TARGET_REGS = 14
THREADS_PER_CTA = 256
SMEM_PER_CTA = THREADS_PER_CTA * 8  # pair staging, 8 B/thread

_ELEMS = {"tiny": 8 * 1024, "small": 64 * 1024, "paper": 512 * 1024}

_IN, _APPROX, _DETAIL = region(0), region(1), region(2)


def build(scale: str = "small") -> KernelTrace:
    require_scale(scale)
    n = _ELEMS[scale]
    pairs_per_cta = THREADS_PER_CTA
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=n // (2 * pairs_per_cta),
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    warps_per_cta = launch.warps_per_cta

    def warp_fn(cta: int, warp: int, pad: int):
        b = PaddedWarp(pad)
        pair0 = (cta * warps_per_cta + warp) * WARP_SIZE
        # Interleaved even/odd loads: two coalesced 128-byte rows.
        even = b.load_global(coalesced(_IN, 2 * pair0))
        odd = b.load_global(coalesced(_IN, 2 * pair0 + WARP_SIZE))
        sbase = warp * WARP_SIZE * 8
        b.store_shared([sbase + 8 * t for t in range(WARP_SIZE)], even)
        b.store_shared([sbase + 8 * t + 4 for t in range(WARP_SIZE)], odd)
        b.barrier()
        # Re-read as true (even, odd) pairs after the staging exchange.
        e = b.load_shared([sbase + 8 * t for t in range(WARP_SIZE)])
        o = b.load_shared([sbase + 8 * t + 4 for t in range(WARP_SIZE)])
        avg = b.alu(e, o)
        det = b.alu(e, o)
        b.store_global(coalesced(_APPROX, pair0), avg)
        b.store_global(coalesced(_DETAIL, pair0), det)
        return b.finish()

    return build_kernel_trace(NAME, launch, warp_fn, target_regs=TARGET_REGS)
