"""Miss Status Holding Registers: non-blocking miss tracking per line.

The blocking model (``SMConfig.mshr_entries == 0``) serves every cache
miss synchronously: the missing warp sleeps on its own ``dram_request``
and nothing remembers that a line fill is already in flight.  An MSHR
file is the structure that makes misses non-blocking (Kroft 1981): a
primary miss allocates an entry recording the line address and the cycle
its fill completes; a *secondary* miss to the same line while the fill
is outstanding merges into that entry -- it waits for the same fill and
generates no DRAM traffic.  When all entries are occupied, the load/
store unit stalls until the earliest outstanding fill retires (a
*structural* stall, attributed to the ``mshr_full`` cause in the
``repro.obs`` stall taxonomy).

The file is deliberately time-based rather than event-based, matching
the event-driven SM simulator it plugs into: entries are retired lazily
whenever a lookup supplies the current cycle, so the structure stays a
plain dict with no event queue.
"""

from __future__ import annotations


class MSHRFile:
    """Fixed-size table of in-flight line fills, keyed by line address.

    Args:
        num_entries: Capacity of the file; must be >= 1 (a zero-entry
            file is the blocking model, expressed by not constructing
            an :class:`MSHRFile` at all).
    """

    __slots__ = (
        "num_entries",
        "_fills",
        "primary_misses",
        "secondary_merges",
        "full_stalls",
        "full_stall_cycles",
        "peak_outstanding",
    )

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError(
                f"an MSHR file needs at least one entry, got {num_entries} "
                "(use mshr_entries=0 on SMConfig for the blocking model)"
            )
        self.num_entries = num_entries
        #: line address -> cycle the outstanding fill completes.
        self._fills: dict[int, float] = {}
        self.primary_misses = 0
        self.secondary_merges = 0
        self.full_stalls = 0
        self.full_stall_cycles = 0.0
        self.peak_outstanding = 0

    def _retire(self, now: float) -> None:
        """Drop entries whose fills have completed by ``now``."""
        fills = self._fills
        if fills:
            done = [line for line, fill in fills.items() if fill <= now]
            for line in done:
                del fills[line]

    def outstanding(self, line_addr: int, now: float) -> float | None:
        """Completion time of an in-flight fill of ``line_addr``, if any.

        Retires completed entries first, so a fill that landed at or
        before ``now`` is no longer "outstanding" (the data is in the
        cache and the lookup should consult the cache instead).
        """
        self._retire(now)
        return self._fills.get(line_addr)

    def entry_free_at(self, now: float) -> float:
        """Earliest cycle a new entry can be allocated, >= ``now``.

        ``now`` itself when the file has a free entry; otherwise the
        completion time of the earliest outstanding fill (the LSU stalls
        until one retires -- the ``mshr_full`` structural stall).
        """
        self._retire(now)
        if len(self._fills) < self.num_entries:
            return now
        return min(self._fills.values())

    def allocate(self, line_addr: int, fill_complete: float, now: float) -> None:
        """Record a primary miss whose fill lands at ``fill_complete``.

        The caller must have waited until :meth:`entry_free_at` -- this
        asserts the capacity invariant rather than silently oversubscribing.
        """
        self._retire(now)
        fills = self._fills
        if len(fills) >= self.num_entries:
            raise RuntimeError(
                f"MSHR overflow at cycle {now}: all {self.num_entries} "
                "entries outstanding (caller must stall on entry_free_at)"
            )
        if line_addr in fills:
            raise RuntimeError(
                f"duplicate MSHR allocation for line {line_addr:#x} at cycle "
                f"{now}: secondary misses must merge, not re-allocate"
            )
        fills[line_addr] = fill_complete
        self.primary_misses += 1
        n = len(fills)
        if n > self.peak_outstanding:
            self.peak_outstanding = n

    @property
    def outstanding_count(self) -> int:
        """Entries currently held (as of the last lookup's ``now``)."""
        return len(self._fills)

    def stats(self) -> dict:
        """Counters for ``SimResult.notes`` / metrics export."""
        return {
            "entries": self.num_entries,
            "primary_misses": self.primary_misses,
            "secondary_merges": self.secondary_merges,
            "full_stalls": self.full_stalls,
            "full_stall_cycles": self.full_stall_cycles,
            "peak_outstanding": self.peak_outstanding,
        }
