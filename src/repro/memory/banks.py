"""Bank-conflict models for the partitioned and unified designs.

This module implements the paper's simplified conflict model
(Section 6.1): for each warp instruction, count the accesses each memory
bank receives and charge one extra cycle per access beyond the first to
the most-contended bank.  The counting differs per design:

**Partitioned** (Section 2.1). Three separate structures:

* MRF: 4 banks per cluster, register ``r`` lives in bank ``r % 4``
  (replicated across clusters, so conflicts are cluster-independent).
  An instruction reading several MRF registers in one bank serialises.
* Shared memory: 32 independent 4-byte-wide banks, word address
  ``% 32``; distinct words in one bank serialise (the classic shared
  bank conflict).
* Cache: 128-byte lines span all 32 banks, so line reads are
  conflict-free, but the single tag port serialises multi-line
  (uncoalesced) accesses.

Register and memory structures have independent ports, so the
instruction's penalty is the *maximum* of the two.

**Unified** (Sections 4.2-4.3). One pool of 32 x 16-byte banks (4 per
cluster).  Register mapping is unchanged (``r % 4``, replicated per
cluster).  Shared memory interleaves 16-byte rows across clusters then
banks; cache lines stripe one 16-byte chunk per cluster into bank
``line_index % 4``.  Three effects now interact:

* a 16-byte row access serves every thread reading that row, but
  distinct rows in the same bank serialise;
* *arbitration conflicts*: register and memory accesses to the same
  bank serialise (register access has priority, Section 4.3);
* the tag port still serialises multi-line accesses.

The default :class:`UnifiedBanks` counts conflicts per *bank*, which is
exactly the simplified model the paper evaluates in Section 6.1 and
reports in Table 5 ("count the bank accesses across the 32 threads in
the warp ... penalty of 1 cycle for each access beyond the first to the
most-accessed bank").  :class:`ClusterPortUnifiedBanks` additionally
enforces the literal Section 4.2 restriction that only one bank per
cluster reaches the crossbar per cycle -- the difference between the two
is the paper's "simple vs. enhanced scatter/gather" design choice
(measured there at 0.5% average), exposed here as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.compiled import CompiledOp
from repro.core.partition import (
    BANK_WIDTH,
    BANKS_PER_CLUSTER,
    CACHE_LINE,
    NUM_BANKS,
    NUM_CLUSTERS,
    DesignStyle,
    MemoryPartition,
)
from repro.compiler.precompute import hist_bucket as _hist_bucket
from repro.isa.opcodes import MemSpace


@dataclass(frozen=True, slots=True)
class BankAccess:
    """Outcome of presenting one warp instruction to the banks."""

    penalty: int
    max_bank_accesses: int
    data_row_accesses: int

    @property
    def is_conflicted(self) -> bool:
        """Whether the access stalls the pipeline at all."""
        return self.penalty > 0


@dataclass(slots=True)
class ConflictHistogram:
    """Table 5: warp instructions by max accesses to a single bank."""

    at_most_1: int = 0
    exactly_2: int = 0
    exactly_3: int = 0
    exactly_4: int = 0
    over_4: int = 0

    def record(self, max_accesses: int) -> None:
        """Count one warp instruction whose busiest bank saw ``max_accesses``."""
        if max_accesses <= 1:
            self.at_most_1 += 1
        elif max_accesses == 2:
            self.exactly_2 += 1
        elif max_accesses == 3:
            self.exactly_3 += 1
        elif max_accesses == 4:
            self.exactly_4 += 1
        else:
            self.over_4 += 1

    def merge(self, other: "ConflictHistogram") -> None:
        """Add ``other``'s bucket counts into this histogram in place."""
        self.at_most_1 += other.at_most_1
        self.exactly_2 += other.exactly_2
        self.exactly_3 += other.exactly_3
        self.exactly_4 += other.exactly_4
        self.over_4 += other.over_4

    @property
    def total(self) -> int:
        """All warp instructions recorded so far."""
        return self.at_most_1 + self.exactly_2 + self.exactly_3 + self.exactly_4 + self.over_4

    def fractions(self) -> dict[str, float]:
        """Bucket shares of all recorded instructions (Table 5's columns)."""
        n = self.total or 1
        return {
            "<=1": self.at_most_1 / n,
            "2": self.exactly_2 / n,
            "3": self.exactly_3 / n,
            "4": self.exactly_4 / n,
            ">4": self.over_4 / n,
        }

    def to_dict(self) -> dict[str, int]:
        """Raw bucket counts, for metrics/profile JSON export."""
        return {
            "at_most_1": self.at_most_1,
            "exactly_2": self.exactly_2,
            "exactly_3": self.exactly_3,
            "exactly_4": self.exactly_4,
            "over_4": self.over_4,
        }


def _reg_bank_counts(regs: tuple[int, ...]) -> list[int]:
    counts = [0] * BANKS_PER_CLUSTER
    for r in regs:
        counts[r % BANKS_PER_CLUSTER] += 1
    return counts


class PartitionedBanks:
    """Conflict model for the hard-partitioned baseline (and Fermi-like).

    Exposes two equivalent interfaces: :meth:`access` computes one warp
    instruction's outcome from scratch (and records the histogram), and
    the ``planned_*`` methods resolve the same outcome through a
    precomputed :class:`~repro.compiler.precompute.OpPlan`, memoising
    per-op results so repeat simulations of a kernel become table
    lookups.  The planned paths do *not* touch :attr:`histogram`; the
    simulator accumulates buckets itself and merges once per run.
    """

    #: Key prefix for plan-level memos (one entry space per model family).
    _plan_tag = "P"

    def __init__(self, partition: MemoryPartition) -> None:
        self.partition = partition
        self.histogram = ConflictHistogram()
        #: Shared-memory banks are 4 bytes wide in the baseline.
        self.shared_bank_width = 4

    def access(
        self,
        op: CompiledOp,
        shared_base: int = 0,
        segments: list[int] | None = None,
    ) -> BankAccess:
        """Resolve one warp instruction's bank conflicts from scratch.

        Register and memory banks are separate structures in this
        design, so the stall is simply the busiest port: the MRF bank
        with the most operand reads, the shared-memory word bank with
        the most distinct words, or the cache tag port serialising
        multi-line accesses (Section 6.1's counting).

        Args:
            op: The compiled instruction (MRF operands + addresses).
            shared_base: The CTA's scratchpad allocation offset; shared
                addresses are relative to it.
            segments: Pre-coalesced 128-byte line bases for global or
                local ops (``None`` means one line).

        Returns:
            The ``(penalty, max_bank, data_rows)`` outcome; also records
            ``max_bank`` into :attr:`histogram` (Table 5).
        """
        reg_counts = _reg_bank_counts(op.mrf_reads)
        reg_max = max(reg_counts) if op.mrf_reads else 0
        mem_max = 0
        rows = 0
        if op.op.space is MemSpace.SHARED:
            words = {(shared_base + a) // self.shared_bank_width for a in op.addrs}
            bank_counts: dict[int, int] = {}
            for w in words:
                b = w % NUM_BANKS
                bank_counts[b] = bank_counts.get(b, 0) + 1
            mem_max = max(bank_counts.values(), default=0)
            rows = len({(shared_base + a) // BANK_WIDTH for a in op.addrs})
        elif op.op.is_memory:  # global / local through the cache
            n_lines = len(segments) if segments is not None else 1
            mem_max = n_lines  # every line sweeps all 32 banks once
            rows = n_lines * (CACHE_LINE // BANK_WIDTH)
        penalty = max(reg_max - 1, mem_max - 1, 0)
        max_bank = max(reg_max, mem_max)
        self.histogram.record(max_bank)
        return BankAccess(penalty, max_bank, rows)

    # -- plan-driven fast path --------------------------------------------
    def planned_shared(self, pl, addrs, shared_base: int):
        """Shared-memory outcome via the op's plan memo.

        Returns ``(penalty, histogram_bucket, data_row_accesses, 0)``
        exactly as :meth:`access` would compute it (the trailing 0 is
        the arbitration-conflict flag, which the partitioned design
        cannot have).  Word banks repeat every ``4 * NUM_BANKS`` bytes,
        so the memo key is the CTA base offset modulo 128: shifting the
        base by 128 shifts every word index by 32 banks (identity) and
        every 16-byte row index by 8 (bijective), leaving penalty,
        busiest-bank count, and row count unchanged.
        """
        sw = self.shared_bank_width
        key = ("P", shared_base % 128) if sw == 4 else ("P", sw, shared_base)
        cached = pl.shared_cache.get(key)
        if cached is None:
            words = {(shared_base + a) // sw for a in addrs}
            bank_counts: dict[int, int] = {}
            for w in words:
                b = w % NUM_BANKS
                bank_counts[b] = bank_counts.get(b, 0) + 1
            mem_max = max(bank_counts.values(), default=0)
            rows = len({(shared_base + a) // BANK_WIDTH for a in addrs})
            reg_max = pl.reg_max
            penalty = max(reg_max - 1, mem_max - 1, 0)
            cached = (penalty, _hist_bucket(max(reg_max, mem_max)), rows, 0)
            pl.shared_cache[key] = cached
        return cached

    def planned_global(self, pl):
        """Global/local outcome: fully precomputed on the plan."""
        penalty, bucket, rows = pl.part_mem
        return penalty, bucket, rows, 0

    def plan_key(self, shared_base: int):
        """Everything a CTA's bank outcomes depend on beyond the plans.

        Identical to the :meth:`planned_shared` memo key (global
        outcomes are partition-independent here), so two CTA bases with
        equal keys resolve every access identically -- the columnar
        compiler keys whole warp programs on this.
        """
        sw = self.shared_bank_width
        return ("P", shared_base % 128) if sw == 4 else ("P", sw, shared_base)


class UnifiedBanks:
    """Conflict model for the unified design (Sections 4.2-4.3).

    Like :class:`PartitionedBanks`, exposes both the from-scratch
    :meth:`access` interface and plan-driven ``planned_*`` lookups (see
    :mod:`repro.compiler.precompute`); the planned paths skip histogram
    and arbitration-counter updates, returning the would-be increments
    for the simulator to accumulate.
    """

    _plan_tag = "U"

    def __init__(self, partition: MemoryPartition) -> None:
        if partition.style is not DesignStyle.UNIFIED:
            raise ValueError("UnifiedBanks requires a unified partition")
        self.partition = partition
        self.histogram = ConflictHistogram()
        #: Shared region follows the register region within each bank.
        self.shared_region_base = partition.rf_bytes
        self.arbitration_conflicts = 0

    # -- address mapping --------------------------------------------------
    def shared_row_location(self, addr: int) -> tuple[int, int, int]:
        """(cluster, bank-in-cluster, row) of a shared-memory byte."""
        g = (self.shared_region_base + addr) // BANK_WIDTH
        return g % NUM_CLUSTERS, (g // NUM_CLUSTERS) % BANKS_PER_CLUSTER, g

    @staticmethod
    def line_bank(line_addr: int) -> int:
        """Bank-in-cluster holding a cache line (same in all clusters)."""
        return (line_addr // CACHE_LINE) % BANKS_PER_CLUSTER

    # -- conflict accounting ----------------------------------------------
    def _cluster_term(self, per_cluster_bank_rows: dict[int, dict[int, int]]) -> int:
        """Cycles a cluster needs to feed the crossbar.

        Default (paper Section 6.1 model): banks within a cluster operate
        independently, so the cluster is done when its busiest bank is.
        """
        return max(
            (
                max(banks.values())
                for banks in per_cluster_bank_rows.values()
                if banks
            ),
            default=0,
        )

    def access(
        self,
        op: CompiledOp,
        shared_base: int = 0,
        segments: list[int] | None = None,
    ) -> BankAccess:
        """Resolve one warp instruction's bank conflicts from scratch.

        In the unified pool every access — register operand, shared
        row, cache line — competes for the same 32 banks, so beyond the
        per-port terms of the partitioned model this adds the *combined*
        per-bank load (registers plus memory on the same physical bank)
        and counts an arbitration conflict when that combination, not
        any single port, is what stalls the access (Section 4.2).

        Args:
            op: The compiled instruction (MRF operands + addresses).
            shared_base: The CTA's scratchpad allocation offset within
                the shared region (which itself follows the register
                region in each bank).
            segments: Pre-coalesced 128-byte line bases for global or
                local ops (``None`` means one line).

        Returns:
            The ``(penalty, max_bank, data_rows)`` outcome; also records
            the histogram bucket and any arbitration conflict.
        """
        reg_counts = _reg_bank_counts(op.mrf_reads)
        reg_max = max(reg_counts) if op.mrf_reads else 0
        cluster_cycles = 0
        tag_serial = 0
        rows = 0
        # per-bank memory access counts, cluster-resolved:
        # combined[k] = worst-cluster count for bank-in-cluster k.
        combined_max = reg_max
        max_bank = reg_max
        if op.op.space is MemSpace.SHARED:
            per_cluster: dict[int, dict[int, int]] = {}
            seen_rows: set[int] = set()
            for a in op.addrs:
                c, k, g = self.shared_row_location(shared_base + a)
                if g in seen_rows:
                    continue  # same 16-byte row: one bank access serves all
                seen_rows.add(g)
                per_cluster.setdefault(c, {}).setdefault(k, 0)
                per_cluster[c][k] += 1
            rows = len(seen_rows)
            cluster_cycles = self._cluster_term(per_cluster)
            for banks in per_cluster.values():
                for k, n in banks.items():
                    total = n + reg_counts[k]
                    if total > combined_max:
                        combined_max = total
                    if total > max_bank:
                        max_bank = total
        elif op.op.is_memory:  # global / local through the cache
            lines = segments if segments is not None else [0]
            tag_serial = len(lines)
            rows = len(lines) * (CACHE_LINE // BANK_WIDTH)
            lines_per_bank = [0] * BANKS_PER_CLUSTER
            for la in lines:
                lines_per_bank[self.line_bank(la)] += 1
            cluster_cycles = len(lines)  # each line occupies every cluster once
            for k in range(BANKS_PER_CLUSTER):
                if lines_per_bank[k] == 0:
                    continue
                total = lines_per_bank[k] + reg_counts[k]
                if total > combined_max:
                    combined_max = total
                if total > max_bank:
                    max_bank = total
        penalty = max(reg_max - 1, cluster_cycles - 1, combined_max - 1, tag_serial - 1, 0)
        if combined_max > max(reg_max, cluster_cycles, tag_serial):
            self.arbitration_conflicts += 1
        self.histogram.record(max_bank)
        return BankAccess(penalty, max_bank, rows)

    # -- plan-driven fast path --------------------------------------------
    def planned_shared(self, pl, addrs, shared_base: int):
        """Shared-memory outcome via the op's plan memo.

        Returns ``(penalty, histogram_bucket, data_row_accesses,
        arbitration_flag)``, exactly :meth:`access`'s outcome.  The
        16-byte-row-to-(cluster, bank) mapping repeats every
        ``NUM_BANKS * BANK_WIDTH = 512`` bytes of effective offset
        (shifting the row index by 32 preserves ``row % 8`` and
        ``(row // 8) % 4``), so the memo key is the effective base --
        register-region size plus CTA offset -- modulo 512, namespaced
        by the model variant (the cluster-port ablation counts cluster
        cycles differently).
        """
        key = (self._plan_tag, (self.shared_region_base + shared_base) % 512)
        cached = pl.shared_cache.get(key)
        if cached is None:
            reg_counts = pl.reg_counts
            reg_max = pl.reg_max
            per_cluster: dict[int, dict[int, int]] = {}
            seen_rows: set[int] = set()
            base = self.shared_region_base + shared_base
            for a in addrs:
                g = (base + a) // BANK_WIDTH
                if g in seen_rows:
                    continue
                seen_rows.add(g)
                c = g % NUM_CLUSTERS
                k = (g // NUM_CLUSTERS) % BANKS_PER_CLUSTER
                per_cluster.setdefault(c, {}).setdefault(k, 0)
                per_cluster[c][k] += 1
            rows = len(seen_rows)
            cluster_cycles = self._cluster_term(per_cluster)
            combined_max = reg_max
            max_bank = reg_max
            for banks in per_cluster.values():
                for k, n in banks.items():
                    total = n + reg_counts[k]
                    if total > combined_max:
                        combined_max = total
                    if total > max_bank:
                        max_bank = total
            penalty = max(
                reg_max - 1, cluster_cycles - 1, combined_max - 1, 0
            )
            arb = 1 if combined_max > max(reg_max, cluster_cycles, 0) else 0
            cached = (penalty, _hist_bucket(max_bank), rows, arb)
            pl.shared_cache[key] = cached
        return cached

    def planned_global(self, pl):
        """Global/local outcome, memoised on the plan.

        Partition-independent in the unified design: the line-to-bank
        stripe (``(line // CACHE_LINE) % 4``) and the register operand
        counts do not involve the partition split, and the tag-port and
        cluster terms are plain line counts.  Both unified variants
        share the slot because the global path never calls
        :meth:`_cluster_term`.
        """
        cached = pl.uni_mem
        if cached is None:
            lines = pl.segments
            n = pl.n_segments
            reg_counts = pl.reg_counts
            reg_max = pl.reg_max
            lines_per_bank = [0] * BANKS_PER_CLUSTER
            for la in lines:
                lines_per_bank[(la // CACHE_LINE) % BANKS_PER_CLUSTER] += 1
            combined_max = reg_max
            max_bank = reg_max
            for k in range(BANKS_PER_CLUSTER):
                lp = lines_per_bank[k]
                if lp == 0:
                    continue
                total = lp + reg_counts[k]
                if total > combined_max:
                    combined_max = total
                if total > max_bank:
                    max_bank = total
            # cluster_cycles == tag_serial == n on this path.
            penalty = max(reg_max - 1, n - 1, combined_max - 1, 0)
            arb = 1 if combined_max > max(reg_max, n) else 0
            rows = n * (CACHE_LINE // BANK_WIDTH)
            cached = (penalty, _hist_bucket(max_bank), rows, arb)
            pl.uni_mem = cached
        return cached

    def plan_key(self, shared_base: int):
        """Everything a CTA's bank outcomes depend on beyond the plans.

        Matches the :meth:`planned_shared` memo key -- the model tag
        distinguishes the cluster-port ablation, and the effective base
        modulo the 512-byte bank pattern period pins the shared
        outcomes; global outcomes are partition-independent.
        """
        return (self._plan_tag, (self.shared_region_base + shared_base) % 512)


class ClusterPortUnifiedBanks(UnifiedBanks):
    """The literal "simple design" of Section 4.2.

    Only one bank per cluster may reach the crossbar per cycle, so a
    cluster's cycle count is the *sum* of rows across its banks.  The
    paper found the relaxed (enhanced scatter/gather) design only 0.5%
    faster on average and published results with the simplified per-bank
    conflict model of Section 6.1 -- which is why the relaxed counting in
    :class:`UnifiedBanks` is our default and this class is the ablation.
    """

    _plan_tag = "UC"

    def _cluster_term(self, per_cluster_bank_rows: dict[int, dict[int, int]]) -> int:
        return max(
            (sum(banks.values()) for banks in per_cluster_bank_rows.values()),
            default=0,
        )


def make_bank_model(partition: MemoryPartition, cluster_port: bool = False):
    """Bank model matching a partition's design style.

    Args:
        partition: The memory split.
        cluster_port: Enforce the strict one-bank-per-cluster crossbar
            port (Section 4.2 "simple design") instead of the paper's
            per-bank conflict model.
    """
    if partition.style is DesignStyle.UNIFIED:
        cls = ClusterPortUnifiedBanks if cluster_port else UnifiedBanks
        return cls(partition)
    return PartitionedBanks(partition)
