"""Shared-memory (scratchpad) allocation for resident CTAs.

Shared memory is allocated per CTA at launch and freed when the CTA
retires (Section 2: "threads in the same CTA ... can communicate through
shared memory").  The trace generators emit CTA-relative shared
addresses; the CTA scheduler rebases them with the allocation offset
handed out here so that co-resident CTAs never alias.

A simple first-fit free-list allocator is sufficient: allocations are
uniform per kernel, so fragmentation cannot occur in practice, but the
allocator stays correct for mixed sizes too.
"""

from __future__ import annotations


class SharedMemoryFile:
    """First-fit allocator over the SM's shared-memory capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        # Sorted, disjoint, non-adjacent free extents (offset, size).
        self._free: list[tuple[int, int]] = (
            [(0, capacity_bytes)] if capacity_bytes else []
        )
        self._live: dict[int, int] = {}  # base offset -> size

    @property
    def bytes_in_use(self) -> int:
        return sum(self._live.values())

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_in_use

    def alloc(self, nbytes: int) -> int | None:
        """Reserve ``nbytes``; returns the base offset or None if full.

        Zero-byte allocations succeed at offset 0 without reserving
        space (kernels that use no shared memory).
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes == 0:
            return 0
        for i, (off, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, size - nbytes)
                self._live[off] = nbytes
                return off
        return None

    def free(self, base: int) -> None:
        """Release an allocation and coalesce adjacent free extents.

        Zero-byte allocations reserve nothing and must not be freed.
        """
        size = self._live.pop(base, None)
        if size is None:
            raise KeyError(f"no live allocation at offset {base}")
        self._free.append((base, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged
