"""Warp-level memory access coalescing.

The memory access units merge the per-thread addresses of one warp
instruction into the minimum set of aligned segments: 128-byte cache
lines on the cached global/local path (Section 2.1: "the cache uses
128-byte cache lines ... and only supports aligned accesses"), and
32-byte sectors when counting DRAM transactions (the minimum DRAM fetch
the paper alludes to when noting that line fills can fetch unneeded
data, Section 3.1).
"""

from __future__ import annotations

from collections.abc import Iterable

#: Cache line size in bytes.
LINE_BYTES = 128
#: Minimum DRAM transfer in bytes.
SECTOR_BYTES = 32


def coalesce_lines(addrs: Iterable[int], line_bytes: int = LINE_BYTES) -> list[int]:
    """Distinct aligned line base addresses touched by a warp access.

    Returns the base addresses sorted ascending; the length of the result
    is the number of tag lookups the access needs.
    """
    return sorted({a - a % line_bytes for a in addrs})


def coalesce_sectors(addrs: Iterable[int], sector_bytes: int = SECTOR_BYTES) -> list[int]:
    """Distinct aligned 32-byte sector base addresses of a warp access."""
    return sorted({a - a % sector_bytes for a in addrs})


def sectors_in_line(line_base: int, line_bytes: int = LINE_BYTES,
                    sector_bytes: int = SECTOR_BYTES) -> int:
    """DRAM transactions needed to fill one cache line."""
    if line_bytes % sector_bytes:
        raise ValueError("line size must be a multiple of the sector size")
    return line_bytes // sector_bytes
