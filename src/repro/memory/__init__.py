"""Memory-subsystem models: banks, cache, scratchpad, DRAM, coalescing.

These substrates implement the Section 2.1 / 4.2 memory organisation that
both the partitioned baseline and the unified design share:

* :mod:`repro.memory.coalescer` -- merges a warp's per-thread addresses
  into 128-byte line segments (global/local space) and 32-byte DRAM
  sectors.
* :mod:`repro.memory.cache` -- the 4-way, write-through, no-write-
  allocate primary data cache with one tag lookup per cycle.
* :mod:`repro.memory.dram` -- a single SM's share of DRAM (8 bytes/cycle
  of bandwidth, 400 cycles latency, access counting -- the paper's DRAM
  traffic metric) plus the chip-level shared ``DRAMSystem`` whose
  channels arbitrate requests from multiple SMs FCFS.  Both optionally
  model banked open-page row-buffer timing (row hits pay a reduced
  latency).
* :mod:`repro.memory.mshr` -- the MSHR file that makes cache misses
  non-blocking (``SMConfig.mshr_entries > 0``): primary misses allocate
  entries, secondary misses merge into in-flight fills, a full file
  stalls the LSU.
* :mod:`repro.memory.sharedmem` -- per-CTA scratchpad allocation.
* :mod:`repro.memory.banks` -- the bank-conflict models: per-structure
  banks for the partitioned design, merged banks with arbitration
  conflicts for the unified design (Sections 4.2-4.3, Table 5).
"""

from repro.memory.banks import (
    BankAccess,
    ClusterPortUnifiedBanks,
    ConflictHistogram,
    PartitionedBanks,
    UnifiedBanks,
    make_bank_model,
)
from repro.memory.cache import CacheStats, DataCache
from repro.memory.coalescer import coalesce_lines, coalesce_sectors
from repro.memory.dram import DRAMChannel, DRAMPort, DRAMSystem
from repro.memory.mshr import MSHRFile
from repro.memory.sharedmem import SharedMemoryFile

__all__ = [
    "BankAccess",
    "CacheStats",
    "ClusterPortUnifiedBanks",
    "ConflictHistogram",
    "DRAMChannel",
    "DRAMPort",
    "DRAMSystem",
    "DataCache",
    "MSHRFile",
    "PartitionedBanks",
    "SharedMemoryFile",
    "UnifiedBanks",
    "coalesce_lines",
    "coalesce_sectors",
    "make_bank_model",
]
