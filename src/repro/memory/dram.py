"""DRAM channel model: one SM's share of chip bandwidth.

The paper's methodology (Section 5.1) simulates a single SM and gives it
8 bytes/cycle of DRAM bandwidth (1/32 of the chip's 256 bytes/cycle)
with a 400-cycle access latency (Table 2).  The model is a simple
bandwidth-reserving queue: each request serialises on the channel at
8 bytes/cycle and completes ``latency`` cycles after its data starts
transferring.  Requests must be issued in non-decreasing time order,
which the event-driven SM simulator guarantees.

The channel counts one DRAM *access* per request (a 128-byte line fill
is one access; an uncached 32-byte sector read is one access) -- this is
the metric behind Table 1 columns 10-12, where streaming benchmarks show
~4x more accesses with no cache because each warp load becomes four
sector transactions instead of one line fill.  Total bytes are tracked
separately for the 40 pJ/bit energy model.
"""

from __future__ import annotations


class DRAMChannel:
    """Latency + bandwidth + traffic accounting for one SM's DRAM share."""

    def __init__(
        self,
        bytes_per_cycle: float = 8.0,
        latency: int = 400,
        transaction_bytes: int = 32,
        observer=None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.transaction_bytes = transaction_bytes
        #: Optional ``observer(busy_start, busy_end, nbytes)`` called per
        #: request with the channel's bus-busy interval -- the hook the
        #: observability layer uses for per-window DRAM utilisation.
        self.observer = observer
        self.free_at = 0.0
        self.accesses = 0
        self.bytes_transferred = 0
        self._last_request_time = 0.0

    def request(self, now: float, nbytes: int) -> float:
        """Issue a transfer of ``nbytes`` at time ``now``.

        Returns the cycle at which the data is available to the SM
        (reads) -- stores may ignore the return value but still consume
        bandwidth.
        """
        if now < self._last_request_time:
            raise ValueError(
                f"requests must be time-ordered: {now} after {self._last_request_time}"
            )
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._last_request_time = now
        start = max(now, self.free_at)
        service = nbytes / self.bytes_per_cycle
        self.free_at = start + service
        self.accesses += 1
        self.bytes_transferred += nbytes
        if self.observer is not None:
            self.observer(start, self.free_at, nbytes)
        return start + self.latency + service

    @property
    def bits_transferred(self) -> int:
        """Off-chip traffic in bits (the energy model prices per bit)."""
        return 8 * self.bytes_transferred

    def utilisation(self, total_cycles: float) -> float:
        """Fraction of cycles the channel was transferring data."""
        return channel_utilisation(
            self.bytes_transferred, self.bytes_per_cycle, total_cycles
        )


def channel_utilisation(
    bytes_transferred: int, bytes_per_cycle: float, total_cycles: float
) -> float:
    """Busy fraction of a channel that moved ``bytes_transferred`` bytes.

    Standalone so a stored :class:`~repro.sm.result.SimResult` (which
    keeps ``dram_bytes`` and ``cycles`` but not the channel object) can
    be graded after the fact.
    """
    if total_cycles <= 0:
        return 0.0
    return min(1.0, (bytes_transferred / bytes_per_cycle) / total_cycles)
