"""DRAM models: a single SM's private channel and the shared chip system.

The paper's methodology (Section 5.1) simulates a single SM and gives it
8 bytes/cycle of DRAM bandwidth (1/32 of the chip's 256 bytes/cycle)
with a 400-cycle access latency (Table 2).  :class:`DRAMChannel` is that
model: a simple bandwidth-reserving queue where each request serialises
on the channel at 8 bytes/cycle and completes ``latency`` cycles after
its data starts transferring.  Requests must be issued in non-decreasing
time order, which the event-driven SM simulator guarantees.

:class:`DRAMSystem` is the chip-level generalisation used by
:mod:`repro.chip`: the full off-chip bandwidth split over a few
channels, arbitrated between SMs first-come-first-served with the same
bus-busy accounting.  Each SM talks to the system through a
:class:`DRAMPort`, which keeps the per-SM traffic counters the energy
model and per-SM results need (requests from *one* SM are still
time-ordered; requests from different SMs may interleave, which is
exactly the contention being modelled).  A 1-SM system with one channel
carrying the 8 B/cycle slice reproduces :class:`DRAMChannel` cycle for
cycle -- the paper's single-SM methodology is the N=1 instantiation.

Channels count one DRAM *access* per request (a 128-byte line fill is
one access; an uncached 32-byte sector read is one access) -- this is
the metric behind Table 1 columns 10-12, where streaming benchmarks show
~4x more accesses with no cache because each warp load becomes four
sector transactions instead of one line fill.  Total bytes are tracked
separately for the 40 pJ/bit energy model.
"""

from __future__ import annotations


class DRAMChannel:
    """Latency + bandwidth + traffic accounting for one SM's DRAM share."""

    def __init__(
        self,
        bytes_per_cycle: float = 8.0,
        latency: int = 400,
        transaction_bytes: int = 32,
        observer=None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.transaction_bytes = transaction_bytes
        #: Optional ``observer(busy_start, busy_end, nbytes)`` called per
        #: request with the channel's bus-busy interval -- the hook the
        #: observability layer uses for per-window DRAM utilisation.
        self.observer = observer
        self.free_at = 0.0
        self.accesses = 0
        self.bytes_transferred = 0
        #: Cycles the bus spent transferring data.  Requests reserve the
        #: bus back to back, so this equals ``bytes_transferred /
        #: bytes_per_cycle`` -- the ground truth the observer-window
        #: conservation tests check the hook against.
        self.busy_cycles = 0.0
        self._last_request_time = 0.0

    def request(self, now: float, nbytes: int) -> float:
        """Issue a transfer of ``nbytes`` at time ``now``.

        Returns the cycle at which the data is available to the SM
        (reads) -- stores may ignore the return value but still consume
        bandwidth.
        """
        if now < self._last_request_time:
            raise ValueError(
                f"DRAM requests must be issued in non-decreasing time order: "
                f"request at cycle {now} arrived after one at cycle "
                f"{self._last_request_time} (bus accounting would corrupt)"
            )
        if nbytes <= 0:
            raise ValueError(f"DRAM request size must be positive, got {nbytes}")
        self._last_request_time = now
        start = max(now, self.free_at)
        service = nbytes / self.bytes_per_cycle
        self.free_at = start + service
        self.accesses += 1
        self.bytes_transferred += nbytes
        self.busy_cycles += service
        if self.observer is not None:
            self.observer(start, self.free_at, nbytes)
        return start + self.latency + service

    @property
    def bits_transferred(self) -> int:
        """Off-chip traffic in bits (the energy model prices per bit)."""
        return 8 * self.bytes_transferred

    def utilisation(self, total_cycles: float) -> float:
        """Fraction of cycles the channel was transferring data."""
        return channel_utilisation(
            self.bytes_transferred, self.bytes_per_cycle, total_cycles
        )


class DRAMPort:
    """One SM's handle on a shared :class:`DRAMSystem`.

    Presents the same request/accounting surface as a private
    :class:`DRAMChannel` (``request``, ``accesses``,
    ``bytes_transferred``, ``bits_transferred``, ``free_at``), so the SM
    simulator is indifferent to whether its DRAM is private or shared.
    ``free_at`` is the completion time of *this SM's* last transfer, not
    the whole bus -- the quantity a per-SM result's end-of-run check
    needs.
    """

    __slots__ = (
        "system",
        "source",
        "observer",
        "accesses",
        "bytes_transferred",
        "free_at",
        "_last_request_time",
    )

    def __init__(self, system: "DRAMSystem", source: int, observer=None) -> None:
        self.system = system
        self.source = source
        #: Optional ``observer(busy_start, busy_end, nbytes)``, same hook
        #: as :attr:`DRAMChannel.observer` (per-SM DRAM utilisation).
        self.observer = observer
        self.accesses = 0
        self.bytes_transferred = 0
        self.free_at = 0.0
        self._last_request_time = 0.0

    def request(self, now: float, nbytes: int) -> float:
        """Issue a transfer of ``nbytes`` at time ``now`` (see DRAMChannel)."""
        if now < self._last_request_time:
            raise ValueError(
                f"DRAM requests from SM {self.source} must be issued in "
                f"non-decreasing time order: request at cycle {now} arrived "
                f"after one at cycle {self._last_request_time}"
            )
        if nbytes <= 0:
            raise ValueError(f"DRAM request size must be positive, got {nbytes}")
        self._last_request_time = now
        start, end = self.system._serve(now, nbytes)
        self.accesses += 1
        self.bytes_transferred += nbytes
        if end > self.free_at:
            self.free_at = end
        if self.observer is not None:
            self.observer(start, end, nbytes)
        return end + self.system.latency

    @property
    def bits_transferred(self) -> int:
        """This SM's off-chip traffic in bits."""
        return 8 * self.bytes_transferred


class DRAMSystem:
    """Chip-wide DRAM: total bandwidth over a few shared channels.

    Arbitration is first-come-first-served in *arrival* order with
    bus-busy accounting: each request picks the channel that frees
    earliest (a memory controller balancing load), starts no earlier
    than both its own issue time and that channel's ``free_at``, and
    reserves the bus for ``nbytes / bytes_per_cycle`` cycles.  Requests
    from different SMs may arrive with slightly out-of-order timestamps
    (each SM's stream is monotone, the interleaving is not); a
    later-arriving request queues behind already-accepted ones, which is
    FCFS as a memory controller would see it.

    Args:
        bytes_per_cycle: Total off-chip bandwidth (paper: 256 B/cycle).
        channels: Independent channels the bandwidth is striped over;
            each serves ``bytes_per_cycle / channels``.
        latency: Access latency in cycles (Table 2: 400).
        transaction_bytes: Sector size of uncached accesses.
        channel_observer: Optional
            ``channel_observer(channel, busy_start, busy_end, nbytes)``
            called once per served request -- the per-channel variant of
            :attr:`DRAMChannel.observer`, carrying which channel the
            arbiter placed the transfer on.  Chip-scope observability
            rides this hook for per-channel utilisation time series.
    """

    def __init__(
        self,
        bytes_per_cycle: float = 256.0,
        channels: int = 8,
        latency: int = 400,
        transaction_bytes: int = 32,
        channel_observer=None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.num_channels = channels
        self.channel_bytes_per_cycle = bytes_per_cycle / channels
        self.latency = latency
        self.transaction_bytes = transaction_bytes
        self.channel_observer = channel_observer
        self.channel_free_at = [0.0] * channels
        self.channel_accesses = [0] * channels
        self.channel_bytes = [0] * channels
        self.channel_busy = [0.0] * channels

    def port(self, source: int, observer=None) -> DRAMPort:
        """A per-SM handle with its own traffic accounting."""
        return DRAMPort(self, source, observer)

    def _serve(self, now: float, nbytes: int) -> tuple[float, float]:
        """Reserve bus time for one request; returns (start, end)."""
        free = self.channel_free_at
        c = min(range(self.num_channels), key=free.__getitem__)
        start = now if now > free[c] else free[c]
        end = start + nbytes / self.channel_bytes_per_cycle
        free[c] = end
        self.channel_accesses[c] += 1
        self.channel_bytes[c] += nbytes
        self.channel_busy[c] += end - start
        if self.channel_observer is not None:
            self.channel_observer(c, start, end, nbytes)
        return start, end

    @property
    def accesses(self) -> int:
        """Total requests served across all channels."""
        return sum(self.channel_accesses)

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved across all channels."""
        return sum(self.channel_bytes)

    @property
    def bits_transferred(self) -> int:
        return 8 * self.bytes_transferred

    @property
    def free_at(self) -> float:
        """When the last reserved transfer completes, system-wide."""
        return max(self.channel_free_at)

    def utilisation(self, total_cycles: float) -> float:
        """Fraction of total chip bandwidth-cycles actually used."""
        return channel_utilisation(
            self.bytes_transferred, self.bytes_per_cycle, total_cycles
        )


def channel_utilisation(
    bytes_transferred: int, bytes_per_cycle: float, total_cycles: float
) -> float:
    """Busy fraction of a channel that moved ``bytes_transferred`` bytes.

    Standalone so a stored :class:`~repro.sm.result.SimResult` (which
    keeps ``dram_bytes`` and ``cycles`` but not the channel object) can
    be graded after the fact.
    """
    if total_cycles <= 0:
        return 0.0
    return min(1.0, (bytes_transferred / bytes_per_cycle) / total_cycles)
