"""DRAM models: a single SM's private channel and the shared chip system.

The paper's methodology (Section 5.1) simulates a single SM and gives it
8 bytes/cycle of DRAM bandwidth (1/32 of the chip's 256 bytes/cycle)
with a 400-cycle access latency (Table 2).  :class:`DRAMChannel` is that
model: a simple bandwidth-reserving queue where each request serialises
on the channel at 8 bytes/cycle and completes ``latency`` cycles after
its data starts transferring.  Requests must be issued in non-decreasing
time order, which the event-driven SM simulator guarantees.

:class:`DRAMSystem` is the chip-level generalisation used by
:mod:`repro.chip`: the full off-chip bandwidth split over a few
channels, arbitrated between SMs first-come-first-served with the same
bus-busy accounting.  Each SM talks to the system through a
:class:`DRAMPort`, which keeps the per-SM traffic counters the energy
model and per-SM results need (requests from *one* SM are still
time-ordered; requests from different SMs may interleave, which is
exactly the contention being modelled).  A 1-SM system with one channel
carrying the 8 B/cycle slice reproduces :class:`DRAMChannel` cycle for
cycle -- the paper's single-SM methodology is the N=1 instantiation.

Channels count one DRAM *access* per request (a 128-byte line fill is
one access; an uncached 32-byte sector read is one access) -- this is
the metric behind Table 1 columns 10-12, where streaming benchmarks show
~4x more accesses with no cache because each warp load becomes four
sector transactions instead of one line fill.  Total bytes are tracked
separately for the 40 pJ/bit energy model.

Both models optionally layer *open-page row-buffer timing* on top of the
flat 400-cycle latency: a channel is split into ``banks`` banks, each
with one open row of ``row_bytes`` bytes, and a request that lands in a
bank's open row pays ``row_hit_latency`` instead of the full activate +
precharge ``latency``.  Requests carry an optional address for the
bank/row decode; address-less requests (legacy callers) always pay the
full latency.  The flat model is the ``banks=1, row_hit_latency ==
latency`` degenerate case and the default, so existing configurations
are cycle-identical.
"""

from __future__ import annotations


def _row_buffer_state(
    banks: int, row_bytes: int, row_hit_latency: int | None, latency: int
) -> tuple[int, bool]:
    """Validate row-buffer parameters; returns (hit_latency, banked?)."""
    if banks < 1:
        raise ValueError("banks must be >= 1")
    if row_bytes <= 0:
        raise ValueError("row_bytes must be positive")
    hit = latency if row_hit_latency is None else row_hit_latency
    if hit < 0 or hit > latency:
        raise ValueError(
            f"row_hit_latency must be within [0, latency={latency}], got {hit}"
        )
    # Flat FCFS is the degenerate case: one bank whose "row hit" costs
    # the same as a miss needs no row tracking at all.
    banked = banks > 1 or hit != latency
    return hit, banked


class DRAMChannel:
    """Latency + bandwidth + traffic accounting for one SM's DRAM share."""

    def __init__(
        self,
        bytes_per_cycle: float = 8.0,
        latency: int = 400,
        transaction_bytes: int = 32,
        observer=None,
        banks: int = 1,
        row_bytes: int = 2048,
        row_hit_latency: int | None = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.transaction_bytes = transaction_bytes
        self.banks = banks
        self.row_bytes = row_bytes
        self.row_hit_latency, self._banked = _row_buffer_state(
            banks, row_bytes, row_hit_latency, latency
        )
        #: Open row per bank (None = closed); only consulted when banked.
        self._open_rows: list[int | None] = [None] * banks
        self.row_hits = 0
        self.row_misses = 0
        #: Optional ``observer(busy_start, busy_end, nbytes)`` called per
        #: request with the channel's bus-busy interval -- the hook the
        #: observability layer uses for per-window DRAM utilisation.
        self.observer = observer
        self.free_at = 0.0
        self.accesses = 0
        self.bytes_transferred = 0
        #: Cycles the bus spent transferring data.  Requests reserve the
        #: bus back to back, so this equals ``bytes_transferred /
        #: bytes_per_cycle`` -- the ground truth the observer-window
        #: conservation tests check the hook against.
        self.busy_cycles = 0.0
        self._last_request_time = 0.0

    def request(self, now: float, nbytes: int, addr: int | None = None) -> float:
        """Issue a transfer of ``nbytes`` at time ``now``.

        Returns the cycle at which the data is available to the SM
        (reads) -- stores may ignore the return value but still consume
        bandwidth.  ``addr`` (a byte address) feeds the bank/row decode
        when row-buffer timing is enabled; without it the request pays
        the full row-miss latency.
        """
        if now < self._last_request_time:
            raise ValueError(
                f"DRAM requests must be issued in non-decreasing time order: "
                f"request at cycle {now} arrived after one at cycle "
                f"{self._last_request_time} (bus accounting would corrupt)"
            )
        if nbytes <= 0:
            raise ValueError(f"DRAM request size must be positive, got {nbytes}")
        self._last_request_time = now
        latency = self.latency
        if self._banked:
            latency = self._access_latency(addr)
        start = max(now, self.free_at)
        service = nbytes / self.bytes_per_cycle
        self.free_at = start + service
        self.accesses += 1
        self.bytes_transferred += nbytes
        self.busy_cycles += service
        if self.observer is not None:
            self.observer(start, self.free_at, nbytes)
        return start + latency + service

    def _access_latency(self, addr: int | None) -> int:
        """Row-buffer decode: hit latency or full latency, updating state."""
        if addr is None:
            self.row_misses += 1
            return self.latency
        chunk = addr // self.row_bytes
        bank = chunk % self.banks
        row = chunk // self.banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return self.row_hit_latency
        self._open_rows[bank] = row
        self.row_misses += 1
        return self.latency

    @property
    def bits_transferred(self) -> int:
        """Off-chip traffic in bits (the energy model prices per bit)."""
        return 8 * self.bytes_transferred

    def utilisation(self, total_cycles: float) -> float:
        """Fraction of cycles the channel was transferring data."""
        return channel_utilisation(
            self.bytes_transferred, self.bytes_per_cycle, total_cycles
        )


class DRAMPort:
    """One SM's handle on a shared :class:`DRAMSystem`.

    Presents the same request/accounting surface as a private
    :class:`DRAMChannel` (``request``, ``accesses``,
    ``bytes_transferred``, ``bits_transferred``, ``free_at``), so the SM
    simulator is indifferent to whether its DRAM is private or shared.
    ``free_at`` is the completion time of *this SM's* last transfer, not
    the whole bus -- the quantity a per-SM result's end-of-run check
    needs.
    """

    __slots__ = (
        "system",
        "source",
        "observer",
        "accesses",
        "bytes_transferred",
        "free_at",
        "_last_request_time",
    )

    def __init__(self, system: "DRAMSystem", source: int, observer=None) -> None:
        self.system = system
        self.source = source
        #: Optional ``observer(busy_start, busy_end, nbytes)``, same hook
        #: as :attr:`DRAMChannel.observer` (per-SM DRAM utilisation).
        self.observer = observer
        self.accesses = 0
        self.bytes_transferred = 0
        self.free_at = 0.0
        self._last_request_time = 0.0

    def request(self, now: float, nbytes: int, addr: int | None = None) -> float:
        """Issue a transfer of ``nbytes`` at time ``now`` (see DRAMChannel)."""
        if now < self._last_request_time:
            raise ValueError(
                f"DRAM requests from SM {self.source} must be issued in "
                f"non-decreasing time order: request at cycle {now} arrived "
                f"after one at cycle {self._last_request_time}"
            )
        if nbytes <= 0:
            raise ValueError(f"DRAM request size must be positive, got {nbytes}")
        self._last_request_time = now
        start, end, latency = self.system._serve(now, nbytes, addr)
        self.accesses += 1
        self.bytes_transferred += nbytes
        if end > self.free_at:
            self.free_at = end
        if self.observer is not None:
            self.observer(start, end, nbytes)
        return end + latency

    @property
    def bits_transferred(self) -> int:
        """This SM's off-chip traffic in bits."""
        return 8 * self.bytes_transferred


class DRAMSystem:
    """Chip-wide DRAM: total bandwidth over a few shared channels.

    Arbitration is first-come-first-served in *arrival* order with
    bus-busy accounting: each request picks the channel that frees
    earliest (a memory controller balancing load), starts no earlier
    than both its own issue time and that channel's ``free_at``, and
    reserves the bus for ``nbytes / bytes_per_cycle`` cycles.  Requests
    from different SMs may arrive with slightly out-of-order timestamps
    (each SM's stream is monotone, the interleaving is not); a
    later-arriving request queues behind already-accepted ones, which is
    FCFS as a memory controller would see it.

    Args:
        bytes_per_cycle: Total off-chip bandwidth (paper: 256 B/cycle).
        channels: Independent channels the bandwidth is striped over;
            each serves ``bytes_per_cycle / channels``.
        latency: Access latency in cycles (Table 2: 400).
        transaction_bytes: Sector size of uncached accesses.
        channel_observer: Optional
            ``channel_observer(channel, busy_start, busy_end, nbytes)``
            called once per served request -- the per-channel variant of
            :attr:`DRAMChannel.observer`, carrying which channel the
            arbiter placed the transfer on.  Chip-scope observability
            rides this hook for per-channel utilisation time series.
        banks / row_bytes / row_hit_latency: Per-channel open-page
            row-buffer timing, as on :class:`DRAMChannel`.  Requests
            that carry an address are routed to a fixed channel by the
            row-interleaved address decode (instead of the min-free
            balancer) so bank state is meaningful; address-less requests
            keep the legacy balancing and pay full latency.
    """

    def __init__(
        self,
        bytes_per_cycle: float = 256.0,
        channels: int = 8,
        latency: int = 400,
        transaction_bytes: int = 32,
        channel_observer=None,
        banks: int = 1,
        row_bytes: int = 2048,
        row_hit_latency: int | None = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if transaction_bytes <= 0:
            raise ValueError("transaction_bytes must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.num_channels = channels
        self.channel_bytes_per_cycle = bytes_per_cycle / channels
        self.latency = latency
        self.transaction_bytes = transaction_bytes
        self.channel_observer = channel_observer
        self.channel_free_at = [0.0] * channels
        self.channel_accesses = [0] * channels
        self.channel_bytes = [0] * channels
        self.channel_busy = [0.0] * channels
        self.banks = banks
        self.row_bytes = row_bytes
        self.row_hit_latency, self._banked = _row_buffer_state(
            banks, row_bytes, row_hit_latency, latency
        )
        # Rows interleave across channels first, then banks within a
        # channel: addr -> (channel, bank, row) via successive decode.
        self._open_rows: list[list[int | None]] = [
            [None] * banks for _ in range(channels)
        ]
        self.row_hits = 0
        self.row_misses = 0

    def port(self, source: int, observer=None) -> DRAMPort:
        """A per-SM handle with its own traffic accounting."""
        return DRAMPort(self, source, observer)

    def _serve(
        self, now: float, nbytes: int, addr: int | None = None
    ) -> tuple[float, float, int]:
        """Reserve bus time for one request; returns (start, end, latency)."""
        free = self.channel_free_at
        latency = self.latency
        if addr is None:
            c = min(range(self.num_channels), key=free.__getitem__)
            if self._banked:
                self.row_misses += 1
        else:
            chunk = addr // self.row_bytes
            c = chunk % self.num_channels
            if self._banked:
                chunk //= self.num_channels
                bank = chunk % self.banks
                row = chunk // self.banks
                rows = self._open_rows[c]
                if rows[bank] == row:
                    self.row_hits += 1
                    latency = self.row_hit_latency
                else:
                    rows[bank] = row
                    self.row_misses += 1
        start = now if now > free[c] else free[c]
        end = start + nbytes / self.channel_bytes_per_cycle
        free[c] = end
        self.channel_accesses[c] += 1
        self.channel_bytes[c] += nbytes
        self.channel_busy[c] += end - start
        if self.channel_observer is not None:
            self.channel_observer(c, start, end, nbytes)
        return start, end, latency

    @property
    def accesses(self) -> int:
        """Total requests served across all channels."""
        return sum(self.channel_accesses)

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved across all channels."""
        return sum(self.channel_bytes)

    @property
    def bits_transferred(self) -> int:
        return 8 * self.bytes_transferred

    @property
    def free_at(self) -> float:
        """When the last reserved transfer completes, system-wide."""
        return max(self.channel_free_at)

    def utilisation(self, total_cycles: float) -> float:
        """Fraction of total chip bandwidth-cycles actually used."""
        return channel_utilisation(
            self.bytes_transferred, self.bytes_per_cycle, total_cycles
        )


def channel_utilisation(
    bytes_transferred: int, bytes_per_cycle: float, total_cycles: float
) -> float:
    """Busy fraction of a channel that moved ``bytes_transferred`` bytes.

    Standalone so a stored :class:`~repro.sm.result.SimResult` (which
    keeps ``dram_bytes`` and ``cycles`` but not the channel object) can
    be graded after the fact.

    Returns the *true* ratio, which exceeds 1.0 when the channel is
    over-subscribed (more bandwidth-cycles demanded than ``total_cycles``
    provides) -- an accounting signal callers must not lose.  Clamp at
    the presentation layer, never here.
    """
    if total_cycles <= 0:
        return 0.0
    return (bytes_transferred / bytes_per_cycle) / total_cycles
