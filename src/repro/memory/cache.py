"""Primary data cache model.

Matches the paper's cache (Sections 2.1, 4.3, Table 2): set-associative
(4-way), 128-byte lines, LRU replacement, **write-through with
no-write-allocate** -- the unified design depends on the write-through
policy because repartitioning then never has dirty data to flush
(Section 4.4), and evictions never cost a bank access (Section 4.3).

The number of sets is ``capacity // (line * assoc)`` and may be zero, in
which case every access misses -- this models the "0 KB cache" column of
Table 1.  A capacity that is not a whole number of sets is rejected by
default so no allocated bytes are silently unmodeled; the unified
allocator (which can produce any remainder) opts into the explicit
``misaligned="floor"`` rounding and the dropped bytes are recorded in
``slack_bytes``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters of one simulation."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def reads(self) -> int:
        """Total load lookups."""
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        """Total store lookups."""
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        """Total lookups, loads plus stores."""
        return self.reads + self.writes

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when the cache saw no traffic)."""
        return (self.read_hits + self.write_hits) / self.accesses if self.accesses else 0.0

    @property
    def read_hit_rate(self) -> float:
        """Hits over load lookups only (the paper's usual hit-rate)."""
        return self.read_hits / self.reads if self.reads else 0.0

    def to_dict(self) -> dict:
        """Counters plus derived rates, for metrics/manifest JSON export."""
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class DataCache:
    """4-way write-through, no-write-allocate, LRU data cache.

    Args:
        capacity_bytes: Modeled capacity.  Must be a whole number of
            sets (``line_bytes * assoc``) unless ``misaligned="floor"``.
        misaligned: What to do when ``capacity_bytes`` is not a whole
            number of sets.  ``"error"`` (default) raises, so callers
            cannot silently model less cache than they allocated;
            ``"floor"`` rounds down to whole sets and records the
            dropped remainder in :attr:`slack_bytes` -- the unified
            allocator's remainders take this path deliberately.
    """

    def __init__(
        self,
        capacity_bytes: int,
        assoc: int = 4,
        line_bytes: int = 128,
        misaligned: str = "error",
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if assoc <= 0 or line_bytes <= 0:
            raise ValueError("assoc and line_bytes must be positive")
        if misaligned not in ("error", "floor"):
            raise ValueError(f"misaligned must be 'error' or 'floor', got {misaligned!r}")
        self.capacity_bytes = capacity_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        set_bytes = line_bytes * assoc
        #: Allocated bytes the set decomposition cannot model (always 0
        #: unless the caller passed ``misaligned="floor"``).
        self.slack_bytes = capacity_bytes % set_bytes
        if self.slack_bytes and misaligned != "floor":
            raise ValueError(
                f"cache capacity {capacity_bytes} B is not a whole number of "
                f"sets ({assoc} ways x {line_bytes} B = {set_bytes} B/set): "
                f"{self.slack_bytes} B would be silently unmodeled; pass "
                "misaligned='floor' to round down explicitly"
            )
        self.num_sets = capacity_bytes // set_bytes
        # One LRU-ordered dict of tags per set; OrderedDict front = LRU.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    @property
    def enabled(self) -> bool:
        """False for a zero-capacity partition: every access misses."""
        return self.num_sets > 0

    def _locate(self, line_addr: int) -> tuple[OrderedDict, int]:
        line_index = line_addr // self.line_bytes
        s = self._sets[line_index % self.num_sets]
        return s, line_index

    def read_line(self, line_addr: int) -> bool:
        """Read one aligned line; returns True on hit, allocates on miss."""
        if not self.enabled:
            self.stats.read_misses += 1
            return False
        s, tag = self._locate(line_addr)
        if tag in s:
            s.move_to_end(tag)
            self.stats.read_hits += 1
            return True
        self.stats.read_misses += 1
        if len(s) >= self.assoc:
            s.popitem(last=False)  # LRU eviction; lines are clean (write-through)
        s[tag] = None
        return False

    def write_line(self, line_addr: int) -> bool:
        """Write through one aligned line; returns True if it hit.

        No-write-allocate: a write miss does not install the line.  The
        caller is responsible for sending the written bytes to DRAM in
        either case.
        """
        if not self.enabled:
            self.stats.write_misses += 1
            return False
        s, tag = self._locate(line_addr)
        if tag in s:
            s.move_to_end(tag)
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Non-mutating presence probe (testing/diagnostics)."""
        if not self.enabled:
            return False
        s, tag = self._locate(line_addr)
        return tag in s

    def flush(self) -> None:
        """Invalidate all lines (repartitioning between kernels, §4.4)."""
        for s in self._sets:
            s.clear()

    @property
    def resident_lines(self) -> int:
        """Lines currently installed across all sets."""
        return sum(len(s) for s in self._sets)
