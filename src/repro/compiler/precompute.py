"""Once-per-kernel precomputation of per-op simulation invariants.

The timing simulator visits every dynamic warp instruction exactly once
per :func:`~repro.sm.simulator.simulate` call, but the paper's sweeps
(Sections 5-7) run each :class:`CompiledKernel` through *many* memory
partitions.  The quantities the hot loop used to recompute per access --
coalesced line segments and DRAM sectors from ``op.addrs``, per-bank
MRF operand counts, per-space dispatch -- are invariants of the op (or
of the op plus a small partition-layout offset), so this pass computes
them once and attaches them to the kernel:

* **Partition-independent** facts are computed eagerly per op:
  instruction *kind* (a dense int replacing the ``op.op.space`` /
  ``is_load`` branch chain), MRF per-bank read counts and the resulting
  register-conflict penalty, 128-byte line segments, 32-byte sector
  count, and the per-line sector grouping of the write-through store
  path.
* **Partition-dependent** bank outcomes are memoised lazily on the
  plan, keyed by the small set of values they actually depend on: the
  unified global/local outcome is partition-independent (one slot), and
  shared-memory outcomes depend only on the CTA's shared-base offset
  modulo the bank pattern period (see :mod:`repro.memory.banks` for the
  exactness argument), so re-simulating a kernel under a new partition
  resolves bank accesses with table lookups.
* Plans are **interned**: ops with identical timing-relevant fields
  share one plan object (and its memos), so loop-heavy kernels build
  10-60x fewer plans than they have ops and keep the live heap small.

Cycle identity: plans carry no new modelling.  Every cached value is
definitionally equal to what :meth:`repro.memory.banks.PartitionedBanks.
access` / :meth:`~repro.memory.banks.UnifiedBanks.access` computes, and
the golden tests (``tests/integration/test_golden_results.py``) pin the
end-to-end equality.

Related work motivates the shape of this optimisation: compiler-assisted
register-file caching (Abaie Shoushtary et al.) and software/hardware
cooperative RF management (Sadrosadati et al.) both hoist per-access
decisions into a once-per-kernel analysis; here the same move is applied
to the simulator itself.
"""

from __future__ import annotations

from repro.compiler.compiled import CompiledKernel, CompiledOp
from repro.core.partition import BANK_WIDTH, CACHE_LINE
from repro.isa.opcodes import OpClass
from repro.memory.coalescer import coalesce_lines, coalesce_sectors

#: Dense instruction kinds the simulator dispatches on.  The first three
#: index ``(alu, sfu, tex)`` latency tables, so their order is load-bearing.
K_ALU = 0
K_SFU = 1
K_TEX = 2
K_SHARED_LOAD = 3
K_SHARED_STORE = 4
K_GLOBAL_LOAD = 5  # global or local space, through the cache
K_GLOBAL_STORE = 6
K_BARRIER = 7

_KIND_BY_OPCLASS = {
    OpClass.ALU: K_ALU,
    OpClass.SFU: K_SFU,
    OpClass.TEX: K_TEX,
    OpClass.LOAD_SHARED: K_SHARED_LOAD,
    OpClass.STORE_SHARED: K_SHARED_STORE,
    OpClass.LOAD_GLOBAL: K_GLOBAL_LOAD,
    OpClass.STORE_GLOBAL: K_GLOBAL_STORE,
    OpClass.LOAD_LOCAL: K_GLOBAL_LOAD,
    OpClass.STORE_LOCAL: K_GLOBAL_STORE,
    OpClass.BARRIER: K_BARRIER,
}


def hist_bucket(max_bank: int) -> int:
    """Table 5 histogram bucket index (0: <=1, 1: 2, 2: 3, 3: 4, 4: >4)."""
    if max_bank <= 1:
        return 0
    return max_bank - 1 if max_bank <= 4 else 4


class OpPlan:
    """Precomputed invariants of one :class:`CompiledOp`.

    Attributes:
        kind: One of the ``K_*`` dispatch constants.
        n_mrf_reads: ``len(op.mrf_reads)`` (MRF read-energy increment).
        n_mrf_writes: ``len(op.mrf_writes)``.
        reg_counts: MRF reads per register bank (length 4).
        reg_max: Busiest-bank MRF read count.
        reg_penalty: ``max(reg_max - 1, 0)`` -- the full bank penalty of
            a non-memory op, identical under every bank model.
        reg_bucket: Histogram bucket of a non-memory op (``reg_max``).
        segments: Sorted 128-byte line bases (global/local ops only).
        n_segments: ``len(segments)``.
        n_sectors: Distinct 32-byte DRAM sectors of the access; ``-1``
            until :meth:`sector_info` computes it (cached loads never
            need sectors, so the work is deferred to first use).
        per_line_sectors: Sector count per touched line, in ascending
            line order -- the cached store path's DRAM burst sizes.
            ``None`` until :meth:`sector_info` runs.
        part_mem: Partitioned-model outcome ``(penalty, bucket, rows)``
            for global/local ops (partition-independent).
        uni_mem: Unified-model outcome ``(penalty, bucket, rows, arb)``
            for global/local ops, filled lazily by the bank model (also
            partition-independent; shared by both unified variants).
        shared_cache: Lazy memo for shared-memory ops, keyed by
            ``(model tag, effective base offset mod period)``.
    """

    __slots__ = (
        "kind",
        "n_mrf_reads",
        "n_mrf_writes",
        "reg_counts",
        "reg_max",
        "reg_penalty",
        "reg_bucket",
        "segments",
        "n_segments",
        "n_sectors",
        "per_line_sectors",
        "part_mem",
        "uni_mem",
        "shared_cache",
    )

    def __init__(self, op: CompiledOp, line_bytes: int) -> None:
        opclass = op.op
        try:
            self.kind = _KIND_BY_OPCLASS[opclass]
        except KeyError:
            raise ValueError(
                f"op class {opclass!r} cannot be timed by the SM simulator"
            ) from None
        counts = [0, 0, 0, 0]
        for r in op.mrf_reads:
            counts[r & 3] += 1  # BANKS_PER_CLUSTER == 4
        self.n_mrf_reads = len(op.mrf_reads)
        self.n_mrf_writes = len(op.mrf_writes)
        self.reg_counts = counts
        reg_max = max(counts) if op.mrf_reads else 0
        self.reg_max = reg_max
        self.reg_penalty = reg_max - 1 if reg_max > 1 else 0
        self.reg_bucket = hist_bucket(reg_max)
        self.segments = None
        self.n_segments = 0
        self.n_sectors = 0
        self.per_line_sectors = None
        self.part_mem = None
        self.uni_mem = None
        self.shared_cache = None
        kind = self.kind
        if kind == K_SHARED_LOAD or kind == K_SHARED_STORE:
            self.shared_cache = {}
        elif kind == K_GLOBAL_LOAD or kind == K_GLOBAL_STORE:
            segments = coalesce_lines(op.addrs, line_bytes)
            self.segments = segments
            n = len(segments)
            self.n_segments = n
            self.n_sectors = -1  # deferred to sector_info()
            # Partitioned model, global path: every line sweeps all 32
            # banks once, the tag port serialises multi-line accesses.
            mem_max = n
            penalty = reg_max - 1 if reg_max > mem_max else mem_max - 1
            if penalty < 0:
                penalty = 0
            max_bank = reg_max if reg_max > mem_max else mem_max
            # The bank models size rows by the architectural CACHE_LINE
            # constant, not the simulation's line_bytes -- match exactly.
            rows = n * (CACHE_LINE // BANK_WIDTH)
            self.part_mem = (penalty, hist_bucket(max_bank), rows)

    def sector_info(self, addrs, line_bytes: int) -> tuple[int, tuple[int, ...]]:
        """Compute (and cache) the sector-granular facts on first use.

        Only stores and uncached loads consume DRAM-sector counts, so
        this is deferred out of the constructor; cached loads -- the
        common case -- never pay for it.

        Args:
            addrs: The op's per-thread byte addresses.
            line_bytes: Cache line size (must match the plan's).

        Returns:
            ``(n_sectors, per_line_sectors)``, also stored on the plan.
        """
        sectors = coalesce_sectors(addrs)
        self.n_sectors = len(sectors)
        per_line: dict[int, int] = {}
        for sector in sectors:
            line = sector - sector % line_bytes
            per_line[line] = per_line.get(line, 0) + 1
        # dict preserves insertion order and sectors are ascending, so
        # values() replays the unplanned store path's DRAM order.
        self.per_line_sectors = tuple(per_line.values())
        return self.n_sectors, self.per_line_sectors


#: Interned plans, ``_interned[line_bytes][key] -> OpPlan``.  A plan is a
#: pure function of ``(kind, mrf_reads, len(mrf_writes), addrs)`` at a
#: given line size -- including every lazily-filled field (sector facts
#: and bank memos depend only on those inputs plus memo keys) -- so ops
#: with equal keys share one plan object.  Loop-heavy kernels repeat a
#: small set of operand/address patterns (10-60x dedup on the Table 1
#: suite), which keeps the live-object population small (a large tracked
#: heap slows every CPython GC pass in long suite runs) and lets a
#: plan's memos warm up across ops, warps, CTAs, and even recompiles of
#: the same trace under a different register budget.
_interned: dict[int, dict[tuple, OpPlan]] = {}


def clear_plan_cache() -> None:
    """Drop all interned plans (test isolation / memory release).

    Kernels that were already planned keep referencing their existing
    plan objects; only future :func:`plan_kernel` calls re-intern.
    """
    _interned.clear()


def plan_kernel(kernel: CompiledKernel, line_bytes: int) -> list[list[list[OpPlan]]]:
    """Plans for every op of ``kernel``, cached on the kernel.

    Args:
        kernel: The compiled kernel about to be simulated.
        line_bytes: Cache line size the simulation uses (plans embed the
            line-granular coalescing, so each line size gets its own
            table).

    Returns:
        ``plans[cta][warp][pc]`` aligned with ``kernel.ctas``; repeated
        calls with the same ``line_bytes`` return the cached table.
        Plans are interned: ops with identical timing-relevant fields
        share one :class:`OpPlan` (see ``_interned``).
    """
    cache = kernel._plan_cache
    plans = cache.get(line_bytes)
    if plans is None:
        interned = _interned.get(line_bytes)
        if interned is None:
            interned = _interned[line_bytes] = {}
        kind_by = _KIND_BY_OPCLASS
        plans = []
        for cta in kernel.ctas:
            cta_plans = []
            for warp in cta.warps:
                warp_plans = []
                for op in warp.ops:
                    key = (
                        kind_by.get(op.op, -1),
                        op.mrf_reads,
                        len(op.mrf_writes),
                        op.addrs,
                    )
                    pl = interned.get(key)
                    if pl is None:
                        pl = interned[key] = OpPlan(op, line_bytes)
                    warp_plans.append(pl)
                cta_plans.append(warp_plans)
            plans.append(cta_plans)
        cache[line_bytes] = plans
    return plans
