"""Register-file-hierarchy operand tagging (MRF / ORF / LRF).

Reproduces, at compile time, the software-controlled register file
hierarchy of Gebhart et al. [9] that the paper identifies as the key
enabler of unification (Sections 2.1 and 4.3): a last result file (LRF,
one entry per thread), an operand register file (ORF, four entries per
thread), and the main register file (MRF).  Only the MRF occupies the
banked storage that the unified design merges with cache and shared
memory, so only MRF accesses participate in bank conflicts and bank
energy.

Model (greedy, matching the contract of the two-level warp scheduler):

* A *deschedule point* follows every long-latency instruction
  (global/local memory, texture) and every barrier.  The LRF and ORF are
  invalidated there -- any value live across the point must already be
  in the MRF.
* Results of single-cycle ALU ops land in the LRF and ORF; results of
  other short-latency ops (SFU, shared loads) land in the ORF.  Results
  of long-latency ops return directly to the MRF.
* The ORF holds the four most recently written registers of the current
  scheduling segment (FIFO).
* A source operand reads from the LRF if it was produced by the
  immediately preceding ALU op of the same segment; otherwise from the
  ORF if its value is still resident there; otherwise from the MRF.
* A value is written to the MRF only if some later read actually needs
  it from the MRF (lazy write-back marking).  This is the minimal set
  consistent with the deschedule contract and mirrors the compiler
  allocation of [9].
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.opcodes import OpClass
from repro.compiler.regalloc import ShapeOp

#: ORF capacity in entries per thread (paper Section 2.1).
ORF_ENTRIES = 4


@dataclass(slots=True)
class OperandTags:
    """Hierarchy tags for one instruction's operands."""

    mrf_reads: tuple[int, ...] = ()
    lrf_reads: int = 0
    orf_reads: int = 0
    mrf_write: bool = False
    lrf_write: bool = False
    orf_write: bool = False


def tag_hierarchy(shape: list[ShapeOp], orf_entries: int = ORF_ENTRIES) -> list[OperandTags]:
    """Tag every operand of an architectural-register stream.

    Args:
        shape: ``(opclass, dst, srcs)`` over architectural registers,
            including any spill fills/stores already inserted.
        orf_entries: ORF capacity (default 4, per the paper).  Zero
            disables the whole hierarchy (LRF included): every operand
            is served by MRF banks -- the ablation of the paper's "key
            enabler" (Section 6.1).

    Returns:
        One :class:`OperandTags` per instruction.  ``mrf_write`` may be
        set retroactively on an earlier instruction when a later read
        needs its value from the MRF (lazy write-back marking).
    """
    tags = [OperandTags() for _ in shape]
    # (reg, producer_idx) of the value currently in the LRF, or None.
    lrf: tuple[int, int] | None = None
    # FIFO of (reg, producer_idx) currently in the ORF.
    orf: deque[tuple[int, int]] = deque(maxlen=orf_entries)
    # reg -> producer idx of its current value.
    producer: dict[int, int] = {}
    # Producers already marked as writing the MRF.
    mrf_written: set[int] = set()

    def read_source(i: int, reg: int) -> None:
        t = tags[i]
        if lrf is not None and lrf[0] == reg and producer.get(reg) == lrf[1]:
            t.lrf_reads += 1
            return
        p = producer.get(reg)
        for oreg, opidx in orf:
            if oreg == reg and p == opidx:
                t.orf_reads += 1
                return
        t.mrf_reads = (*t.mrf_reads, reg)
        if p is not None and p not in mrf_written:
            # Retroactively promote the producing instruction to write
            # the MRF: the value is being read from there.
            tags[p].mrf_write = True
            mrf_written.add(p)

    for i, (op, dst, srcs) in enumerate(shape):
        seen: set[int] = set()
        for r in srcs:
            if r in seen:
                continue  # a register read twice costs one bank access
            seen.add(r)
            read_source(i, r)
        if dst is not None:
            producer[dst] = i
            if op.is_long_latency:
                # Long-latency results return after the warp has been
                # descheduled; they write the MRF directly.
                tags[i].mrf_write = True
                mrf_written.add(i)
                lrf = None
            elif orf_entries > 0:
                tags[i].orf_write = True
                orf.append((dst, i))
                if op is OpClass.ALU:
                    tags[i].lrf_write = True
                    lrf = (dst, i)
                else:
                    lrf = None
            else:
                # Hierarchy disabled: results go straight to the MRF.
                tags[i].mrf_write = True
                mrf_written.add(i)
                lrf = None
        if op.is_long_latency or op is OpClass.BARRIER:
            # Deschedule point: LRF/ORF contents are invalidated.
            lrf = None
            orf.clear()
    return tags


def mrf_write_registers(op_dst: int | None, tag: OperandTags) -> tuple[int, ...]:
    """Registers this instruction writes to MRF banks."""
    if tag.mrf_write and op_dst is not None:
        return (op_dst,)
    return ()
