"""Compile-time passes that lower kernel traces for the SM simulator.

The paper's SM relies on two compiler-managed mechanisms that this
package reproduces:

1. **Register allocation with spills** (Section 3.1).  Kernels emit
   streams over virtual registers; :mod:`repro.compiler.regalloc` runs a
   linear-scan allocator with Belady (furthest-next-use) eviction for a
   given architectural register budget and inserts ``LOAD_LOCAL`` /
   ``STORE_LOCAL`` spill code.  The no-spill requirement (Table 1,
   column 2) is the maximum number of simultaneously live values
   (:func:`repro.compiler.liveness.max_live_registers`).

2. **Software-controlled register file hierarchy** (Section 2.1,
   refs [8, 9]).  :mod:`repro.compiler.rfhierarchy` tags every operand
   with the level that serves it -- last result file (LRF, 1
   entry/thread), operand register file (ORF, 4 entries/thread), or main
   register file (MRF) -- using a greedy schedule that flushes live
   values to the MRF at every deschedule point (long-latency ops and
   barriers), exactly the contract of the two-level warp scheduler.
   This pass is what reduces MRF bandwidth by ~60% and thereby enables
   unification (Section 4.3).

:func:`repro.compiler.pipeline.compile_kernel` chains the passes and
produces the :class:`~repro.compiler.compiled.CompiledKernel` the timing
simulator consumes.
"""

from repro.compiler.compiled import CompiledCTA, CompiledKernel, CompiledOp, CompiledWarp
from repro.compiler.liveness import live_intervals, max_live_registers
from repro.compiler.pipeline import compile_kernel, compile_warp
from repro.compiler.regalloc import SpillSchedule, schedule_registers

__all__ = [
    "CompiledCTA",
    "CompiledKernel",
    "CompiledOp",
    "CompiledWarp",
    "SpillSchedule",
    "compile_kernel",
    "compile_warp",
    "live_intervals",
    "max_live_registers",
    "schedule_registers",
]
