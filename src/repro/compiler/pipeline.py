"""Compilation pipeline: trace -> spill schedule -> hierarchy tags -> CompiledKernel.

Warps of data-parallel kernels usually share one register *shape* (same
ops and registers, different addresses), so the expensive passes run once
per distinct shape and their results are cached and re-materialised per
warp with that warp's addresses and spill-slot locations.

Spilled values are addressed in an interleaved thread-local layout,
matching how real GPUs lay out local memory so that a warp's accesses to
the same spill slot coalesce into a single 128-byte line:

    addr = LOCAL_BASE + warp_uid * warp_stride + slot * 128 + lane * 4
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.compiled import (
    CompiledCTA,
    CompiledKernel,
    CompiledOp,
    CompiledWarp,
    RFTrafficCounts,
)
from repro.compiler.bankassign import assign_banks, remap_shape
from repro.compiler.liveness import max_live_registers
from repro.compiler.regalloc import Fill, ShapeOp, Spill, schedule_registers
from repro.compiler.rfhierarchy import OperandTags, tag_hierarchy
from repro.isa.kernel import KernelTrace
from repro.isa.opcodes import OpClass
from repro.isa.trace import WARP_SIZE, WarpOp

#: Base of the thread-local (spill) address region.  Kernels place their
#: data well below this, so spill traffic never aliases kernel data.
LOCAL_BASE = 1 << 40

#: Bytes reserved per spill slot per warp: 32 lanes x 4 bytes.
SLOT_BYTES = 4 * WARP_SIZE


@dataclass(slots=True)
class _ShapeCompilation:
    """Cached result of compiling one register shape."""

    entries: list  # schedule entries (Fill / Spill / Rewrite)
    tags: list[OperandTags]
    arch_shape: list[ShapeOp]
    num_slots: int
    regs_used: int
    max_live: int


class _ShapeCache:
    def __init__(self, num_regs: int, orf_entries: int) -> None:
        self.num_regs = num_regs
        self.orf_entries = orf_entries
        self._cache: dict[tuple, _ShapeCompilation] = {}

    def compile(self, ops: list[WarpOp]) -> _ShapeCompilation:
        key = tuple((op.op, op.dst, op.srcs) for op in ops)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        shape: list[ShapeOp] = [(op.op, op.dst, op.srcs) for op in ops]
        peak = max_live_registers(ops)
        schedule = schedule_registers(shape, self.num_regs)
        arch_shape: list[ShapeOp] = []
        for entry in schedule.entries:
            if isinstance(entry, Fill):
                arch_shape.append((OpClass.LOAD_LOCAL, entry.reg, ()))
            elif isinstance(entry, Spill):
                arch_shape.append((OpClass.STORE_LOCAL, None, (entry.reg,)))
            else:
                arch_shape.append((shape[entry.index][0], entry.dst, entry.srcs))
        tags = tag_hierarchy(arch_shape, orf_entries=self.orf_entries)
        # Bank-aware relabelling (the compiler technique of ref [27] the
        # paper relies on for its "bank conflicts are rare" baseline).
        mapping = assign_banks(arch_shape, tags, self.num_regs)
        arch_shape, tags = remap_shape(arch_shape, tags, mapping)
        result = _ShapeCompilation(
            entries=schedule.entries,
            tags=tags,
            arch_shape=arch_shape,
            num_slots=schedule.num_slots,
            regs_used=schedule.regs_used,
            max_live=peak,
        )
        self._cache[key] = result
        return result


def _materialise(
    ops: list[WarpOp],
    comp: _ShapeCompilation,
    warp_uid: int,
    warp_stride: int,
) -> CompiledWarp:
    """Instantiate a cached shape compilation for one concrete warp."""
    local_base = LOCAL_BASE + warp_uid * warp_stride
    compiled: list[CompiledOp] = []
    traffic = RFTrafficCounts()
    for entry, (op_class, dst, srcs), tag in zip(comp.entries, comp.arch_shape, comp.tags):
        if isinstance(entry, (Fill, Spill)):
            src_op = ops[entry.at]
            active = src_op.active
            base = local_base + entry.slot * SLOT_BYTES
            addrs = tuple(base + 4 * lane for lane in range(active))
        else:
            src_op = ops[entry.index]
            active = src_op.active
            addrs = src_op.addrs
        mrf_writes = (dst,) if (tag.mrf_write and dst is not None) else ()
        compiled.append(
            CompiledOp(
                op=op_class,
                dst=dst,
                srcs=srcs,
                mrf_reads=tag.mrf_reads,
                mrf_writes=mrf_writes,
                lrf_reads=tag.lrf_reads,
                orf_reads=tag.orf_reads,
                lrf_writes=1 if tag.lrf_write else 0,
                orf_writes=1 if tag.orf_write else 0,
                addrs=addrs,
                active=active,
            )
        )
        traffic.mrf_reads += len(tag.mrf_reads)
        traffic.mrf_writes += len(mrf_writes)
        traffic.orf_reads += tag.orf_reads
        traffic.lrf_reads += tag.lrf_reads
        traffic.orf_writes += 1 if tag.orf_write else 0
        traffic.lrf_writes += 1 if tag.lrf_write else 0
    return CompiledWarp(
        ops=compiled,
        regs_used=comp.regs_used,
        spill_slots=comp.num_slots,
        rf_traffic=traffic,
    )


def compile_warp(
    ops: list[WarpOp], num_regs: int, warp_uid: int = 0, orf_entries: int | None = None
) -> CompiledWarp:
    """Compile a single warp stream (convenience entry point for tests)."""
    from repro.compiler.rfhierarchy import ORF_ENTRIES

    cache = _ShapeCache(num_regs, ORF_ENTRIES if orf_entries is None else orf_entries)
    comp = cache.compile(ops)
    stride = max(comp.num_slots, 1) * SLOT_BYTES
    return _materialise(ops, comp, warp_uid, stride)


def compile_kernel(
    trace: KernelTrace,
    regs_per_thread: int | None = None,
    orf_entries: int | None = None,
) -> CompiledKernel:
    """Lower a kernel trace onto a register budget.

    Args:
        trace: Kernel trace over virtual registers.
        regs_per_thread: Architectural register budget.  ``None`` uses
            the kernel's own peak liveness (the no-spill allocation of
            Table 1, column 2).
        orf_entries: ORF capacity per thread; ``None`` uses the paper's
            4 entries, 0 disables the LRF/ORF hierarchy entirely (the
            Section 6.1 "key enabler" ablation).

    Returns:
        A :class:`~repro.compiler.compiled.CompiledKernel` with spill
        code inserted and every operand tagged with its RF-hierarchy
        level.
    """
    max_live = max(
        (max_live_registers(w) for cta in trace.ctas for w in cta.warps), default=0
    )
    budget = max_live if regs_per_thread is None else regs_per_thread
    if budget <= 0:
        raise ValueError("register budget must be positive")
    from repro.compiler.rfhierarchy import ORF_ENTRIES

    cache = _ShapeCache(budget, ORF_ENTRIES if orf_entries is None else orf_entries)
    # First pass: compile all shapes to learn the kernel-wide slot count,
    # which fixes the per-warp local-memory stride.
    compilations = [
        [cache.compile(w) for w in cta.warps] for cta in trace.ctas
    ]
    max_slots = max(
        (c.num_slots for per_cta in compilations for c in per_cta), default=0
    )
    warp_stride = max(max_slots, 1) * SLOT_BYTES
    ctas: list[CompiledCTA] = []
    warp_uid = 0
    for cta, per_cta in zip(trace.ctas, compilations):
        warps = []
        for w, comp in zip(cta.warps, per_cta):
            warps.append(_materialise(w, comp, warp_uid, warp_stride))
            warp_uid += 1
        ctas.append(CompiledCTA(warps))
    return CompiledKernel(
        name=trace.name,
        launch=trace.launch,
        ctas=ctas,
        regs_per_thread=budget,
        max_live=max_live,
        uses_texture=trace.uses_texture,
    )
