"""Compiled (architectural-register) trace representation.

After register allocation and RF-hierarchy tagging, every warp
instruction becomes a :class:`CompiledOp` whose operands are
architectural registers annotated with the register-file level that
serves them.  These records carry everything the timing simulator and
energy model need:

* ``dst`` / ``srcs`` -- architectural registers, for scoreboard
  dependence tracking;
* ``mrf_reads`` / ``mrf_writes`` -- the subset of operands that actually
  touch main-register-file banks (bank conflicts + bank energy);
* ``lrf_reads`` / ``orf_reads`` / ``orf_writes`` / ``lrf_writes`` --
  hierarchy hit counts (energy only; the small structures are
  conflict-free per [9]);
* ``addrs`` -- per-thread byte addresses for memory ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.kernel import LaunchConfig
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceStats


@dataclass(frozen=True, slots=True)
class CompiledOp:
    """One warp instruction over architectural registers."""

    op: OpClass
    dst: int | None
    srcs: tuple[int, ...]
    mrf_reads: tuple[int, ...]
    mrf_writes: tuple[int, ...]
    lrf_reads: int
    orf_reads: int
    lrf_writes: int
    orf_writes: int
    addrs: tuple[int, ...] | None
    active: int


@dataclass(slots=True)
class RFTrafficCounts:
    """Register-file hierarchy traffic of one compiled stream."""

    mrf_reads: int = 0
    mrf_writes: int = 0
    orf_reads: int = 0
    orf_writes: int = 0
    lrf_reads: int = 0
    lrf_writes: int = 0

    def add(self, other: "RFTrafficCounts") -> None:
        self.mrf_reads += other.mrf_reads
        self.mrf_writes += other.mrf_writes
        self.orf_reads += other.orf_reads
        self.orf_writes += other.orf_writes
        self.lrf_reads += other.lrf_reads
        self.lrf_writes += other.lrf_writes

    @property
    def total_reads(self) -> int:
        return self.mrf_reads + self.orf_reads + self.lrf_reads

    @property
    def total_writes(self) -> int:
        return self.mrf_writes + self.orf_writes + self.lrf_writes

    @property
    def mrf_read_fraction(self) -> float:
        """Fraction of operand reads served by the MRF.

        The paper's enabling prior work reduces MRF accesses by ~60%,
        i.e. this fraction should sit near 0.4 for typical kernels.
        """
        total = self.total_reads
        return self.mrf_reads / total if total else 0.0


@dataclass(slots=True)
class CompiledWarp:
    """Compiled instruction stream of one warp."""

    ops: list[CompiledOp]
    regs_used: int
    spill_slots: int
    rf_traffic: RFTrafficCounts

    @property
    def num_ops(self) -> int:
        return len(self.ops)


@dataclass(slots=True)
class CompiledCTA:
    warps: list[CompiledWarp]

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def total_ops(self) -> int:
        return sum(w.num_ops for w in self.warps)


@dataclass(slots=True)
class CompiledKernel:
    """A fully lowered kernel launch, ready for timing simulation."""

    name: str
    launch: LaunchConfig
    ctas: list[CompiledCTA]
    regs_per_thread: int
    max_live: int
    uses_texture: bool = False
    _stats: TraceStats | None = field(default=None, repr=False, compare=False)
    #: Per-line-size simulation plans (see :mod:`repro.compiler.precompute`);
    #: lazily filled by the first ``simulate()`` call and reused by every
    #: subsequent simulation of this kernel.
    _plan_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def total_ops(self) -> int:
        return sum(cta.total_ops for cta in self.ctas)

    @property
    def spill_slots(self) -> int:
        return max((w.spill_slots for cta in self.ctas for w in cta.warps), default=0)

    def rf_traffic(self) -> RFTrafficCounts:
        total = RFTrafficCounts()
        for cta in self.ctas:
            for warp in cta.warps:
                total.add(warp.rf_traffic)
        return total

    def stats(self) -> TraceStats:
        if self._stats is None:
            self._stats = TraceStats.from_ops(
                op for cta in self.ctas for warp in cta.warps for op in warp.ops
            )
        return self._stats

    def dynamic_instruction_ratio(self, baseline_ops: int) -> float:
        """Dynamic instruction count relative to a no-spill baseline.

        This is the spill-overhead metric of Table 1 columns 3-7.
        """
        if baseline_ops <= 0:
            raise ValueError("baseline_ops must be positive")
        return self.total_ops / baseline_ops
