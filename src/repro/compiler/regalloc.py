"""Linear-scan register allocation with Belady spill selection.

The allocator runs over the *register shape* of a warp stream -- the
sequence of ``(opclass, dst_vreg, srcs_vregs)`` tuples -- and produces a
:class:`SpillSchedule`: the original ops rewritten onto architectural
registers, interleaved with ``fill``/``spill`` directives that the
pipeline later materialises as ``LOAD_LOCAL``/``STORE_LOCAL``
instructions.

Because the dynamic stream is straight-line, furthest-next-use (Belady)
eviction is the optimal offline policy; with a register budget at least
equal to the stream's peak liveness the schedule provably contains no
spill code, which is exactly the paper's definition of the no-spill
register requirement (Table 1, column 2).

Spilled values live in thread-local memory, which -- as on real GPUs --
is backed by the global memory path and therefore competes for cache
capacity and DRAM bandwidth (Section 3.1 couples spill overhead to cache
pressure through this mechanism).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Union

from repro.compiler.liveness import next_use_table
from repro.isa.opcodes import OpClass

#: Sentinel next-use position for values that are never read again.
_NO_USE = 1 << 60

#: Register shape of one op: (opclass, dst vreg or None, src vregs).
ShapeOp = tuple[OpClass, Union[int, None], tuple[int, ...]]


@dataclass(frozen=True, slots=True)
class Fill:
    """Reload a spilled value from its local-memory slot."""

    slot: int
    reg: int
    at: int  # index of the op about to consume the value


@dataclass(frozen=True, slots=True)
class Spill:
    """Write a live value out to its local-memory slot."""

    slot: int
    reg: int
    at: int


@dataclass(frozen=True, slots=True)
class Rewrite:
    """An original op with operands rewritten to architectural registers."""

    index: int
    dst: int | None
    srcs: tuple[int, ...]


ScheduleEntry = Union[Fill, Spill, Rewrite]


@dataclass(slots=True)
class SpillSchedule:
    """Result of allocating one warp stream onto ``num_regs`` registers."""

    entries: list[ScheduleEntry]
    num_regs: int
    regs_used: int
    num_slots: int

    @property
    def num_fills(self) -> int:
        return sum(1 for e in self.entries if isinstance(e, Fill))

    @property
    def num_spills(self) -> int:
        return sum(1 for e in self.entries if isinstance(e, Spill))

    @property
    def total_ops(self) -> int:
        return len(self.entries)


class _Allocator:
    """Single-use allocator state for one stream."""

    def __init__(self, shape: list[ShapeOp], num_regs: int) -> None:
        self.shape = shape
        self.num_regs = num_regs
        self.uses = next_use_table(shape)
        self.use_ptr = {v: 0 for v in self.uses}
        self.reg_of: dict[int, int] = {}
        self.vreg_of: dict[int, int] = {}
        self.free = list(range(num_regs - 1, -1, -1))
        self.dirty: set[int] = set()
        self.slot_of: dict[int, int] = {}
        self.heap: list[tuple[int, int]] = []  # (-next_use, vreg), lazily invalidated
        self.heap_key: dict[int, int] = {}
        self.entries: list[ScheduleEntry] = []
        self.regs_used = 0

    # -- next-use bookkeeping ------------------------------------------
    def _next_use(self, vreg: int, after: int) -> int:
        uses = self.uses.get(vreg)
        if not uses:
            return _NO_USE
        ptr = self.use_ptr[vreg]
        while ptr < len(uses) and uses[ptr] <= after:
            ptr += 1
        self.use_ptr[vreg] = ptr
        return uses[ptr] if ptr < len(uses) else _NO_USE

    def _push_heap(self, vreg: int, next_use: int) -> None:
        self.heap_key[vreg] = next_use
        heapq.heappush(self.heap, (-next_use, vreg))

    # -- residency ------------------------------------------------------
    def _free_reg(self, vreg: int, recycle: bool = True) -> None:
        reg = self.reg_of.pop(vreg)
        del self.vreg_of[reg]
        self.dirty.discard(vreg)
        self.heap_key.pop(vreg, None)
        if recycle:
            self.free.append(reg)

    def _evict(self, at: int, protect: set[int]) -> int:
        """Evict the resident value with the furthest next use."""
        while self.heap:
            neg_use, vreg = heapq.heappop(self.heap)
            if self.reg_of.get(vreg) is None or self.heap_key.get(vreg) != -neg_use:
                continue  # stale entry
            if vreg in protect:
                # Re-insert and scan linearly among the rest; protected sets
                # are tiny (operands of one instruction).
                candidates = [
                    v for v in self.reg_of if v not in protect and v != vreg
                ]
                self._push_heap(vreg, -neg_use)
                if not candidates:
                    raise RuntimeError(
                        f"op {at}: cannot evict, all {self.num_regs} registers "
                        "are pinned by one instruction's operands"
                    )
                victim = max(candidates, key=lambda v: self.heap_key.get(v, _NO_USE))
                return self._do_evict(victim, at)
            return self._do_evict(vreg, at)
        raise RuntimeError(f"op {at}: no resident value to evict")

    def _do_evict(self, vreg: int, at: int) -> int:
        reg = self.reg_of[vreg]
        has_future_use = self.heap_key.get(vreg, _NO_USE) != _NO_USE
        if has_future_use and vreg in self.dirty:
            slot = self.slot_of.setdefault(vreg, len(self.slot_of))
            self.entries.append(Spill(slot, reg, at))
        # The caller immediately rebinds the register, so it must not be
        # recycled into the free list.
        self._free_reg(vreg, recycle=False)
        return reg

    def _acquire(self, at: int, protect: set[int]) -> int:
        if self.free:
            reg = self.free.pop()
        else:
            reg = self._evict(at, protect)
        return reg

    def _bind(self, vreg: int, reg: int, at: int) -> None:
        self.reg_of[vreg] = reg
        self.vreg_of[reg] = vreg
        self.regs_used = max(self.regs_used, len(self.reg_of))
        self._push_heap(vreg, self._next_use(vreg, at - 1))

    # -- main walk ------------------------------------------------------
    def run(self) -> SpillSchedule:
        for i, (_, dst, srcs) in enumerate(self.shape):
            needed = list(dict.fromkeys(srcs))
            if len(needed) + (1 if dst is not None and dst not in needed else 0) > self.num_regs:
                raise ValueError(
                    f"op {i} needs {len(needed)} sources plus a destination but "
                    f"only {self.num_regs} registers are available"
                )
            protect = set(needed)
            # 1. Reload spilled sources.
            for s in needed:
                if s not in self.reg_of:
                    if s not in self.slot_of:
                        raise ValueError(f"op {i} reads vreg {s} which was never defined")
                    reg = self._acquire(i, protect)
                    self.entries.append(Fill(self.slot_of[s], reg, i))
                    self._bind(s, reg, i)
                    self.dirty.discard(s)
            arch_srcs = tuple(self.reg_of[s] for s in needed)
            # 2. Consume this use; drop dead sources.
            for s in needed:
                nxt = self._next_use(s, i)
                if nxt == _NO_USE and s != dst:
                    self._free_reg(s)
                else:
                    self._push_heap(s, nxt)
            # 3. Destination.
            arch_dst = None
            if dst is not None:
                if dst in self.reg_of:  # accumulate-in-place (alu_into)
                    arch_dst = self.reg_of[dst]
                    self._push_heap(dst, self._next_use(dst, i))
                else:
                    protect = {s for s in needed if s in self.reg_of}
                    reg = self._acquire(i, protect)
                    arch_dst = reg
                    self._bind(dst, reg, i)
                self.dirty.add(dst)
            self.entries.append(Rewrite(i, arch_dst, arch_srcs))
            # 4. Dead destination: release immediately.
            if dst is not None and self._next_use(dst, i) == _NO_USE:
                self._free_reg(dst)
        return SpillSchedule(
            entries=self.entries,
            num_regs=self.num_regs,
            regs_used=self.regs_used,
            num_slots=len(self.slot_of),
        )


def schedule_registers(shape: list[ShapeOp], num_regs: int) -> SpillSchedule:
    """Allocate a warp stream onto ``num_regs`` architectural registers.

    Args:
        shape: Register shape of the stream (``(opclass, dst, srcs)``).
        num_regs: Architectural register budget per thread.

    Returns:
        The spill schedule.  With ``num_regs >= max_live_registers`` of
        the stream, the schedule contains no fills or spills.
    """
    if num_regs <= 0:
        raise ValueError("num_regs must be positive")
    return _Allocator(shape, num_regs).run()
