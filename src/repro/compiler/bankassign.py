"""Bank-aware architectural register assignment.

The paper notes that register bank conflicts "are rare and can be
minimized with compiler techniques [27]" (Zhuang & Pande).  This pass
implements that technique: after allocation and hierarchy tagging, the
architectural registers that are read from MRF banks are re-labelled so
that registers frequently read *together* land in different banks
(``id % 4`` selects the bank, as in the hardware mapping).

Greedy weighted assignment: build a co-occurrence weight between every
pair of registers that appear in one instruction's MRF reads, then
assign registers in decreasing total-weight order to the bank that
minimises conflict weight with already-placed registers, subject to the
per-bank capacity of a physical register file with ``ceil(R / 4)``
entries per bank.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.partition import BANKS_PER_CLUSTER
from repro.compiler.regalloc import ShapeOp
from repro.compiler.rfhierarchy import OperandTags


def bank_conflict_weight(groups: list[tuple[int, ...]], bank_of: dict[int, int]) -> int:
    """Total conflict cycles of a bank assignment (for tests/diagnostics)."""
    total = 0
    for group in groups:
        counts: dict[int, int] = {}
        for r in group:
            b = bank_of[r]
            counts[b] = counts.get(b, 0) + 1
        if counts:
            total += max(counts.values()) - 1
    return total


def assign_banks(
    shape: list[ShapeOp],
    tags: list[OperandTags],
    num_regs: int,
    num_banks: int = BANKS_PER_CLUSTER,
) -> dict[int, int]:
    """Relabel architectural registers to minimise MRF bank conflicts.

    Args:
        shape: Architectural-register stream (after spill insertion).
        tags: Hierarchy tags aligned with ``shape`` (MRF reads per op).
        num_regs: Register budget (fixes per-bank capacity).
        num_banks: Banks per cluster (4 in the paper's SM).

    Returns:
        Mapping from old register id to new register id, a bijection on
        the used registers, such that ``new_id % num_banks`` is the
        chosen bank.
    """
    groups = [t.mrf_reads for t in tags if len(t.mrf_reads) > 1]
    used: set[int] = set()
    for op, dst, srcs in shape:
        used.update(srcs)
        if dst is not None:
            used.add(dst)
    for t in tags:
        used.update(t.mrf_reads)

    weight: dict[tuple[int, int], int] = defaultdict(int)
    total_weight: dict[int, int] = defaultdict(int)
    for group in groups:
        distinct = list(dict.fromkeys(group))
        for i, a in enumerate(distinct):
            for b in distinct[i + 1 :]:
                key = (a, b) if a < b else (b, a)
                weight[key] += 1
                total_weight[a] += 1
                total_weight[b] += 1

    capacity = max(1, -(-num_regs // num_banks))
    bank_load = [0] * num_banks
    bank_of: dict[int, int] = {}
    # Place conflict-prone registers first, then the rest.
    order = sorted(used, key=lambda r: (-total_weight.get(r, 0), r))
    neighbours: dict[int, list[int]] = defaultdict(list)
    for (a, b), w in weight.items():
        neighbours[a].append(b)
        neighbours[b].append(a)
    for r in order:
        costs = [0.0] * num_banks
        for other in neighbours.get(r, ()):  # weighted by co-occurrence
            ob = bank_of.get(other)
            if ob is not None:
                key = (r, other) if r < other else (other, r)
                costs[ob] += weight[key]
        best = min(
            range(num_banks),
            key=lambda b: (
                bank_load[b] >= capacity,  # full banks only as a last resort
                costs[b],
                bank_load[b],
            ),
        )
        bank_of[r] = best
        bank_load[best] += 1

    # Turn bank choices into fresh register ids: id % num_banks == bank.
    next_slot = [0] * num_banks
    mapping: dict[int, int] = {}
    for r in sorted(used):
        b = bank_of[r]
        mapping[r] = b + num_banks * next_slot[b]
        next_slot[b] += 1
    return mapping


def remap_shape(
    shape: list[ShapeOp], tags: list[OperandTags], mapping: dict[int, int]
) -> tuple[list[ShapeOp], list[OperandTags]]:
    """Apply a register relabelling to a stream and its tags."""
    new_shape: list[ShapeOp] = []
    for op, dst, srcs in shape:
        new_shape.append(
            (
                op,
                mapping[dst] if dst is not None else None,
                tuple(mapping[s] for s in srcs),
            )
        )
    new_tags = []
    for t in tags:
        new_tags.append(
            OperandTags(
                mrf_reads=tuple(mapping[r] for r in t.mrf_reads),
                lrf_reads=t.lrf_reads,
                orf_reads=t.orf_reads,
                mrf_write=t.mrf_write,
                lrf_write=t.lrf_write,
                orf_write=t.orf_write,
            )
        )
    return new_shape, new_tags
