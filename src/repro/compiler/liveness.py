"""Liveness analysis over warp instruction streams.

Kernels emit dynamic straight-line streams (control flow is already
resolved in the trace), so liveness is exact: the live interval of a
virtual register spans from its first definition to its last appearance
(read or write).  The peak number of overlapping intervals is the
registers-per-thread requirement to avoid spills -- Table 1, column 2 of
the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.isa.trace import WarpOp


def live_intervals(ops: Sequence[WarpOp]) -> dict[int, tuple[int, int]]:
    """Map each virtual register to its ``(first, last)`` position.

    Positions index into ``ops``.  Registers that are read before any
    write (undefined reads) are rejected -- kernels must produce every
    value they consume.
    """
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for i, op in enumerate(ops):
        for r in op.srcs:
            if r not in first:
                raise ValueError(f"op {i} reads virtual register {r} before definition")
            last[r] = i
        if op.dst is not None:
            first.setdefault(op.dst, i)
            last[op.dst] = i
    return {r: (first[r], last[r]) for r in first}


def max_live_registers(ops: Sequence[WarpOp]) -> int:
    """Peak simultaneous live values -- the no-spill register requirement.

    An instruction's sources and destination are live simultaneously
    (the destination is written while sources are still being read), so
    the peak is measured *at* each instruction, counting intervals that
    cover it.
    """
    intervals = live_intervals(ops)
    if not intervals:
        return 0
    events: list[tuple[int, int]] = []
    for start, end in intervals.values():
        events.append((start, 1))
        events.append((end + 1, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def next_use_table(shape: Sequence[tuple]) -> dict[int, list[int]]:
    """Positions at which each virtual register is *read*, in order.

    ``shape`` is the register shape of a stream: ``(opclass, dst, srcs)``
    tuples.  Used by the spill scheduler for Belady eviction.
    """
    uses: dict[int, list[int]] = {}
    for i, (_, _, srcs) in enumerate(shape):
        for r in srcs:
            uses.setdefault(r, []).append(i)
    return uses
