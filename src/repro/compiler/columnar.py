"""Columnar lowering of kernel plans for the replay engine.

The second compile phase behind :mod:`repro.compiler.precompute`: where
the planning pass turns each op into an interned :class:`OpPlan`, this
pass lowers each *warp* -- a sequence of (op, plan) pairs -- into
contiguous numpy columns the replay core (:mod:`repro.sm.replay`) steps
without touching Python object graphs:

* **Signatures** (:class:`WarpSig`) hold the partition-independent
  shape of a warp: the static last-writer RAW dependency graph (which
  replaces the event engine's per-warp ``pending`` dict) and the
  register-file traffic totals.  Warps with identical (plan, operand)
  streams share one signature; plans for global-memory ops embed
  per-CTA addresses, so address-touching warps rarely intern across
  CTAs and the constructor is kept allocation-lean.
* **Programs** (:class:`WarpProgram`) specialise a signature to a bank
  model, CTA shared-memory base, and latency config: per-op issue and
  completion increments, bank-conflict penalties, coalesced line
  segments and DRAM burst sizes as aligned columns, plus one tuple of
  *static totals* -- every additive counter of the event engine
  (instructions, conflict cycles, histogram buckets, arbitration
  conflicts, RF/row/tag energy events) summed over the warp at compile
  time and added once at CTA spawn instead of once per op.

Static totals are sound because each of those counters is
order-independent and a pure function of the warp's plans plus the
bank-model memo key (the same argument that makes the ``planned_*``
memos exact, see :mod:`repro.memory.banks`); the dependency graph is
sound because the event engine's ``pending`` dict maps each register to
its *last* writer's completion, which is exactly the static last-writer
analysis here (writes drain in program order, so WAW is safe to
collapse).  Barrier ops contribute to the instruction count but to no
other counter -- the event loop ``continue``s past the accounting lines
for them -- and their source registers still take dependency edges
(the event path reads ``pending`` when re-keying a released warp).

Cycle identity of everything built here is pinned end to end by the
golden fixtures and ``tests/sm/test_engine_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.compiled import CompiledKernel
from repro.compiler.precompute import (
    K_BARRIER,
    K_GLOBAL_LOAD,
    K_SHARED_LOAD,
    K_SHARED_STORE,
    K_TEX,
    plan_kernel,
)
from repro.obs.collector import CAUSE_MEMORY, CAUSE_RAW, STALL_CAUSES

# Integer cause indices into STALL_CAUSES: the instrumented replay loops
# accumulate stalls into per-warp lists indexed by these and only convert
# back to the canonical cause strings when folding into the collector.
CI_RAW = STALL_CAUSES.index(CAUSE_RAW)
CI_MEMORY = STALL_CAUSES.index(CAUSE_MEMORY)

#: Replay row kinds: the runner dispatches on these, not the ``K_*``
#: plan kinds -- ALU/SFU/TEX collapse into one row (their latency is
#: folded into the completion column), shared load/store collapse into
#: one (their row-count difference is a static total), and global ops
#: split by whether a data cache fronts them (decided at lowering time,
#: so the hot loop never re-tests ``cache.enabled``).
R_ALU = 0
R_SHARED = 1
R_GLOBAL_LOAD = 2  # through the cache
R_GLOBAL_LOAD_NOCACHE = 3
R_GLOBAL_STORE = 4  # through the cache (write-through bursts)
R_GLOBAL_STORE_NOCACHE = 5
R_BARRIER = 6
#: Sentinel row appended after the last op: the replay loop advances
#: into it instead of bounds-checking ``pc`` every instruction.
R_END = 7

#: Index layout of :attr:`WarpProgram.totals` (see ``_TOTAL_FIELDS``).
_TOTAL_FIELDS = (
    "instructions",
    "conflict_cycles",
    "arbitration",
    "hist0", "hist1", "hist2", "hist3", "hist4",
    "mrf_reads", "mrf_writes",
    "orf_reads", "orf_writes",
    "lrf_reads", "lrf_writes",
    "shared_row_reads", "shared_row_writes",
    "cache_row_reads", "cache_row_writes",
    "tag_lookups",
)
N_TOTALS = len(_TOTAL_FIELDS)


class WarpSig:
    """Partition-independent columnar signature of one compiled warp.

    Attributes:
        ops: Representative :class:`CompiledOp` list (first warp that
            interned to this signature; equal-keyed warps are
            timing-identical by construction).
        plans: Aligned :class:`OpPlan` list.
        n_ops: Instruction count.
        deps: RAW dependency graph as a tuple of per-op producer
            tuples -- ``deps[pc]`` are the pcs whose completion gates
            issue of ``pc`` (the last writer of each source register).
        live: Whether each op's completion time is ever read by a
            consumer (dead completions need no bookkeeping).
        rf_totals: ``(mrf_r, mrf_w, orf_r, orf_w, lrf_r, lrf_w)``
            summed over non-barrier ops.
        obs: Lazily built observability columns (see
            :func:`sig_obs_rows`); ``None`` until an instrumented
            replay first touches the signature, so uninstrumented
            compiles pay one slot assignment.

    The constructor is a cold-start hot spot: signatures rarely intern
    across CTAs (global-address plans embed per-CTA addresses), so a
    grid of W warps builds ~W of these.  Everything is derived in one
    plain-Python pass -- per-warp numpy arrays at these lengths (tens
    of ops) cost more to construct than they save, so the numpy column
    set lives on :class:`WarpProgram` only.
    """

    __slots__ = ("ops", "plans", "n_ops", "deps", "live", "rf_totals", "obs")

    def __init__(self, ops, plans) -> None:
        self.ops = ops
        self.plans = plans
        n = len(ops)
        self.n_ops = n
        # Last-writer RAW analysis: the event engine's pending dict
        # resolves each source register to the completion of its most
        # recent producer; writes retire in program order, so the
        # static last-writer map is exact.  RF traffic is accumulated
        # per op by the event engine but never consumed mid-run, so the
        # warp-total is added at spawn instead; barriers are skipped
        # because the event loop continues before the accounting lines.
        last_writer: dict[int, int] = {}
        deps: list[tuple[int, ...]] = []
        live = [False] * n
        mrf_r = mrf_w = orf_r = orf_w = lrf_r = lrf_w = 0
        for pc, (op, pl) in enumerate(zip(ops, plans)):
            d: dict[int, None] = {}
            for r in op.srcs:
                p = last_writer.get(r)
                if p is not None:
                    d[p] = None
            dep = tuple(d)
            deps.append(dep)
            for p in dep:
                live[p] = True
            if op.dst is not None:
                last_writer[op.dst] = pc
            if pl.kind != K_BARRIER:
                mrf_r += pl.n_mrf_reads
                mrf_w += pl.n_mrf_writes
                orf_r += op.orf_reads
                orf_w += op.orf_writes
                lrf_r += op.lrf_reads
                lrf_w += op.lrf_writes
        self.deps = tuple(deps)
        self.live = live
        self.rf_totals = (mrf_r, mrf_w, orf_r, orf_w, lrf_r, lrf_w)
        self.obs = None


def sig_obs_rows(sig: WarpSig) -> tuple:
    """Per-op observability columns for the instrumented replay loops.

    Returns ``(rows, causes, dsts)``, all aligned with
    :attr:`WarpProgram.rows` (plus a sentinel under the ``R_END`` row so
    all share a pc).  Each row is ``(name, prods, dst)``: the
    instruction name for trace slices, the *producer pcs* of the op's
    source registers, and the destination register.  ``prods`` is the
    static last-writer relation evaluated in source-operand order --
    exactly the registers the collector's ``issue`` hook would find in
    its pending dict, resolved at compile time so the replay runner can
    attribute a dependency wait with list lookups into the per-warp
    completion column instead of per-op dict traffic.  Scan equivalence
    with ``Collector.issue`` holds because warps replay in program
    order (every producer pc has executed by the time a consumer reads
    it) and ties keep the first maximum in operand order in both forms.

    ``causes`` is the static writeback cause per op as an *index into*
    ``STALL_CAUSES``: texture fetches always resolve in DRAM
    (``CAUSE_MEMORY``), every other statically-known producer is
    core-local (``CAUSE_RAW``).  Dynamic causes stay with the replay
    runner: cached global loads escalate to ``CAUSE_MEMORY`` on a miss
    or MSHR merge, uncached loads unconditionally, exactly as the event
    engine decides them.  Barriers take the literal name the event
    engine reports.

    ``dsts`` is the destination column alone -- the single-SM
    instrumented loop reads nothing else per memory op, so it indexes
    the flat list instead of unpacking a row.  All three sequences are
    static and shared across every warp of the signature.

    Built lazily and cached on the signature: only instrumented replays
    pay for it, and partition sweeps over one kernel reuse the rows
    (names, operands, and causes are partition-independent).
    """
    cached = sig.obs
    if cached is None:
        rows = []
        causes = []
        last_writer: dict = {}
        for pc, (op, pl) in enumerate(zip(sig.ops, sig.plans)):
            barrier = pl.kind == K_BARRIER
            # Producers are looked up before this op's own write lands,
            # mirroring the event order (issue reads pending, then
            # writeback overwrites it); duplicate sources keep their
            # duplicate producer entries -- a strict-maximum scan makes
            # the repeat a no-op, as it is in the dict form.
            prods = tuple(
                last_writer[r] for r in op.srcs if r in last_writer
            )
            # Barrier rows drop the dst: the event loop continues past
            # its writeback lines, so a barrier never registers a
            # pending write whatever the op object carries.
            dst = None if barrier else op.dst
            rows.append(("BARRIER" if barrier else op.op.name, prods, dst))
            causes.append(CI_MEMORY if pl.kind == K_TEX else CI_RAW)
            if dst is not None:
                last_writer[dst] = pc
        rows.append((None, (), None))
        causes.append(CI_RAW)
        cached = (rows, causes, [r[2] for r in rows])
        sig.obs = cached
    return cached


class WarpProgram:
    """A :class:`WarpSig` specialised to one bank model and config.

    The canonical compile product is the numpy column set
    (``kind_np`` / ``a_np`` / ``b_np``, one array per column per
    program); ``rows`` fuses the same data with the signature's dep
    tuples into the plain-sequence form the replay interpreter indexes
    (CPython indexes lists/tuples faster than 0-d numpy scalars).

    Column meaning by replay kind.  Constant adds the event loop does
    per op (latency, the one-cycle memory-pipeline hold) are folded in
    at compile time, so the interpreter performs one addition per
    derived quantity.  ALU columns are offsets from issue time ``t``;
    memory columns are offsets from the op's memory-port grant
    ``port_start``:

    ======================== ========================= =====================
    kind                     ``a``                     ``b``
    ======================== ========================= =====================
    R_ALU                    1 + register penalty      ``a`` + latency
    R_SHARED                 penalty + 1 (port hold)   penalty + shared lat
    R_GLOBAL_LOAD*           penalty (data ready)      penalty + 1 (hold)
    R_GLOBAL_STORE*          penalty (data ready)      penalty + 1 (hold)
    R_BARRIER                0                         0
    ======================== ========================= =====================

    Folding is exact: penalties and latencies are integers, and adding
    an integer to any timestamp the simulation can produce is an exact
    float operation, so ``port_start + (penalty + lat)`` is bit-equal
    to the event engine's ``(port_start + penalty) + lat``.

    ``aux`` rows: cached loads carry ``(segments, line_indices)`` -- the
    coalesced line-segment tuple plus each segment's precomputed cache
    line index (``segment // line_bytes``, hoisted out of the replay
    probe loop); uncached loads/stores the DRAM sector count; cached
    stores ``(segments, line_indices, burst_bytes)`` with per-line
    write-through burst sizes.

    ``rows`` fuses the columns into one ``(kind, a, b, aux, deps)``
    record per op, terminated by an :data:`R_END` sentinel -- the
    interpreter's view (one index + unpack per op instead of five
    column indexes and a bounds check).  ``deps`` on row ``i`` are op
    ``i``'s own RAW producers, consumed when *scheduling* the op.
    """

    __slots__ = (
        "sig", "n_ops", "kind_np", "a_np", "b_np",
        "rows", "totals",
    )

    def __init__(self, sig: WarpSig, kind, a, b, aux, totals) -> None:
        self.sig = sig
        self.n_ops = sig.n_ops
        self.kind_np = np.asarray(kind, dtype=np.int8)
        self.a_np = np.asarray(a, dtype=np.int64)
        self.b_np = np.asarray(b, dtype=np.int64)
        # Rows carry a/b as floats: CPython's specialised float+float
        # add is ~2x the generic float+int path, and every hot-loop use
        # adds them to a float timestamp.  Conversion of an integer is
        # exact, so timing is unchanged bit for bit.
        # The end row's deps slot is None (every real op carries a
        # tuple): the replay loops detect retirement on the deps field
        # they already loaded instead of re-testing the kind.
        self.rows = [
            *zip(kind, map(float, a), map(float, b), aux, sig.deps),
            (R_END, 0.0, 0.0, None, None),
        ]
        self.totals = totals


def _sig_table(kernel: CompiledKernel, line_bytes: int) -> list[tuple[WarpSig, ...]]:
    """Signatures for every warp, interned and cached on the kernel.

    Both levels intern: warps with equal timing keys share one
    :class:`WarpSig`, and CTAs with equal signature rows share one
    tuple object -- :func:`cta_plan` keys whole-CTA program lookups on
    that row identity, so a grid of identical CTAs resolves every
    spawn through a single cache entry.
    """
    cache = kernel._plan_cache
    key = ("colsig", line_bytes)
    table = cache.get(key)
    if table is not None:
        return table
    plans_k = plan_kernel(kernel, line_bytes)
    interned: dict[tuple, WarpSig] = {}
    rows_interned: dict[tuple, tuple] = {}
    table = []
    for ci, cta in enumerate(kernel.ctas):
        row = []
        for wi, warp in enumerate(cta.warps):
            plans = plans_k[ci][wi]
            ops = warp.ops
            # Plans intern on (kind, mrf_reads, mrf_write count, addrs);
            # everything else a signature depends on is keyed here.
            sig_key = tuple(
                (id(pl), op.dst, op.srcs,
                 op.lrf_reads, op.orf_reads, op.lrf_writes, op.orf_writes)
                for pl, op in zip(plans, ops)
            )
            sig = interned.get(sig_key)
            if sig is None:
                sig = interned[sig_key] = WarpSig(ops, plans)
            row.append(sig)
        row = tuple(row)
        table.append(rows_interned.setdefault(row, row))
    cache[key] = table
    return table


def _skeleton(sig, cfg, cache_enabled):
    """Bank-independent part of a program, built once per (sig, cfg).

    Capacity sweeps re-lower every signature per partition, but only
    memory ops depend on the bank model: ALU rows (kind, issue and
    completion offsets, conflict contribution) and every ``aux`` payload
    (line segments, cache line indices, sector counts, burst sizes) are
    pure functions of the plans and the latency config.  The skeleton
    precomputes all of that plus the ALU-only totals, so the per-bank
    :func:`_build_program` pass touches memory ops alone.

    Returns ``(kind, a, b, aux, mem, conflict, hist, tags)`` where
    ``mem`` is the ``(pc, op, plan, plan_kind)`` list of memory ops
    whose ``a``/``b`` slots are left 0 for the patch pass, ``conflict``
    and ``hist`` carry the ALU contributions, and ``tags`` the (static)
    tag-port lookup count.
    """
    line_bytes = cfg.cache_line_bytes
    txn_bytes = cfg.dram_transaction_bytes
    lat_by_kind = (cfg.alu_latency, cfg.sfu_latency, cfg.tex_latency)
    n = sig.n_ops
    kind = [0] * n
    a = [0] * n
    b = [0] * n
    aux: list = [None] * n
    mem = []
    # Scalar accumulators, not per-op columns: the totals tuple only
    # needs the sums, and n is tens of ops -- small-array numpy round
    # trips (zeros / bincount / masked sum) dominate at that size.
    conflict = 0
    hist = [0, 0, 0, 0, 0]
    tags = 0
    for pc, (op, pl) in enumerate(zip(sig.ops, sig.plans)):
        k = pl.kind
        if k <= 2:  # ALU / SFU / TEX
            kind[pc] = R_ALU
            a[pc] = 1 + pl.reg_penalty
            b[pc] = a[pc] + lat_by_kind[k]
            conflict += pl.reg_penalty
            hist[pl.reg_bucket] += 1
        elif k == K_BARRIER:
            kind[pc] = R_BARRIER
        elif k <= K_SHARED_STORE:
            kind[pc] = R_SHARED
            mem.append((pc, op, pl, k))
        else:  # global / local
            mem.append((pc, op, pl, k))
            if cache_enabled:
                tags += pl.n_segments
            if k == K_GLOBAL_LOAD:
                if cache_enabled:
                    kind[pc] = R_GLOBAL_LOAD
                    aux[pc] = (
                        pl.segments,
                        tuple(s // line_bytes for s in pl.segments),
                    )
                else:
                    kind[pc] = R_GLOBAL_LOAD_NOCACHE
                    ns = pl.n_sectors
                    if ns < 0:
                        ns = pl.sector_info(op.addrs, line_bytes)[0]
                    aux[pc] = ns
            else:  # K_GLOBAL_STORE
                if cache_enabled:
                    kind[pc] = R_GLOBAL_STORE
                    pls = pl.per_line_sectors
                    if pls is None:
                        pls = pl.sector_info(op.addrs, line_bytes)[1]
                    aux[pc] = (
                        pl.segments,
                        tuple(s // line_bytes for s in pl.segments),
                        tuple(ns * txn_bytes for ns in pls),
                    )
                else:
                    kind[pc] = R_GLOBAL_STORE_NOCACHE
                    ns = pl.n_sectors
                    if ns < 0:
                        ns = pl.sector_info(op.addrs, line_bytes)[0]
                    aux[pc] = ns
    return kind, a, b, aux, tuple(mem), conflict, tuple(hist), tags


def _build_program(sig, banks, shared_base, cfg, cache_enabled, skel):
    """Lower one signature against a bank model and CTA base offset.

    The bank-independent columns come precomputed in ``skel``
    (:func:`_skeleton`); this pass resolves only the memory ops'
    penalties and row counts against the concrete bank model, so a
    partition sweep pays per-memory-op rather than per-op work.
    """
    shared_latency = cfg.shared_latency
    planned_shared = banks.planned_shared
    planned_global = banks.planned_global
    kind, a, b, aux, mem, conflict, hist_t, tags = skel
    a = a.copy()
    b = b.copy()
    hist = list(hist_t)
    arb = 0
    sh_rr = sh_rw = c_rr = c_rw = 0
    for pc, op, pl, k in mem:
        if k <= K_SHARED_STORE:
            penalty, bucket, rows, arb_i = planned_shared(
                pl, op.addrs, shared_base
            )
            a[pc] = penalty + 1
            b[pc] = penalty + shared_latency
            if k == K_SHARED_LOAD:
                sh_rr += rows
            else:
                sh_rw += rows
        else:  # global / local
            penalty, bucket, rows, arb_i = planned_global(pl)
            a[pc] = penalty
            b[pc] = penalty + 1
            if cache_enabled:
                if k == K_GLOBAL_LOAD:
                    c_rr += rows
                else:
                    c_rw += rows
        conflict += penalty
        hist[bucket] += 1
        arb += arb_i
    totals = (
        sig.n_ops,
        conflict,
        arb,
        *hist,
        *sig.rf_totals,
        sh_rr, sh_rw, c_rr, c_rw, tags,
    )
    return WarpProgram(sig, kind, a, b, aux, totals)


def cta_plan(
    kernel: CompiledKernel,
    banks,
    shared_base: int,
    cfg,
    cache_enabled: bool,
    cta_index: int,
) -> tuple[tuple[WarpProgram, ...], tuple]:
    """Replay programs + summed totals for one resident CTA's warps.

    Returns ``(programs, cta_totals)`` where ``cta_totals`` is the
    elementwise sum of the per-warp static totals -- one add per CTA
    spawn instead of one per warp.  Cached per kernel on exactly what a
    CTA's programs depend on: the interned signature row, the bank
    model's memo key for the CTA base offset
    (:meth:`~repro.memory.banks.PartitionedBanks.plan_key`), the
    latency table, the DRAM transaction size, and whether a cache
    fronts global memory.  Shared-memory bases recycle as CTAs retire
    and launch and grids repeat one CTA shape, so steady-state
    simulation resolves every spawn with a single dict hit.
    """
    cache = kernel._plan_cache
    line_bytes = cfg.cache_line_bytes
    cta_key = ("colcta", line_bytes)
    ctas = cache.get(cta_key)
    if ctas is None:
        ctas = cache[cta_key] = {}
    row = _sig_table(kernel, line_bytes)[cta_index]
    base_key = banks.plan_key(shared_base)
    cfg_key = (
        cfg.alu_latency, cfg.sfu_latency, cfg.tex_latency,
        cfg.shared_latency, cfg.dram_transaction_bytes, cache_enabled,
    )
    key = (id(row), base_key, cfg_key)
    plan = ctas.get(key)
    if plan is None:
        progs_key = ("colprog", line_bytes)
        progs = cache.get(progs_key)
        if progs is None:
            progs = cache[progs_key] = {}
        skels_key = ("colskel", line_bytes)
        skels = cache.get(skels_key)
        if skels is None:
            skels = cache[skels_key] = {}
        out = []
        for sig in row:
            pkey = (id(sig), base_key, cfg_key)
            prog = progs.get(pkey)
            if prog is None:
                skey = (id(sig), cfg_key)
                skel = skels.get(skey)
                if skel is None:
                    skel = skels[skey] = _skeleton(sig, cfg, cache_enabled)
                prog = progs[pkey] = _build_program(
                    sig, banks, shared_base, cfg, cache_enabled, skel
                )
            out.append(prog)
        cta_totals = tuple(
            sum(p.totals[i] for p in out) for i in range(N_TOTALS)
        )
        plan = ctas[key] = (tuple(out), cta_totals)
    return plan
