"""Parallel experiment executor over a process pool.

The paper's evaluation is a large grid of *independent* simulations:
(benchmark, partition, register budget, thread target) points that
share traces and compiled kernels but nothing else.  This module fans
that grid over a ``multiprocessing`` pool:

1. A driver enumerates its sweep as a list of :class:`Job` specs
   (``jobs()`` in each ``figure*``/``table*``/``ablations`` module).
2. :meth:`Executor.prime` runs the jobs.  With ``jobs > 1`` the pool is
   forked from the parent, so workers inherit every trace and compiled
   kernel the parent has already memoised for free; each worker runs
   jobs through its (copy-on-write) :class:`Runner` and ships back the
   **journal** -- the small, picklable artefacts the job produced
   (simulation results, allocations, compile summaries, expected
   failures).  Traces and compiled kernels are never pickled; the
   shared :class:`~repro.experiments.artifacts.DiskCache` carries those
   across processes instead.
3. The parent :meth:`Runner.adopt`\\ s the journals, then the driver's
   unchanged serial assembly code replays against warm memos -- which is
   why ``--jobs 4`` output is byte-identical to ``--jobs 1``.

Failures a sweep *expects* (a configuration that cannot launch, an
allocation that does not fit) are journaled and replayed exactly like
results; anything else propagates out of :meth:`Executor.prime`.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, field, fields
from typing import Callable

from repro.core.partition import MemoryPartition
from repro.experiments.runner import EXPECTED_ERRORS, Runner
from repro.obs.manifest import sm_config_digest
from repro.obs.spans import SpanRecorder
from repro.sm import SMConfig

log = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class Job:
    """One unit of independent work for the pool.

    ``kind`` selects a handler from :data:`JOB_HANDLERS`; the built-in
    kinds mirror the Runner's vocabulary (``partition``, ``baseline``,
    ``unified``, ``fermi``, ``compile``) and drivers with composite
    steps register their own (e.g. Table 6's capacity points).
    ``config`` runs the job under an SMConfig other than the executor
    runner's (ablation sweeps); ``params`` are extra build/compile
    parameters as a sorted tuple of pairs.
    """

    kind: str
    benchmark: str
    partition: MemoryPartition | None = None
    regs: int | None = None
    thread_target: int | None = None
    total_kb: int | None = None
    params: tuple = ()
    config: SMConfig | None = None

    def describe(self) -> str:
        bits = [self.kind, self.benchmark]
        if self.partition is not None:
            bits.append(self.partition.describe())
        if self.total_kb is not None:
            bits.append(f"{self.total_kb}KB")
        if self.regs is not None:
            bits.append(f"regs={self.regs}")
        if self.thread_target is not None:
            bits.append(f"threads={self.thread_target}")
        bits.extend(f"{k}={v}" for k, v in self.params)
        if self.config is not None:
            bits.append("variant-config")
        return " ".join(bits)


#: kind -> handler(runner, job).  Handlers run inside workers (and in
#: the parent on the serial path); they must do all their work through
#: Runner methods so the journal captures every artefact.
JOB_HANDLERS: dict[str, Callable[[Runner, Job], object]] = {}


def register_job_kind(kind: str):
    """Register a handler for a custom job kind (importable by workers)."""

    def deco(fn):
        JOB_HANDLERS[kind] = fn
        return fn

    return deco


@register_job_kind("partition")
def _run_partition(rn: Runner, job: Job) -> None:
    rn.simulate(
        job.benchmark,
        job.partition,
        regs=job.regs,
        thread_target=job.thread_target,
        **dict(job.params),
    )


@register_job_kind("baseline")
def _run_baseline(rn: Runner, job: Job) -> None:
    rn.baseline(
        job.benchmark,
        regs=job.regs,
        thread_target=job.thread_target,
        **dict(job.params),
    )


@register_job_kind("unified")
def _run_unified(rn: Runner, job: Job) -> None:
    rn.unified(
        job.benchmark,
        total_kb=job.total_kb if job.total_kb is not None else 384,
        thread_target=job.thread_target,
        **dict(job.params),
    )


@register_job_kind("fermi")
def _run_fermi(rn: Runner, job: Job) -> None:
    rn.fermi_best(job.benchmark, **dict(job.params))


@register_job_kind("compile")
def _run_compile(rn: Runner, job: Job) -> None:
    rn.summary(job.benchmark, regs=job.regs, **dict(job.params))


@dataclass(frozen=True, slots=True)
class JobOutcome:
    """What happened to one job: wall-clock seconds and expected error."""

    job: Job
    seconds: float
    error: str | None = None


@dataclass
class ExecutionReport:
    """Timing and outcome summary of one :meth:`Executor.prime` call."""

    label: str
    workers: int
    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def job_seconds(self) -> float:
        """Summed per-job time: the serial cost of the same work."""
        return sum(o.seconds for o in self.outcomes)

    @property
    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    def format(self) -> str:
        n = len(self.outcomes)
        lines = [
            f"[{self.label}] {n} jobs on {self.workers} worker(s): "
            f"{self.wall_seconds:.2f}s wall, {self.job_seconds:.2f}s of work"
        ]
        slowest = sorted(self.outcomes, key=lambda o: -o.seconds)[:3]
        for o in slowest:
            lines.append(f"  {o.seconds:7.2f}s  {o.job.describe()}")
        if self.errors:
            lines.append(f"  {len(self.errors)} job(s) raised expected errors:")
            for o in self.errors[:5]:
                lines.append(f"    {o.job.describe()}: {o.error}")
        return "\n".join(lines)


def _execute(rn: Runner, job: Job) -> None:
    runner = rn if job.config is None else rn.variant(job.config)
    JOB_HANDLERS[job.kind](runner, job)


# Fork-shared slot: set in the parent just before the pool forks, read
# by workers.  Holds the parent Runner so workers inherit its memoised
# traces and compiled kernels via copy-on-write.
_FORK_RUNNER: Runner | None = None

_EXPECTED = tuple(EXPECTED_ERRORS.values())


def _stats_snapshot(cache) -> dict[str, int]:
    return {f.name: getattr(cache.stats, f.name) for f in fields(cache.stats)}


def _run_job(
    indexed: tuple[int, Job],
) -> tuple[int, float, float, str | None, list, dict[str, int] | None, int]:
    idx, job = indexed
    rn = _FORK_RUNNER
    rn.journal_reset()
    before = _stats_snapshot(rn.cache) if rn.cache is not None else None
    start = time.perf_counter()
    error = None
    try:
        _execute(rn, job)
    except _EXPECTED as e:
        error = f"{type(e).__name__}: {e}"
    end = time.perf_counter()
    # Disk-cache hits land in the worker; ship the per-job delta so the
    # parent's summary still reports them.
    stats = None
    if rn.cache is not None:
        after = _stats_snapshot(rn.cache)
        stats = {k: after[k] - before[k] for k in after}
    # Workers are forked, so these perf_counter stamps share the
    # parent's CLOCK_MONOTONIC base and line up on one span timeline.
    return idx, start, end, error, rn.journal_reset(), stats, os.getpid()


class Executor:
    """Runs job lists for the experiment drivers, serially or forked.

    Args:
        runner: The parent Runner whose memo the executor warms.
        jobs: Worker process count; 1 (the default) runs in-process.
        progress: Write one line per completed job to ``stderr``.
        spans: Optional :class:`~repro.obs.spans.SpanRecorder`; when
            armed, every job emits a fleet-scope span (submit ->
            running -> done/cache-hit with worker id, config digest,
            cache disposition, journal adoption).  Recording observes
            wall-clock and cache counters only -- never simulation
            state -- so it cannot change a simulated cycle.
    """

    def __init__(
        self,
        runner: Runner,
        jobs: int = 1,
        progress: bool = False,
        spans: SpanRecorder | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.runner = runner
        self.jobs = jobs
        self.progress = progress
        self.spans = spans
        self.reports: list[ExecutionReport] = []
        self._digests: dict[SMConfig, str] = {}

    def _config_digest(self, job: Job) -> str | None:
        """The span's sim fingerprint: SMConfig digest, memoised."""
        if self.spans is None:
            return None
        config = job.config if job.config is not None else self.runner.config
        digest = self._digests.get(config)
        if digest is None:
            digest = self._digests[config] = sm_config_digest(config)
        return digest

    def prime(self, jobs: list[Job], label: str = "jobs") -> ExecutionReport:
        """Execute ``jobs`` and warm the runner's memo with the results."""
        workers = max(1, min(self.jobs, len(jobs)))
        report = ExecutionReport(label=label, workers=workers)
        submit = (
            self.spans.phase_start(label, workers)
            if self.spans is not None
            else time.perf_counter()
        )
        start = time.perf_counter()
        if workers == 1:
            self._prime_serial(jobs, report, submit)
        else:
            self._prime_forked(jobs, workers, report, submit)
        report.wall_seconds = time.perf_counter() - start
        if self.spans is not None:
            self.spans.phase_end()
        self.reports.append(report)
        return report

    def _note(self, done: int, total: int, outcome: JobOutcome) -> None:
        if self.progress:
            suffix = f"  [{outcome.error}]" if outcome.error else ""
            log.info(
                "  [%d/%d] %s %.2fs%s",
                done,
                total,
                outcome.job.describe(),
                outcome.seconds,
                suffix,
            )

    def _prime_serial(
        self, jobs: list[Job], report: ExecutionReport, submit: float
    ) -> None:
        for i, job in enumerate(jobs):
            before = None
            if self.spans is not None and self.runner.cache is not None:
                before = _stats_snapshot(self.runner.cache)
            start = time.perf_counter()
            error = None
            try:
                _execute(self.runner, job)
            except _EXPECTED as e:
                error = f"{type(e).__name__}: {e}"
            end = time.perf_counter()
            outcome = JobOutcome(job, end - start, error)
            report.outcomes.append(outcome)
            self._note(i + 1, len(jobs), outcome)
            if self.spans is not None:
                delta = None
                if before is not None:
                    after = _stats_snapshot(self.runner.cache)
                    delta = {k: after[k] - before[k] for k in after}
                self.spans.record_job(
                    job=job,
                    index=i,
                    submit=submit,
                    start=start,
                    end=end,
                    worker=os.getpid(),
                    error=error,
                    cache=delta,
                    config_digest=self._config_digest(job),
                )

    def _prime_forked(
        self, jobs: list[Job], workers: int, report: ExecutionReport, submit: float
    ) -> None:
        global _FORK_RUNNER
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: stay correct, go serial
            self._prime_serial(jobs, report, submit)
            return
        outcomes: dict[int, JobOutcome] = {}
        _FORK_RUNNER = self.runner
        try:
            with ctx.Pool(processes=workers) as pool:
                results = pool.imap_unordered(_run_job, list(enumerate(jobs)))
                for idx, t_start, t_end, error, entries, stats, pid in results:
                    adopt_start = time.perf_counter()
                    self.runner.adopt(entries)
                    adopt_seconds = time.perf_counter() - adopt_start
                    if stats and self.runner.cache is not None:
                        for name, delta in stats.items():
                            setattr(
                                self.runner.cache.stats,
                                name,
                                getattr(self.runner.cache.stats, name) + delta,
                            )
                    outcomes[idx] = JobOutcome(jobs[idx], t_end - t_start, error)
                    self._note(len(outcomes), len(jobs), outcomes[idx])
                    if self.spans is not None:
                        self.spans.record_job(
                            job=jobs[idx],
                            index=idx,
                            submit=submit,
                            start=t_start,
                            end=t_end,
                            worker=pid,
                            error=error,
                            cache=stats,
                            adopted=len(entries),
                            adopt_seconds=adopt_seconds,
                            config_digest=self._config_digest(jobs[idx]),
                        )
        finally:
            _FORK_RUNNER = None
        report.outcomes.extend(outcomes[i] for i in sorted(outcomes))

    def summary(self) -> str:
        """All reports plus disk-cache statistics, for the end of a run."""
        lines = [r.format() for r in self.reports]
        total_wall = sum(r.wall_seconds for r in self.reports)
        total_work = sum(r.job_seconds for r in self.reports)
        n = sum(len(r.outcomes) for r in self.reports)
        lines.append(
            f"total: {n} jobs, {total_wall:.2f}s wall, {total_work:.2f}s of work"
        )
        totals = self.runner.sim_metrics()["totals"]
        if totals["simulations"]:
            lines.append(
                f"simulated: {totals['simulations']} runs, "
                f"cache hit rate {totals['cache_hit_rate']:.1%} "
                f"over {totals['cache_accesses']} accesses, "
                f"mean DRAM utilisation {totals['mean_dram_utilisation']:.1%}"
            )
        if self.runner.cache is not None:
            lines.append(self.runner.cache.stats.summary())
        return "\n".join(lines)
