"""Figure 8: how the 384 KB unified memory is partitioned per benchmark.

Runs the Section 4.5 allocation algorithm for the benefit set and
reports the resulting register file / shared memory / cache split and
the resident thread count.  Paper: RF ranges from 36 KB (bfs) to 228 KB
(dgemm); needle devotes 264 KB to shared memory; everything left over
becomes cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET

#: Paper Figure 8 register-file capacities (KB) where stated in the text.
PAPER_RF_KB = {"bfs": 36, "dgemm": 228}
#: Paper: needle's shared-memory share of the 384 KB pool.
PAPER_NEEDLE_SMEM_KB = 264


@dataclass(frozen=True)
class Figure8Row:
    name: str
    rf_kb: float
    smem_kb: float
    cache_kb: float
    threads: int


@dataclass
class Figure8Result:
    rows: list[Figure8Row]

    def row(self, name: str) -> Figure8Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def format(self) -> str:
        headers = ["benchmark", "RF KB", "shared KB", "cache KB", "threads"]
        rows = [[r.name, r.rf_kb, r.smem_kb, r.cache_kb, r.threads] for r in self.rows]
        return format_table(
            headers, rows, title="Figure 8: 384KB unified memory partitioning"
        )


def jobs(
    benchmarks: tuple[str, ...] = BENEFIT_SET, total_kb: int = 384
) -> list[Job]:
    """The sweep as independent executor jobs (one per benchmark)."""
    return [Job("unified", name, total_kb=total_kb) for name in benchmarks]


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    total_kb: int = 384,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure8Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks, total_kb), label="figure8")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        _, alloc = rn.unified(name, total_kb=total_kb)
        p = alloc.partition
        rows.append(
            Figure8Row(
                name=name,
                rf_kb=p.rf_kb,
                smem_kb=p.smem_kb,
                cache_kb=p.cache_kb,
                threads=alloc.resident_threads,
            )
        )
    return Figure8Result(rows)
