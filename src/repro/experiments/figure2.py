"""Figure 2: performance as a function of register file capacity.

Four benchmarks with distinct register behaviours (dgemm, pcr, needle,
bfs).  Each line fixes registers/thread (18/24/32/64); each point on a
line raises the resident thread count (256..1024).  The register file is
sized exactly to ``regs * 4 * threads`` bytes; the cache is 64 KB and
shared memory is unbounded, isolating register capacity (Section 3.3.1).
Performance is normalised to the (64 regs, 1024 threads) point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.sm.cta_scheduler import LaunchError

BENCHMARKS = ("dgemm", "pcr", "needle", "bfs")
REG_LINES = (18, 24, 32, 64)
THREAD_POINTS = (256, 512, 768, 1024)
UNBOUNDED_SMEM_KB = 512


@dataclass(frozen=True)
class Figure2Point:
    benchmark: str
    regs_per_thread: int
    threads: int
    rf_kb: float
    normalized_perf: float  # vs (64 regs, 1024 threads); nan if unrunnable


@dataclass
class Figure2Result:
    points: list[Figure2Point]

    def line(self, benchmark: str, regs: int) -> list[Figure2Point]:
        return [
            p
            for p in self.points
            if p.benchmark == benchmark and p.regs_per_thread == regs
        ]

    def point(self, benchmark: str, regs: int, threads: int) -> Figure2Point:
        for p in self.points:
            if (p.benchmark, p.regs_per_thread, p.threads) == (benchmark, regs, threads):
                return p
        raise KeyError((benchmark, regs, threads))

    def format(self) -> str:
        headers = ["benchmark", "regs", *(f"{t} thr" for t in THREAD_POINTS)]
        rows = []
        for b in BENCHMARKS:
            for regs in REG_LINES:
                line = self.line(b, regs)
                if not line:
                    continue
                rows.append([b, regs, *(p.normalized_perf for p in line)])
        return format_table(
            headers, rows, title="Figure 2: performance vs register file capacity"
        )


def jobs(benchmarks: tuple[str, ...] = BENCHMARKS) -> list[Job]:
    """The sweep as independent executor jobs (one per grid point)."""
    out = []
    for name in benchmarks:
        for regs in REG_LINES:
            for threads in THREAD_POINTS:
                rf_kb = regs * 4 * threads / 1024
                part = partitioned_design(rf_kb, UNBOUNDED_SMEM_KB, 64)
                out.append(
                    Job("partition", name, partition=part, regs=regs,
                        thread_target=threads)
                )
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENCHMARKS,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure2Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="figure2")
    else:
        rn = runner or Runner(scale)
    points: list[Figure2Point] = []
    for name in benchmarks:
        ref = None
        for regs in REG_LINES:
            for threads in THREAD_POINTS:
                rf_kb = regs * 4 * threads / 1024
                part = partitioned_design(rf_kb, UNBOUNDED_SMEM_KB, 64)
                try:
                    r = rn.simulate(name, part, regs=regs, thread_target=threads)
                except (LaunchError, ValueError):
                    points.append(
                        Figure2Point(name, regs, threads, rf_kb, float("nan"))
                    )
                    continue
                points.append(Figure2Point(name, regs, threads, rf_kb, r.cycles))
        # Normalise to the (max regs, max threads) point.
        ref = next(
            p.normalized_perf
            for p in points
            if p.benchmark == name
            and p.regs_per_thread == REG_LINES[-1]
            and p.threads == THREAD_POINTS[-1]
        )
        for i, p in enumerate(points):
            if p.benchmark == name and p.normalized_perf == p.normalized_perf:
                points[i] = Figure2Point(
                    p.benchmark,
                    p.regs_per_thread,
                    p.threads,
                    p.rf_kb,
                    ref / p.normalized_perf,
                )
    return Figure2Result(points)
