"""Table 5: warp instructions by maximum accesses to a single bank.

Runs the Figure 7 (no-benefit) suite under the partitioned baseline and
the equal-capacity unified design, and aggregates each design's
per-instruction bank-access histograms.  The paper's finding: ~97% of
warp instructions make at most one access to any bank in both designs,
with the unified design adding a fraction of a percentage point of
multi-access instructions (arbitration conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DesignStyle, MemoryPartition, partitioned_baseline
from repro.core.partition import KB
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.kernels import NO_BENEFIT_SET
from repro.memory.banks import ConflictHistogram

#: Paper Table 5 fractions for (<=1, 2, 3, 4, >4).
PAPER_PARTITIONED = (0.970, 0.027, 0.0009, 0.0014, 0.0003)
PAPER_UNIFIED = (0.964, 0.034, 0.0001, 0.0002, 0.0021)


def equal_capacity_unified() -> MemoryPartition:
    """384 KB unified pool with the baseline's 256/64/64 split."""
    return MemoryPartition(
        DesignStyle.UNIFIED,
        rf_bytes=256 * KB,
        smem_bytes=64 * KB,
        cache_bytes=64 * KB,
    )


@dataclass
class Table5Result:
    partitioned: ConflictHistogram
    unified: ConflictHistogram

    def format(self) -> str:
        headers = ["design", "<=1", "2", "3", "4", ">4"]
        rows = []
        for label, hist, paper in (
            ("partitioned", self.partitioned, PAPER_PARTITIONED),
            ("unified", self.unified, PAPER_UNIFIED),
        ):
            f = hist.fractions()
            rows.append(
                [label, *(f"{f[k]:.4f}" for k in ("<=1", "2", "3", "4", ">4"))]
            )
            rows.append([f"{label} (paper)", *(f"{v:.4f}" for v in paper)])
        return format_table(
            headers, rows, title="Table 5: max accesses to a single bank per instruction"
        )


def jobs(benchmarks: tuple[str, ...] = NO_BENEFIT_SET) -> list[Job]:
    """The sweep as independent executor jobs (two per benchmark)."""
    uni = equal_capacity_unified()
    out = []
    for name in benchmarks:
        out.append(Job("baseline", name))
        out.append(Job("partition", name, partition=uni))
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = NO_BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Table5Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="table5")
    else:
        rn = runner or Runner(scale)
    part_hist = ConflictHistogram()
    uni_hist = ConflictHistogram()
    uni = equal_capacity_unified()
    for name in benchmarks:
        part_hist.merge(rn.simulate(name, partitioned_baseline()).conflict_histogram)
        uni_hist.merge(rn.simulate(name, uni).conflict_histogram)
    return Table5Result(part_hist, uni_hist)
