"""Ablations of the unified design's enabling choices.

The paper motivates three design decisions that this module isolates:

1. **Scatter/gather bank port** (Section 4.2): the simple design lets
   one bank per cluster reach the crossbar per cycle; the enhanced
   design allows several.  The paper measured the enhanced variant at
   +0.5% average and kept the simple one.
   -> :func:`run_cluster_port` compares the two on the full suite.

2. **The register file hierarchy is the key enabler** (Sections 2.1,
   4.3, 6.1): "The key enabler that allows the unification of on-chip
   memory without excessive numbers of arbitration conflicts is the
   register file hierarchy, which dramatically reduces the number of
   accesses to the main register file."
   -> :func:`run_no_hierarchy` recompiles every benchmark with the
   LRF/ORF disabled (all operands served by MRF banks) and measures how
   arbitration conflicts and performance respond in the unified design.

3. **Write-through caching** (Sections 4.3-4.4): write-through means
   evictions never cost a bank access and repartitioning never flushes
   dirty data.  The timing side of a write-back alternative is not
   modelled (our cache is write-through by construction); what we can
   quantify is the *repartitioning* argument: the write-through design's
   reconfiguration cost is exactly one cache flush, measured in
   :mod:`repro.core.reconfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import compile_kernel
from repro.core import allocate_unified
from repro.core.partition import KB
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, NO_BENEFIT_SET
from repro.sm import SMConfig, simulate


@dataclass(frozen=True)
class AblationRow:
    name: str
    baseline: float  # cycles under the default model
    variant: float  # cycles under the ablated model
    delta: float  # variant / baseline - 1 (positive = variant slower)
    extra: dict


@dataclass
class AblationResult:
    title: str
    rows: list[AblationRow]

    def row(self, name: str) -> AblationRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_delta(self) -> float:
        return geomean([1.0 + r.delta for r in self.rows]) - 1.0

    def format(self) -> str:
        headers = ["benchmark", "default cyc", "variant cyc", "delta %"]
        rows = [
            [r.name, r.baseline, r.variant, 100.0 * r.delta] for r in self.rows
        ]
        rows.append(["geomean", "", "", 100.0 * self.mean_delta])
        return format_table(headers, rows, title=self.title)


def run_cluster_port(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET + NO_BENEFIT_SET,
    runner: Runner | None = None,
) -> AblationResult:
    """Strict one-bank-per-cluster port vs the paper's per-bank model.

    The paper's simple-vs-enhanced scatter/gather comparison: expected
    to be a fraction of a percent on this suite (their 0.5%).
    """
    rn = runner or Runner(scale)
    strict_cfg = SMConfig(cluster_port_banks=True)
    rows = []
    for name in benchmarks:
        uni, _ = rn.unified(name, total_kb=384)
        ck = rn.compiled(name)
        strict = simulate(ck, uni.partition, strict_cfg)
        rows.append(
            AblationRow(
                name=name,
                baseline=uni.cycles,
                variant=strict.cycles,
                delta=strict.cycles / uni.cycles - 1.0,
                extra={
                    "default_conflicts": uni.bank_conflict_cycles,
                    "strict_conflicts": strict.bank_conflict_cycles,
                },
            )
        )
    return AblationResult(
        "Ablation: strict cluster-port banks vs per-bank model (unified 384KB)",
        rows,
    )


def run_no_hierarchy(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    runner: Runner | None = None,
) -> AblationResult:
    """Disable the LRF/ORF: every operand hits the MRF banks.

    Quantifies the paper's "key enabler" claim: without the hierarchy,
    unified-design arbitration conflicts multiply.
    """
    rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        uni, alloc = rn.unified(name, total_kb=384)
        trace = rn.trace(name)
        flat = compile_kernel(trace, orf_entries=0)
        variant = simulate(flat, alloc.partition)
        rows.append(
            AblationRow(
                name=name,
                baseline=uni.cycles,
                variant=variant.cycles,
                delta=variant.cycles / uni.cycles - 1.0,
                extra={
                    "mrf_reads_with": uni.energy_counts.mrf_reads,
                    "mrf_reads_without": variant.energy_counts.mrf_reads,
                    "conflicts_with": uni.bank_conflict_cycles,
                    "conflicts_without": variant.bank_conflict_cycles,
                },
            )
        )
    return AblationResult(
        "Ablation: register-file hierarchy disabled (all operands from MRF)",
        rows,
    )


def run_barrier_latency(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("needle", "pcr", "matrixmul", "hotspot"),
    latencies: tuple[int, ...] = (0, 24, 48, 72, 96),
    runner: Runner | None = None,
) -> AblationResult:
    """Sensitivity to the barrier/deschedule latency parameter.

    The barrier release latency (pipeline drain plus two-level-scheduler
    reactivation, default 72 cycles) is a calibration knob of our
    simulator, not a number the paper publishes.  This ablation records
    how strongly each barrier-heavy benchmark's *unified-vs-baseline
    speedup* depends on it: kernels at full occupancy in both designs
    (matrixmul, hotspot) should be insensitive, while occupancy-limited
    kernels (needle) gain more with larger latencies.  Rows report the
    speedup at the smallest vs the largest latency in the grid.
    """
    rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        speedups = []
        for lat in latencies:
            cfg = SMConfig(barrier_latency=lat)
            ck = rn.compiled(name)
            from repro.core import partitioned_baseline

            trace = rn.trace(name)
            alloc = allocate_unified(
                384 * KB,
                regs_per_thread=ck.regs_per_thread,
                threads_per_cta=trace.launch.threads_per_cta,
                smem_bytes_per_cta=trace.launch.smem_bytes_per_cta,
            )
            base = simulate(ck, partitioned_baseline(), cfg)
            uni = simulate(ck, alloc.partition, cfg)
            speedups.append(base.cycles / uni.cycles)
        rows.append(
            AblationRow(
                name=name,
                baseline=speedups[0],
                variant=speedups[-1],
                delta=speedups[-1] / speedups[0] - 1.0,
                extra={"speedups": dict(zip(latencies, speedups))},
            )
        )
    return AblationResult(
        "Ablation: unified speedup vs barrier/deschedule latency "
        f"(columns: speedup at {latencies[0]} vs {latencies[-1]} cycles)",
        rows,
    )


def run_orf_size(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("needle", "pcr", "nbody", "sgemv"),
    sizes: tuple[int, ...] = (1, 2, 4, 8),
    runner: Runner | None = None,
) -> AblationResult:
    """MRF-traffic sensitivity to the ORF capacity.

    The prior work the paper builds on ([9]) chose 4 ORF entries per
    thread; this sweep shows the knee: going from 1 to 4 entries cuts
    MRF reads substantially, while 8 entries adds little -- the
    diminishing returns that justify the paper's configuration.  The
    row's baseline/variant columns hold the MRF read counts at the
    smallest and the default (4-entry) size.
    """
    rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        trace = rn.trace(name)
        reads = {}
        for size in sizes:
            ck = compile_kernel(trace, orf_entries=size)
            reads[size] = ck.rf_traffic().mrf_reads
        rows.append(
            AblationRow(
                name=name,
                baseline=reads[sizes[0]],
                variant=reads[4] if 4 in reads else reads[sizes[-1]],
                delta=(reads[4] if 4 in reads else reads[sizes[-1]])
                / reads[sizes[0]]
                - 1.0,
                extra={"mrf_reads": reads},
            )
        )
    return AblationResult(
        "Ablation: MRF reads vs ORF capacity (columns: reads at "
        f"{sizes[0]} vs 4 entries)",
        rows,
    )


def run_cache_associativity(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("bfs", "gpu-mummer", "pcr", "srad"),
    assocs: tuple[int, ...] = (1, 2, 4, 8),
    runner: Runner | None = None,
) -> AblationResult:
    """Cache associativity sweep on the cache-limited benchmarks.

    The paper fixes 4-way associativity (Table 2).  This sweep verifies
    the choice is comfortable: direct-mapped suffers conflict misses,
    while 8-way adds little over 4-way.  Rows compare runtime at 1-way
    vs the default 4-way under the baseline partition.
    """
    rn = runner or Runner(scale)
    from repro.core import partitioned_baseline

    rows = []
    for name in benchmarks:
        ck = rn.compiled(name)
        cycles = {}
        misses = {}
        for assoc in assocs:
            r = simulate(ck, partitioned_baseline(), SMConfig(cache_assoc=assoc))
            cycles[assoc] = r.cycles
            misses[assoc] = r.cache_stats.read_misses
        rows.append(
            AblationRow(
                name=name,
                baseline=cycles[1],
                variant=cycles[4],
                delta=cycles[4] / cycles[1] - 1.0,
                extra={"cycles": cycles, "read_misses": misses},
            )
        )
    return AblationResult(
        "Ablation: runtime vs cache associativity (columns: 1-way vs 4-way)",
        rows,
    )
