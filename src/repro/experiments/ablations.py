"""Ablations of the unified design's enabling choices.

The paper motivates three design decisions that this module isolates:

1. **Scatter/gather bank port** (Section 4.2): the simple design lets
   one bank per cluster reach the crossbar per cycle; the enhanced
   design allows several.  The paper measured the enhanced variant at
   +0.5% average and kept the simple one.
   -> :func:`run_cluster_port` compares the two on the full suite.

2. **The register file hierarchy is the key enabler** (Sections 2.1,
   4.3, 6.1): "The key enabler that allows the unification of on-chip
   memory without excessive numbers of arbitration conflicts is the
   register file hierarchy, which dramatically reduces the number of
   accesses to the main register file."
   -> :func:`run_no_hierarchy` recompiles every benchmark with the
   LRF/ORF disabled (all operands served by MRF banks) and measures how
   arbitration conflicts and performance respond in the unified design.

3. **Write-through caching** (Sections 4.3-4.4): write-through means
   evictions never cost a bank access and repartitioning never flushes
   dirty data.  The timing side of a write-back alternative is not
   modelled (our cache is write-through by construction); what we can
   quantify is the *repartitioning* argument: the write-through design's
   reconfiguration cost is exactly one cache flush, measured in
   :mod:`repro.core.reconfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job, register_job_kind
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, NO_BENEFIT_SET
from repro.sm import SMConfig

#: The strict one-bank-per-cluster scatter/gather variant (Section 4.2).
STRICT_PORT_CFG = SMConfig(cluster_port_banks=True)


@dataclass(frozen=True)
class AblationRow:
    name: str
    baseline: float  # cycles under the default model
    variant: float  # cycles under the ablated model
    delta: float  # variant / baseline - 1 (positive = variant slower)
    extra: dict


@dataclass
class AblationResult:
    title: str
    rows: list[AblationRow]

    def row(self, name: str) -> AblationRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_delta(self) -> float:
        return geomean([1.0 + r.delta for r in self.rows]) - 1.0

    def format(self) -> str:
        headers = ["benchmark", "default cyc", "variant cyc", "delta %"]
        rows = [
            [r.name, r.baseline, r.variant, 100.0 * r.delta] for r in self.rows
        ]
        rows.append(["geomean", "", "", 100.0 * self.mean_delta])
        return format_table(headers, rows, title=self.title)


@register_job_kind("cluster-port")
def _cluster_port_job(rn: Runner, job: Job) -> None:
    uni, _ = rn.unified(job.benchmark, total_kb=384)
    rn.variant(STRICT_PORT_CFG).simulate(job.benchmark, uni.partition)


def jobs_cluster_port(
    benchmarks: tuple[str, ...] = BENEFIT_SET + NO_BENEFIT_SET,
) -> list[Job]:
    return [Job("cluster-port", name) for name in benchmarks]


def run_cluster_port(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET + NO_BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> AblationResult:
    """Strict one-bank-per-cluster port vs the paper's per-bank model.

    The paper's simple-vs-enhanced scatter/gather comparison: expected
    to be a fraction of a percent on this suite (their 0.5%).
    """
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs_cluster_port(benchmarks), label="cluster-port")
    else:
        rn = runner or Runner(scale)
    strict_rn = rn.variant(STRICT_PORT_CFG)
    rows = []
    for name in benchmarks:
        uni, _ = rn.unified(name, total_kb=384)
        strict = strict_rn.simulate(name, uni.partition)
        rows.append(
            AblationRow(
                name=name,
                baseline=uni.cycles,
                variant=strict.cycles,
                delta=strict.cycles / uni.cycles - 1.0,
                extra={
                    "default_conflicts": uni.bank_conflict_cycles,
                    "strict_conflicts": strict.bank_conflict_cycles,
                },
            )
        )
    return AblationResult(
        "Ablation: strict cluster-port banks vs per-bank model (unified 384KB)",
        rows,
    )


@register_job_kind("no-hierarchy")
def _no_hierarchy_job(rn: Runner, job: Job) -> None:
    _, alloc = rn.unified(job.benchmark, total_kb=384)
    rn.simulate(job.benchmark, alloc.partition, orf_entries=0)


def jobs_no_hierarchy(benchmarks: tuple[str, ...] = BENEFIT_SET) -> list[Job]:
    return [Job("no-hierarchy", name) for name in benchmarks]


def run_no_hierarchy(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> AblationResult:
    """Disable the LRF/ORF: every operand hits the MRF banks.

    Quantifies the paper's "key enabler" claim: without the hierarchy,
    unified-design arbitration conflicts multiply.
    """
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs_no_hierarchy(benchmarks), label="no-hierarchy")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        uni, alloc = rn.unified(name, total_kb=384)
        variant = rn.simulate(name, alloc.partition, orf_entries=0)
        rows.append(
            AblationRow(
                name=name,
                baseline=uni.cycles,
                variant=variant.cycles,
                delta=variant.cycles / uni.cycles - 1.0,
                extra={
                    "mrf_reads_with": uni.energy_counts.mrf_reads,
                    "mrf_reads_without": variant.energy_counts.mrf_reads,
                    "conflicts_with": uni.bank_conflict_cycles,
                    "conflicts_without": variant.bank_conflict_cycles,
                },
            )
        )
    return AblationResult(
        "Ablation: register-file hierarchy disabled (all operands from MRF)",
        rows,
    )


@register_job_kind("barrier-latency")
def _barrier_latency_job(rn: Runner, job: Job) -> None:
    # ``rn`` already carries the variant SMConfig (job.config); the
    # allocation is config-independent and shared across latencies.
    alloc = rn.allocation(job.benchmark, total_kb=384)
    rn.baseline(job.benchmark)
    rn.simulate(job.benchmark, alloc.partition)


def jobs_barrier_latency(
    benchmarks: tuple[str, ...] = ("needle", "pcr", "matrixmul", "hotspot"),
    latencies: tuple[int, ...] = (0, 24, 48, 72, 96),
) -> list[Job]:
    return [
        Job("barrier-latency", name, config=SMConfig(barrier_latency=lat))
        for name in benchmarks
        for lat in latencies
    ]


def run_barrier_latency(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("needle", "pcr", "matrixmul", "hotspot"),
    latencies: tuple[int, ...] = (0, 24, 48, 72, 96),
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> AblationResult:
    """Sensitivity to the barrier/deschedule latency parameter.

    The barrier release latency (pipeline drain plus two-level-scheduler
    reactivation, default 72 cycles) is a calibration knob of our
    simulator, not a number the paper publishes.  This ablation records
    how strongly each barrier-heavy benchmark's *unified-vs-baseline
    speedup* depends on it: kernels at full occupancy in both designs
    (matrixmul, hotspot) should be insensitive, while occupancy-limited
    kernels (needle) gain more with larger latencies.  Rows report the
    speedup at the smallest vs the largest latency in the grid.
    """
    if executor is not None:
        rn = executor.runner
        executor.prime(
            jobs_barrier_latency(benchmarks, latencies), label="barrier-latency"
        )
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        speedups = []
        alloc = rn.allocation(name, total_kb=384)
        for lat in latencies:
            vrn = rn.variant(SMConfig(barrier_latency=lat))
            base = vrn.baseline(name)
            uni = vrn.simulate(name, alloc.partition)
            speedups.append(base.cycles / uni.cycles)
        rows.append(
            AblationRow(
                name=name,
                baseline=speedups[0],
                variant=speedups[-1],
                delta=speedups[-1] / speedups[0] - 1.0,
                extra={"speedups": dict(zip(latencies, speedups))},
            )
        )
    return AblationResult(
        "Ablation: unified speedup vs barrier/deschedule latency "
        f"(columns: speedup at {latencies[0]} vs {latencies[-1]} cycles)",
        rows,
    )


def jobs_orf_size(
    benchmarks: tuple[str, ...] = ("needle", "pcr", "nbody", "sgemv"),
    sizes: tuple[int, ...] = (1, 2, 4, 8),
) -> list[Job]:
    return [
        Job("compile", name, params=(("orf_entries", size),))
        for name in benchmarks
        for size in sizes
    ]


def run_orf_size(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("needle", "pcr", "nbody", "sgemv"),
    sizes: tuple[int, ...] = (1, 2, 4, 8),
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> AblationResult:
    """MRF-traffic sensitivity to the ORF capacity.

    The prior work the paper builds on ([9]) chose 4 ORF entries per
    thread; this sweep shows the knee: going from 1 to 4 entries cuts
    MRF reads substantially, while 8 entries adds little -- the
    diminishing returns that justify the paper's configuration.  The
    row's baseline/variant columns hold the MRF read counts at the
    smallest and the default (4-entry) size.
    """
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs_orf_size(benchmarks, sizes), label="orf-size")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        reads = {}
        for size in sizes:
            reads[size] = rn.summary(name, orf_entries=size).mrf_reads
        rows.append(
            AblationRow(
                name=name,
                baseline=reads[sizes[0]],
                variant=reads[4] if 4 in reads else reads[sizes[-1]],
                delta=(reads[4] if 4 in reads else reads[sizes[-1]])
                / reads[sizes[0]]
                - 1.0,
                extra={"mrf_reads": reads},
            )
        )
    return AblationResult(
        "Ablation: MRF reads vs ORF capacity (columns: reads at "
        f"{sizes[0]} vs 4 entries)",
        rows,
    )


def jobs_cache_associativity(
    benchmarks: tuple[str, ...] = ("bfs", "gpu-mummer", "pcr", "srad"),
    assocs: tuple[int, ...] = (1, 2, 4, 8),
) -> list[Job]:
    return [
        Job("baseline", name, config=SMConfig(cache_assoc=assoc))
        for name in benchmarks
        for assoc in assocs
    ]


def run_cache_associativity(
    scale: str = "small",
    benchmarks: tuple[str, ...] = ("bfs", "gpu-mummer", "pcr", "srad"),
    assocs: tuple[int, ...] = (1, 2, 4, 8),
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> AblationResult:
    """Cache associativity sweep on the cache-limited benchmarks.

    The paper fixes 4-way associativity (Table 2).  This sweep verifies
    the choice is comfortable: direct-mapped suffers conflict misses,
    while 8-way adds little over 4-way.  Rows compare runtime at 1-way
    vs the default 4-way under the baseline partition.
    """
    if executor is not None:
        rn = executor.runner
        executor.prime(
            jobs_cache_associativity(benchmarks, assocs), label="cache-assoc"
        )
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        cycles = {}
        misses = {}
        for assoc in assocs:
            r = rn.variant(SMConfig(cache_assoc=assoc)).baseline(name)
            cycles[assoc] = r.cycles
            misses[assoc] = r.cache_stats.read_misses
        rows.append(
            AblationRow(
                name=name,
                baseline=cycles[1],
                variant=cycles[4],
                delta=cycles[4] / cycles[1] - 1.0,
                extra={"cycles": cycles, "read_misses": misses},
            )
        )
    return AblationResult(
        "Ablation: runtime vs cache associativity (columns: 1-way vs 4-way)",
        rows,
    )
