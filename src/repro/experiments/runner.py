"""Shared experiment machinery: build, compile, simulate, price -- cached.

Traces depend only on (benchmark, scale, extra build params); compiled
kernels add the register budget; simulations add the partition, thread
target, and SM configuration.  Each level is memoised so sweeps over
memory configurations re-use the expensive trace/compile work, exactly
like the paper's trace-driven methodology re-runs one trace through many
configurations.

Two cache layers:

* an **in-memory memo** per :class:`Runner` (always on), and
* an optional **on-disk artifact cache**
  (:class:`~repro.experiments.artifacts.DiskCache`) shared across
  processes and runs: traces persist as ``.npz`` via
  :mod:`repro.isa.io`, simulation results as JSON via
  :mod:`repro.sm.serialize`, and compile summaries / unified
  allocations / expected failures as small JSON "meta" entries.

Every simulation memo key folds in a fingerprint of the
:class:`SMConfig`, so two runners sharing a disk cache -- or config
*variants* of one runner (:meth:`Runner.variant`) -- can never serve
each other stale results.

The **journal** is the executor's delta-shipping hook: while a journal
is armed (:meth:`Runner.journal_reset`), every newly memoised
simulation, allocation, compile summary, and expected failure is
recorded as a ``(kind, key, value)`` entry, which a parent process can
:meth:`Runner.adopt` to warm its own memo without redoing the work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

import repro
from repro.chip import (
    CHIP_RESULT_FORMAT_VERSION,
    ChipConfig,
    ChipResult,
    chip_fingerprint,
    chip_result_from_dict,
    chip_result_to_dict,
    simulate_chip,
)
from repro.compiler import CompiledKernel, compile_kernel
from repro.core import allocate_unified, fermi_like, partitioned_baseline
from repro.core.allocator import AllocationError, UnifiedAllocation
from repro.core.partition import KB, MemoryPartition
from repro.energy import EnergyBreakdown, EnergyModel
from repro.isa import io as trace_io
from repro.memory.dram import channel_utilisation
from repro.isa.kernel import KernelTrace
from repro.kernels import get_benchmark
from repro.sm import SMConfig, SimResult, simulate
from repro.sm.cta_scheduler import LaunchError
from repro.sm.simulator import resolved_engine
from repro.sm.serialize import (
    RESULT_FORMAT_VERSION,
    partition_from_dict,
    partition_to_dict,
)

#: Exception classes a worker may legitimately surface to the parent;
#: anything else is a bug and propagates.
EXPECTED_ERRORS: dict[str, type[Exception]] = {
    "LaunchError": LaunchError,
    "AllocationError": AllocationError,
    "ValueError": ValueError,
}


@dataclass(frozen=True)
class BenchmarkRun:
    """One priced simulation."""

    result: SimResult
    energy: EnergyBreakdown

    @property
    def cycles(self) -> float:
        return self.result.cycles

    @property
    def dram_accesses(self) -> int:
        return self.result.dram_accesses


@dataclass(frozen=True, slots=True)
class CompiledSummary:
    """The compile facts experiment drivers consume.

    Unlike a full :class:`~repro.compiler.compiled.CompiledKernel`
    (one record per dynamic instruction), the summary is a handful of
    integers -- cheap to ship between processes and to persist, which is
    what lets warm-cache reruns of Table 1 skip recompilation entirely.
    """

    name: str
    regs_per_thread: int
    max_live: int
    total_ops: int
    spill_slots: int
    threads_per_cta: int
    smem_bytes_per_cta: int
    mrf_reads: int

    @property
    def smem_bytes_per_thread(self) -> float:
        return self.smem_bytes_per_cta / self.threads_per_cta

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(CompiledSummary)}

    @classmethod
    def from_dict(cls, d: dict) -> "CompiledSummary":
        return cls(**{f.name: d[f.name] for f in fields(cls)})

    @classmethod
    def of(cls, ck: CompiledKernel) -> "CompiledSummary":
        return cls(
            name=ck.name,
            regs_per_thread=ck.regs_per_thread,
            max_live=ck.max_live,
            total_ops=ck.total_ops,
            spill_slots=ck.spill_slots,
            threads_per_cta=ck.launch.threads_per_cta,
            smem_bytes_per_cta=ck.launch.smem_bytes_per_cta,
            mrf_reads=ck.rf_traffic().mrf_reads,
        )


def _partition_key(p: MemoryPartition) -> tuple:
    return (p.style.value, p.rf_bytes, p.smem_bytes, p.cache_bytes)


def config_fingerprint(config: SMConfig) -> tuple:
    """Stable, hashable, JSON-compatible rendering of an SMConfig.

    ``engine`` is excluded: the columnar and event engines are
    bit-identical by contract, so the choice must not invalidate
    cached results or split otherwise-equal sweeps.
    """
    return tuple(
        (f.name, getattr(config, f.name))
        for f in fields(SMConfig)
        if f.name != "engine"
    )


def _raise_expected(record: tuple[str, str]) -> None:
    kind, message = record
    raise EXPECTED_ERRORS[kind](message)


class Runner:
    """Caching façade over the kernel suite and the SM simulator.

    Args:
        scale: Workload scale ("tiny", "small", "paper").
        config: SM timing parameters; defaults to the paper's Table 2.
        cache: Optional :class:`~repro.experiments.artifacts.DiskCache`
            backing the in-memory memo.  Safe to share between processes
            (the executor's workers) and across runs.
    """

    def __init__(
        self,
        scale: str = "small",
        config: SMConfig | None = None,
        cache=None,
    ) -> None:
        self.scale = scale
        self.config = config or SMConfig()
        self.cache = cache
        self.energy_model = EnergyModel()
        self._traces: dict[tuple, KernelTrace] = {}
        self._compiled: dict[tuple, CompiledKernel] = {}
        self._sims: dict[tuple, SimResult] = {}
        self._chips: dict[tuple, ChipResult] = {}
        self._sim_errors: dict[tuple, tuple[str, str]] = {}
        self._allocs: dict[tuple, UnifiedAllocation] = {}
        self._alloc_errors: dict[tuple, tuple[str, str]] = {}
        self._summaries: dict[tuple, CompiledSummary] = {}
        #: sim/chip key -> engine that *executed* the live simulation
        #: ("event" or "columnar", tiered warm-up decisions included).
        #: Memo and disk-cache hits run nothing, so they record nothing.
        self._engines: dict[tuple, str] = {}
        self._journal: list[tuple[str, tuple, object]] | None = None
        self._journal_host: Runner = self

    def variant(self, config: SMConfig) -> "Runner":
        """A runner for a different SMConfig sharing every memo.

        Simulation keys embed the config fingerprint, so the shared
        ``_sims`` dict cannot mix results across configs; traces,
        compiles, and allocations are config-independent and genuinely
        shared.  Journal entries recorded through a variant land on the
        originating runner, so the executor sees one stream.
        """
        v = Runner(self.scale, config, cache=self.cache)
        v._traces = self._traces
        v._compiled = self._compiled
        v._sims = self._sims
        v._chips = self._chips
        v._sim_errors = self._sim_errors
        v._allocs = self._allocs
        v._alloc_errors = self._alloc_errors
        v._summaries = self._summaries
        v._engines = self._engines
        v._journal_host = self._journal_host
        return v

    # -- journal (executor delta shipping) --------------------------------
    def journal_reset(self) -> list[tuple[str, tuple, object]]:
        """Arm the journal and return entries recorded since last reset."""
        host = self._journal_host
        entries = host._journal or []
        host._journal = []
        return entries

    def _record(self, kind: str, key: tuple, value) -> None:
        host = self._journal_host
        if host._journal is not None:
            host._journal.append((kind, key, value))

    def adopt(self, entries) -> None:
        """Merge journal entries from another Runner (worker process)."""
        memos = {
            "sim": self._sims,
            "chip": self._chips,
            "sim_error": self._sim_errors,
            "alloc": self._allocs,
            "alloc_error": self._alloc_errors,
            "summary": self._summaries,
            "engine": self._engines,
        }
        for kind, key, value in entries:
            memos[kind].setdefault(tuple(key), value)

    # -- cache keys -------------------------------------------------------
    def _config_key(self) -> tuple:
        return config_fingerprint(self.config)

    def _trace_disk_key(self, name: str, params: tuple) -> tuple:
        return (
            "trace",
            trace_io.FORMAT_VERSION,
            repro.__version__,
            self.scale,
            name,
            params,
        )

    def sim_key(
        self,
        name: str,
        partition: MemoryPartition,
        regs: int | None = None,
        thread_target: int | None = None,
        **params,
    ) -> tuple:
        """The memo key one simulation is stored under (config included)."""
        return (
            name,
            regs,
            _partition_key(partition),
            thread_target,
            tuple(sorted(params.items())),
            self._config_key(),
        )

    def _sim_disk_key(self, key: tuple) -> tuple:
        return ("sim", RESULT_FORMAT_VERSION, repro.__version__, self.scale, key)

    def chip_sim_key(
        self,
        name: str,
        partition: MemoryPartition,
        chip: ChipConfig,
        regs: int | None = None,
        thread_target: int | None = None,
        **params,
    ) -> tuple:
        """The memo key one chip simulation is stored under.

        The :func:`~repro.chip.chip_fingerprint` stands in for the
        SMConfig fingerprint of :meth:`sim_key` -- it embeds the nested
        per-SM config, so chips differing in SM timing, SM count, or
        DRAM arbitration never share an entry.
        """
        return (
            name,
            regs,
            _partition_key(partition),
            thread_target,
            tuple(sorted(params.items())),
            chip_fingerprint(chip),
        )

    def _chip_disk_key(self, key: tuple) -> tuple:
        # Folds in both schema versions: the chip envelope's and the
        # per-SM result format the envelope embeds.
        return (
            "chip",
            CHIP_RESULT_FORMAT_VERSION,
            RESULT_FORMAT_VERSION,
            repro.__version__,
            self.scale,
            key,
        )

    def _sim_error_disk_key(self, key: tuple) -> tuple:
        return ("sim_error", repro.__version__, self.scale, key)

    def _summary_disk_key(self, key: tuple) -> tuple:
        return ("summary", repro.__version__, self.scale, key)

    def _alloc_disk_key(self, key: tuple) -> tuple:
        return ("alloc", repro.__version__, self.scale, key)

    def _alloc_error_disk_key(self, key: tuple) -> tuple:
        return ("alloc_error", repro.__version__, self.scale, key)

    @staticmethod
    def _split_params(params: dict) -> tuple[dict, dict]:
        """Separate trace build params from compile params.

        ``orf_entries`` is a compiler knob (RF-hierarchy ablations), not
        a benchmark build parameter; it still participates in compile
        and simulation keys via the caller's ``params``.
        """
        build = {k: v for k, v in params.items() if k != "orf_entries"}
        comp = {k: v for k, v in params.items() if k == "orf_entries"}
        return build, comp

    # -- construction ---------------------------------------------------
    def trace(self, name: str, **params) -> KernelTrace:
        build, _ = self._split_params(params)
        key = (name, tuple(sorted(build.items())))
        if key not in self._traces:
            trace = None
            if self.cache is not None:
                disk_key = self._trace_disk_key(name, key[1])
                trace = self.cache.get_trace(disk_key)
            if trace is None:
                trace = get_benchmark(name).build(self.scale, **build)
                if self.cache is not None:
                    self.cache.put_trace(disk_key, trace)
            self._traces[key] = trace
        return self._traces[key]

    def compiled(self, name: str, regs: int | None = None, **params) -> CompiledKernel:
        key = (name, regs, tuple(sorted(params.items())))
        if key not in self._compiled:
            build, comp = self._split_params(params)
            ck = compile_kernel(self.trace(name, **build), regs, **comp)
            self._compiled[key] = ck
            if key not in self._summaries:
                self._store_summary(key, CompiledSummary.of(ck))
        return self._compiled[key]

    def _store_summary(self, key: tuple, summary: CompiledSummary) -> None:
        self._summaries[key] = summary
        self._record("summary", key, summary)
        if self.cache is not None:
            self.cache.put_meta(self._summary_disk_key(key), summary.to_dict())

    def summary(self, name: str, regs: int | None = None, **params) -> CompiledSummary:
        """Compile facts without the instruction stream (cache-friendly).

        Prefer this over :meth:`compiled` when only ``max_live`` /
        ``total_ops`` / launch geometry are needed: warm caches answer
        it without recompiling, and the executor ships it between
        processes for pennies.
        """
        key = (name, regs, tuple(sorted(params.items())))
        if key in self._summaries:
            return self._summaries[key]
        if self.cache is not None:
            payload = self.cache.get_meta(self._summary_disk_key(key))
            if payload is not None:
                summary = CompiledSummary.from_dict(payload)
                self._summaries[key] = summary
                self._record("summary", key, summary)
                return summary
        self.compiled(name, regs, **params)
        return self._summaries[key]

    def no_spill_regs(self, name: str, **params) -> int:
        """Registers/thread to avoid spills (Table 1, column 2)."""
        return self.summary(name, **params).max_live

    # -- simulation -----------------------------------------------------
    def simulate(
        self,
        name: str,
        partition: MemoryPartition,
        regs: int | None = None,
        thread_target: int | None = None,
        **params,
    ) -> SimResult:
        key = self.sim_key(
            name, partition, regs=regs, thread_target=thread_target, **params
        )
        if key in self._sims:
            return self._sims[key]
        if key in self._sim_errors:
            _raise_expected(self._sim_errors[key])
        result = None
        if self.cache is not None:
            result = self.cache.get_result(self._sim_disk_key(key))
            if result is None:
                payload = self.cache.get_meta(self._sim_error_disk_key(key))
                if payload is not None:
                    self._memo_sim_error(key, (payload["error"], payload["message"]))
                    _raise_expected(self._sim_errors[key])
        if result is None:
            ck = self.compiled(name, regs, **params)
            # Ask the dispatch seam *before* running: simulate() marks a
            # cold kernel warm as a side effect, so asking afterwards
            # would claim the warm-up run itself replayed columnar.
            engine = resolved_engine(ck, self.config)
            try:
                result = simulate(
                    ck,
                    partition,
                    self.config,
                    thread_target=thread_target,
                )
            except LaunchError as e:
                record = ("LaunchError", str(e))
                self._memo_sim_error(key, record)
                if self.cache is not None:
                    self.cache.put_meta(
                        self._sim_error_disk_key(key),
                        {"error": record[0], "message": record[1]},
                    )
                raise
            if self.cache is not None:
                self.cache.put_result(self._sim_disk_key(key), result)
            self._engines[key] = engine
            self._record("engine", key, engine)
        self._sims[key] = result
        self._record("sim", key, result)
        return result

    def _memo_sim_error(self, key: tuple, record: tuple[str, str]) -> None:
        self._sim_errors[key] = record
        self._record("sim_error", key, record)

    def simulate_chip(
        self,
        name: str,
        partition: MemoryPartition,
        chip: ChipConfig | None = None,
        regs: int | None = None,
        thread_target: int | None = None,
        chip_collector=None,
        **params,
    ) -> ChipResult:
        """Run one kernel launch across a whole chip (memoised + cached).

        Defaults to the paper's 32-SM chip built from this runner's
        SMConfig; pass ``chip`` for other shapes (``ChipConfig.single_sm``
        reproduces :meth:`simulate` bit for bit).  Chip artifacts persist
        in the disk cache as JSON meta entries and ship through the
        journal like single-SM results.

        ``chip_collector`` (a :class:`~repro.obs.chip.ChipCollector`)
        forces a live run -- a memoised result would leave the collector
        with nothing observed -- but the result is still stored, which
        neutrality makes safe: instrumented and uninstrumented runs are
        bit-identical.
        """
        cfg = chip or ChipConfig(sm=self.config)
        key = self.chip_sim_key(
            name, partition, cfg, regs=regs, thread_target=thread_target, **params
        )
        instrumented = chip_collector is not None and chip_collector.enabled
        if not instrumented and key in self._chips:
            return self._chips[key]
        result = None
        if not instrumented and self.cache is not None:
            payload = self.cache.get_meta(self._chip_disk_key(key))
            if payload is not None:
                try:
                    result = chip_result_from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    result = None
        if result is None:
            result = simulate_chip(
                self.compiled(name, regs, **params),
                partition,
                cfg,
                thread_target=thread_target,
                chip_collector=chip_collector,
            )
            if self.cache is not None:
                self.cache.put_meta(
                    self._chip_disk_key(key), chip_result_to_dict(result)
                )
            # Chip scope has no tiered warm-up (lowering amortises over
            # the SMs of one run), so the configured engine is the
            # resolved one.
            self._engines[key] = cfg.sm.engine
            self._record("engine", key, cfg.sm.engine)
        self._chips[key] = result
        self._record("chip", key, result)
        return result

    def baseline(self, name: str, **kw) -> SimResult:
        """The 256/64/64 partitioned baseline (Section 2.1)."""
        return self.simulate(name, partitioned_baseline(), **kw)

    def allocation(
        self,
        name: str,
        total_kb: int = 384,
        thread_target: int | None = None,
        **params,
    ) -> UnifiedAllocation:
        """The Section 4.5 allocation at ``total_kb`` (memoised).

        Like :meth:`simulate`, expected :class:`AllocationError` outcomes
        are memoised and persisted so capacity sweeps whose small points
        do not fit never re-derive the refusal.
        """
        key = (name, total_kb, thread_target, tuple(sorted(params.items())))
        if key in self._allocs:
            return self._allocs[key]
        if key in self._alloc_errors:
            _raise_expected(self._alloc_errors[key])
        if self.cache is not None:
            payload = self.cache.get_meta(self._alloc_disk_key(key))
            if payload is not None:
                alloc = UnifiedAllocation(
                    partition=partition_from_dict(payload["partition"]),
                    resident_ctas=payload["resident_ctas"],
                    resident_threads=payload["resident_threads"],
                )
                self._allocs[key] = alloc
                self._record("alloc", key, alloc)
                return alloc
            payload = self.cache.get_meta(self._alloc_error_disk_key(key))
            if payload is not None:
                self._memo_alloc_error(key, (payload["error"], payload["message"]))
                _raise_expected(self._alloc_errors[key])
        ck = self.summary(name, **params)
        try:
            alloc = allocate_unified(
                total_kb * KB,
                regs_per_thread=ck.max_live,
                threads_per_cta=ck.threads_per_cta,
                smem_bytes_per_cta=ck.smem_bytes_per_cta,
                thread_target=thread_target if thread_target is not None else 1024,
            )
        except AllocationError as e:
            record = ("AllocationError", str(e))
            self._memo_alloc_error(key, record)
            if self.cache is not None:
                self.cache.put_meta(
                    self._alloc_error_disk_key(key),
                    {"error": record[0], "message": record[1]},
                )
            raise
        self._allocs[key] = alloc
        self._record("alloc", key, alloc)
        if self.cache is not None:
            self.cache.put_meta(
                self._alloc_disk_key(key),
                {
                    "partition": partition_to_dict(alloc.partition),
                    "resident_ctas": alloc.resident_ctas,
                    "resident_threads": alloc.resident_threads,
                },
            )
        return alloc

    def _memo_alloc_error(self, key: tuple, record: tuple[str, str]) -> None:
        self._alloc_errors[key] = record
        self._record("alloc_error", key, record)

    def unified(
        self,
        name: str,
        total_kb: int = 384,
        thread_target: int | None = None,
        **params,
    ) -> tuple[SimResult, UnifiedAllocation]:
        """Section 4.5 allocation at ``total_kb`` followed by simulation."""
        alloc = self.allocation(
            name, total_kb=total_kb, thread_target=thread_target, **params
        )
        result = self.simulate(
            name, alloc.partition, thread_target=thread_target, **params
        )
        return result, alloc

    def fermi_best(self, name: str, **params) -> SimResult:
        """Fermi-like design with the better of the two splits.

        The paper's programmer picks the configuration per kernel; we
        simulate both and keep the faster, which is what tuning would
        converge to.  Splits whose occupancy cannot fit the kernel are
        skipped.
        """
        best: SimResult | None = None
        for split in (0, 1):
            try:
                r = self.simulate(name, fermi_like(split), **params)
            except LaunchError:
                continue
            if best is None or r.cycles < best.cycles:
                best = r
        if best is None:
            raise LaunchError(f"{name} fits neither Fermi-like split")
        return best

    # -- observability ----------------------------------------------------
    def sim_keys(self) -> frozenset:
        """Snapshot of the memoised simulation keys (for run deltas)."""
        return frozenset(self._sims)

    def engine_summary(self) -> dict:
        """Resolved-engine provenance of this run's live simulations.

        ``resolved`` counts what actually executed -- under
        ``engine="columnar"`` a kernel's first single-SM simulation
        still runs the event core (tiered warm-up), so a cold sweep
        legitimately shows both engines.  ``mixed`` flags exactly that.
        Recorded in the run manifest; deliberately *not* in the
        ``--metrics-out`` payload, whose byte-identity across ``--jobs``
        settings warm-up skew would break.
        """
        counts: dict[str, int] = {}
        for engine in self._engines.values():
            counts[engine] = counts.get(engine, 0) + 1
        return {
            "configured": self.config.engine,
            "resolved": dict(sorted(counts.items())),
            "mixed": len(counts) > 1,
        }

    def sim_metrics(self, keys=None) -> dict:
        """Deterministic metrics over the memoised simulations.

        Records are ordered by the ``repr`` of the memo key and carry no
        wall-clock, so the payload is byte-identical between serial and
        forked runs of the same sweep -- the ``--metrics-out`` contract
        (wall-clock belongs in the run manifest instead).  ``keys``
        restricts the aggregate: pass the delta against a
        :meth:`sim_keys` snapshot to scope one experiment.
        """
        if keys is None:
            selected = dict(self._sims)
        else:
            selected = {k: self._sims[k] for k in keys if k in self._sims}
        records = []
        hits = accesses = instructions = dram_bytes = 0
        util_sum = 0.0
        for key in sorted(selected, key=repr):
            r = selected[key]
            # key[-1] is the SMConfig fingerprint this simulation ran
            # under; it carries the DRAM bandwidth utilisation is
            # graded against.
            bpc = dict(key[-1])["dram_bytes_per_cycle"]
            util = channel_utilisation(r.dram_bytes, bpc, r.cycles)
            stats = r.cache_stats
            # key[-1] IS the config fingerprint, so hashing it the way
            # sm_config_digest does yields the same digest spans and
            # manifests carry -- the diff engine's strictest alignment
            # tier joins on it.
            config_digest = hashlib.sha256(
                json.dumps(key[-1], sort_keys=True, default=str).encode()
            ).hexdigest()
            records.append(
                {
                    "kernel": r.kernel,
                    "partition": partition_to_dict(r.partition),
                    "regs": key[1],
                    "thread_target": key[3],
                    "config_digest": config_digest,
                    # The *configured* engine, not the resolved one:
                    # tiered warm-up resolves differently per worker
                    # process, and this payload must stay byte-identical
                    # across --jobs settings.  Truthful resolution lives
                    # in the manifest (engine_summary).
                    "engine": self.config.engine,
                    "cycles": r.cycles,
                    "instructions": r.instructions,
                    "ipc": r.ipc,
                    "resident_threads": r.resident_threads,
                    "bank_conflict_cycles": r.bank_conflict_cycles,
                    "conflict_histogram": r.conflict_histogram.to_dict(),
                    "cache": stats.to_dict(),
                    "dram_accesses": r.dram_accesses,
                    "dram_bytes": r.dram_bytes,
                    "dram_utilisation": util,
                    "stall_cycles": r.stall_cycles,
                }
            )
            hits += stats.read_hits + stats.write_hits
            accesses += stats.accesses
            instructions += r.instructions
            dram_bytes += r.dram_bytes
            util_sum += util
        n = len(records)
        return {
            "schema": "repro.obs.run_metrics/1",
            "totals": {
                "simulations": n,
                "instructions": instructions,
                "cache_accesses": accesses,
                "cache_hit_rate": hits / accesses if accesses else 0.0,
                "dram_bytes": dram_bytes,
                "mean_dram_utilisation": util_sum / n if n else 0.0,
            },
            "simulations": records,
        }

    # -- pricing ----------------------------------------------------------
    def priced(self, result: SimResult, baseline: SimResult | None = None) -> BenchmarkRun:
        base_cycles = baseline.cycles if baseline is not None else result.cycles
        return BenchmarkRun(
            result=result,
            energy=self.energy_model.evaluate(result, baseline_cycles=base_cycles),
        )
