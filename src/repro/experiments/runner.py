"""Shared experiment machinery: build, compile, simulate, price -- cached.

Traces depend only on (benchmark, scale, extra build params); compiled
kernels add the register budget; simulations add the partition and
thread target.  Each level is memoised so sweeps over memory
configurations re-use the expensive trace/compile work, exactly like the
paper's trace-driven methodology re-runs one trace through many
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompiledKernel, compile_kernel
from repro.core import allocate_unified, fermi_like, partitioned_baseline
from repro.core.allocator import UnifiedAllocation
from repro.core.partition import KB, MemoryPartition
from repro.energy import EnergyBreakdown, EnergyModel
from repro.isa.kernel import KernelTrace
from repro.kernels import get_benchmark
from repro.sm import SMConfig, SimResult, simulate


@dataclass(frozen=True)
class BenchmarkRun:
    """One priced simulation."""

    result: SimResult
    energy: EnergyBreakdown

    @property
    def cycles(self) -> float:
        return self.result.cycles

    @property
    def dram_accesses(self) -> int:
        return self.result.dram_accesses


def _partition_key(p: MemoryPartition) -> tuple:
    return (p.style.value, p.rf_bytes, p.smem_bytes, p.cache_bytes)


class Runner:
    """Caching façade over the kernel suite and the SM simulator."""

    def __init__(self, scale: str = "small", config: SMConfig | None = None) -> None:
        self.scale = scale
        self.config = config or SMConfig()
        self.energy_model = EnergyModel()
        self._traces: dict[tuple, KernelTrace] = {}
        self._compiled: dict[tuple, CompiledKernel] = {}
        self._sims: dict[tuple, SimResult] = {}

    # -- construction ---------------------------------------------------
    def trace(self, name: str, **params) -> KernelTrace:
        key = (name, tuple(sorted(params.items())))
        if key not in self._traces:
            self._traces[key] = get_benchmark(name).build(self.scale, **params)
        return self._traces[key]

    def compiled(self, name: str, regs: int | None = None, **params) -> CompiledKernel:
        key = (name, regs, tuple(sorted(params.items())))
        if key not in self._compiled:
            self._compiled[key] = compile_kernel(self.trace(name, **params), regs)
        return self._compiled[key]

    def no_spill_regs(self, name: str, **params) -> int:
        """Registers/thread to avoid spills (Table 1, column 2)."""
        return self.compiled(name, **params).max_live

    # -- simulation -----------------------------------------------------
    def simulate(
        self,
        name: str,
        partition: MemoryPartition,
        regs: int | None = None,
        thread_target: int | None = None,
        **params,
    ) -> SimResult:
        key = (
            name,
            regs,
            _partition_key(partition),
            thread_target,
            tuple(sorted(params.items())),
        )
        if key not in self._sims:
            self._sims[key] = simulate(
                self.compiled(name, regs, **params),
                partition,
                self.config,
                thread_target=thread_target,
            )
        return self._sims[key]

    def baseline(self, name: str, **kw) -> SimResult:
        """The 256/64/64 partitioned baseline (Section 2.1)."""
        return self.simulate(name, partitioned_baseline(), **kw)

    def unified(
        self,
        name: str,
        total_kb: int = 384,
        thread_target: int | None = None,
        **params,
    ) -> tuple[SimResult, UnifiedAllocation]:
        """Section 4.5 allocation at ``total_kb`` followed by simulation."""
        trace = self.trace(name, **params)
        ck = self.compiled(name, **params)
        alloc = allocate_unified(
            total_kb * KB,
            regs_per_thread=ck.regs_per_thread,
            threads_per_cta=trace.launch.threads_per_cta,
            smem_bytes_per_cta=trace.launch.smem_bytes_per_cta,
            thread_target=thread_target if thread_target is not None else 1024,
        )
        result = self.simulate(
            name, alloc.partition, thread_target=thread_target, **params
        )
        return result, alloc

    def fermi_best(self, name: str, **params) -> SimResult:
        """Fermi-like design with the better of the two splits.

        The paper's programmer picks the configuration per kernel; we
        simulate both and keep the faster, which is what tuning would
        converge to.  Splits whose occupancy cannot fit the kernel are
        skipped.
        """
        best: SimResult | None = None
        from repro.sm.cta_scheduler import LaunchError

        for split in (0, 1):
            try:
                r = self.simulate(name, fermi_like(split), **params)
            except LaunchError:
                continue
            if best is None or r.cycles < best.cycles:
                best = r
        if best is None:
            raise LaunchError(f"{name} fits neither Fermi-like split")
        return best

    # -- pricing ----------------------------------------------------------
    def priced(self, result: SimResult, baseline: SimResult | None = None) -> BenchmarkRun:
        base_cycles = baseline.cycles if baseline is not None else result.cycles
        return BenchmarkRun(
            result=result,
            energy=self.energy_model.evaluate(result, baseline_cycles=base_cycles),
        )
