"""Figure 11: tuning needle's blocking factor for the unified design.

Sweeps needle's shared-memory blocking factor (16 / 32 / 64) against
the number of concurrent threads; the x-axis of the paper's figure is
the shared-memory capacity the configuration needs.  The paper's
findings: bf=16 is the only choice on small scratchpads, bf=32 is the
sweet spot at 64 KB, and once several hundred KB are available bf=64
edges ahead while needing fewer threads -- the "tune over the whole
range" opportunity unified memory opens (Section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.kernels.needle import smem_bytes_for
from repro.sm.cta_scheduler import LaunchError

BLOCKING_FACTORS = (16, 32, 64)
THREAD_POINTS = (64, 128, 256, 384, 512, 640, 768, 896, 1024)


@dataclass(frozen=True)
class Figure11Point:
    blocking_factor: int
    threads: int
    smem_kb: float
    cycles: float
    normalized_perf: float


@dataclass
class Figure11Result:
    points: list[Figure11Point]

    def line(self, bf: int) -> list[Figure11Point]:
        return [p for p in self.points if p.blocking_factor == bf]

    def best(self, max_smem_kb: float) -> Figure11Point:
        """Fastest configuration that fits a shared-memory budget."""
        feasible = [p for p in self.points if p.smem_kb <= max_smem_kb]
        if not feasible:
            raise ValueError(f"no configuration fits {max_smem_kb} KB")
        return max(feasible, key=lambda p: p.normalized_perf)

    def format(self) -> str:
        headers = ["bf", *(f"{t} thr" for t in THREAD_POINTS)]
        rows = []
        for bf in BLOCKING_FACTORS:
            line = {p.threads: p for p in self.line(bf)}
            rows.append(
                [bf]
                + [
                    f"{line[t].normalized_perf:.2f}" if t in line else "-"
                    for t in THREAD_POINTS
                ]
            )
            rows.append(
                [f"bf{bf} smem"]
                + [f"{line[t].smem_kb:.0f}K" if t in line else "-" for t in THREAD_POINTS]
            )
        return format_table(
            headers, rows, title="Figure 11: needle blocking-factor tuning"
        )


def _grid(blocking_factors, thread_points):
    """(bf, threads, smem_kb, partition) points of the tuning sweep."""
    for bf in blocking_factors:
        tpc = max(32, bf)
        smem_per_cta = smem_bytes_for(bf)
        for threads in thread_points:
            if threads % tpc:
                continue
            ctas = threads // tpc
            smem_kb = -(-ctas * smem_per_cta) // 1024 + 1
            yield bf, threads, smem_kb, partitioned_design(256, smem_kb, 64)


def jobs(
    blocking_factors: tuple[int, ...] = BLOCKING_FACTORS,
    thread_points: tuple[int, ...] = THREAD_POINTS,
) -> list[Job]:
    """The sweep as independent executor jobs (one per grid point)."""
    return [
        Job(
            "partition",
            "needle",
            partition=part,
            thread_target=threads,
            params=(("blocking_factor", bf),),
        )
        for bf, threads, _, part in _grid(blocking_factors, thread_points)
    ]


def run(
    scale: str = "small",
    blocking_factors: tuple[int, ...] = BLOCKING_FACTORS,
    thread_points: tuple[int, ...] = THREAD_POINTS,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure11Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(blocking_factors, thread_points), label="figure11")
    else:
        rn = runner or Runner(scale)
    points: list[Figure11Point] = []
    best_cycles = None
    for bf, threads, smem_kb, part in _grid(blocking_factors, thread_points):
        try:
            r = rn.simulate(
                "needle",
                part,
                thread_target=threads,
                blocking_factor=bf,
            )
        except (LaunchError, ValueError):
            continue
        points.append(Figure11Point(bf, threads, smem_kb, r.cycles, 0.0))
        if best_cycles is None or r.cycles < best_cycles:
            best_cycles = r.cycles
    return Figure11Result(
        [
            Figure11Point(p.blocking_factor, p.threads, p.smem_kb, p.cycles,
                          best_cycles / p.cycles)
            for p in points
        ]
    )
