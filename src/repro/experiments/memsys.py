"""Memory-system sensitivity: MSHR count x DRAM banks x row-buffer policy.

The paper's single-SM methodology uses a *blocking* miss model: a warp
sleeps on its own fill and nothing tracks in-flight lines.  This study
sweeps the non-blocking memory system (``SMConfig.mshr_entries`` plus
banked open-page DRAM timing) over a memory-diverse slice of the Table 1
suite under the partitioned baseline, and reports for every point:

* cycles and speedup relative to the blocking model,
* the secondary-miss *merge fraction* (misses absorbed by an in-flight
  fill -- traffic the blocking model refetches conceptually for free via
  its optimistic tag-install),
* the DRAM row-hit rate under open-page timing, and
* cycles lost to ``mshr_full`` structural stalls.

Expected shape: tiny MSHR files are *slower* than blocking (the blocking
model's tag-install lets a second warp "hit" a line whose fill is still
in flight, i.e. it under-models structural contention), while >= 16
entries recover it and open-page row hits push past it for kernels with
DRAM page locality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.obs.compare import diff_results
from repro.sm import SMConfig

#: Sweep points: config label -> SMConfig overrides.  ``blocking`` is
#: the golden-fixture default every speedup is measured against; the
#: banked points separate the bank-count effect (flat latency) from the
#: open-page effect (160-cycle row hits, the GDDR CAS-only case).
CONFIGS: tuple[tuple[str, dict], ...] = (
    ("blocking", {}),
    ("mshr4", {"mshr_entries": 4}),
    ("mshr16", {"mshr_entries": 16}),
    ("mshr64", {"mshr_entries": 64}),
    ("mshr16.b8.flat", {"mshr_entries": 16, "dram_banks": 8}),
    (
        "mshr16.b8.open",
        {"mshr_entries": 16, "dram_banks": 8, "dram_row_hit_latency": 160},
    ),
)

#: Memory-diverse slice of the Table 1 suite: pure streaming (vectoradd,
#: scalarprod), blocked matmul with barriers (matrixmul, dgemm),
#: wavefront DP (needle), irregular traversal (bfs), stencil (srad),
#: table-lookup hashing (aes).
DEFAULT_BENCHMARKS: tuple[str, ...] = (
    "vectoradd",
    "scalarprod",
    "matrixmul",
    "dgemm",
    "needle",
    "bfs",
    "srad",
    "aes",
)


def _config(overrides: dict) -> SMConfig:
    return SMConfig(**overrides)


@dataclass
class MemsysRow:
    benchmark: str
    config: str
    cycles: float
    speedup: float  # blocking cycles / this config's cycles
    delta_cycles: float  # this config's cycles - blocking cycles
    merge_fraction: float  # secondary merges / all misses
    row_hit_rate: float  # row hits / decoded requests (0 when flat)
    mshr_full_cycles: float  # LSU cycles stalled on a full MSHR file


@dataclass
class MemsysResult:
    rows: list[MemsysRow]

    def format(self) -> str:
        headers = [
            "benchmark", "config", "cycles", "speedup", "dcycles",
            "merge%", "row-hit%", "mshr-full cyc",
        ]
        table = [
            [
                r.benchmark,
                r.config,
                f"{r.cycles:.0f}",
                f"{r.speedup:.3f}",
                f"{r.delta_cycles:+.0f}",
                f"{100.0 * r.merge_fraction:.1f}",
                f"{100.0 * r.row_hit_rate:.1f}",
                f"{r.mshr_full_cycles:.0f}",
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            table,
            title="Memory-system sensitivity (partitioned baseline; "
            "speedup and cycle delta vs blocking)",
        )


def jobs(benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS) -> list[Job]:
    """The sweep as independent executor jobs (one per point)."""
    return [
        Job("baseline", name, config=_config(overrides))
        for name in benchmarks
        for _, overrides in CONFIGS
    ]


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> MemsysResult:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="memsys")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        blocking = None
        for label, overrides in CONFIGS:
            r = rn.variant(_config(overrides)).baseline(name)
            if blocking is None:
                blocking = r
            # Route the comparison through the diff engine so the
            # printed speedup shares one definition with `repro
            # compare` (cycles_a / cycles_b, exact delta).
            d = diff_results(blocking, r)
            memsys = r.notes.get("memsys", {})
            mshr = memsys.get("mshr", {})
            misses = mshr.get("primary_misses", 0) + mshr.get("secondary_merges", 0)
            decoded = memsys.get("dram_row_hits", 0) + memsys.get("dram_row_misses", 0)
            rows.append(
                MemsysRow(
                    benchmark=name,
                    config=label,
                    cycles=r.cycles,
                    speedup=d["cycles"]["speedup"],
                    delta_cycles=d["cycles"]["delta"],
                    merge_fraction=(
                        mshr.get("secondary_merges", 0) / misses if misses else 0.0
                    ),
                    row_hit_rate=(
                        memsys.get("dram_row_hits", 0) / decoded if decoded else 0.0
                    ),
                    mshr_full_cycles=mshr.get("full_stall_cycles", 0.0),
                )
            )
    return MemsysResult(rows)
