"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table (numbers right-aligned)."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    grid = [[cell(v) for v in row] for row in rows]
    ncols = len(headers)
    grid = [r[:ncols] + [""] * (ncols - len(r)) for r in grid]
    widths = [
        max(len(h), *(len(r[i]) for r in grid)) if grid else len(h)
        for i, h in enumerate(headers)
    ]

    def fmt_row(cells: Sequence[str], pad: str = " ") -> str:
        out = []
        for i, c in enumerate(cells):
            if i == 0:
                out.append(c.ljust(widths[i], pad))
            else:
                out.append(c.rjust(widths[i], pad))
        return "  ".join(out)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths], pad="-"))
    lines.extend(fmt_row(r) for r in grid)
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for speedup ratios)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
