"""Reproduction scorecard: automated paper-vs-measured checks.

Runs the headline experiments and grades every qualitative claim the
reproduction must preserve (the same list the integration test suite
enforces), producing a PASS/FAIL table -- the quick answer to "did the
reproduction hold after my change?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figure7, figure8, figure9, table4, table6
from repro.experiments.executor import Executor
from repro.experiments.report import format_table
from repro.experiments.runner import Runner


@dataclass(frozen=True)
class Check:
    claim: str
    paper: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    checks: list[Check]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def score(self) -> str:
        done = sum(1 for c in self.checks if c.passed)
        return f"{done}/{len(self.checks)}"

    def format(self) -> str:
        rows = [
            [("PASS" if c.passed else "FAIL"), c.claim, c.paper, c.measured]
            for c in self.checks
        ]
        table = format_table(
            ["", "claim", "paper", "measured"],
            rows,
            title=f"Reproduction scorecard: {self.score} claims hold",
        )
        return table


def run(
    scale: str = "small",
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Scorecard:
    rn = executor.runner if executor is not None else (runner or Runner(scale))
    checks: list[Check] = []

    def check(claim: str, paper: str, measured: str, ok: bool) -> None:
        checks.append(Check(claim, paper, measured, ok))

    # Table 4 --------------------------------------------------------------
    t4 = table4.run()
    err = t4.max_relative_error()
    check("SRAM energies match Table 4", "exact", f"max err {err:.1%}", err < 0.05)

    # Figure 9 -------------------------------------------------------------
    f9 = figure9.run(runner=rn, executor=executor)
    needle = f9.row("needle").speedup
    check(
        "needle has the largest unified speedup",
        "1.71x (largest)",
        f"{needle:.2f}x",
        needle == max(r.speedup for r in f9.rows) and needle > 1.4,
    )
    check(
        "every benefit app helped or neutral",
        ">= 1.0 for all 8",
        f"min {min(r.speedup for r in f9.rows):.2f}x",
        all(r.speedup >= 0.99 for r in f9.rows),
    )
    check(
        "average benefit speedup",
        "+16.2%",
        f"{100 * (f9.mean_speedup - 1):+.1f}%",
        1.05 < f9.mean_speedup < 1.4,
    )
    check(
        "energy falls for benefit apps",
        "-2.8%..-33%",
        f"worst {max(r.energy_ratio for r in f9.rows):.2f}x",
        all(r.energy_ratio <= 1.01 for r in f9.rows),
    )

    # Figure 7 -------------------------------------------------------------
    f7 = figure7.run(runner=rn, executor=executor)
    worst = max(f7.rows, key=lambda r: abs(r.perf_ratio - 1.0))
    check(
        "no-benefit apps unaffected",
        "within 1%",
        f"worst {worst.name} {worst.perf_ratio:.2f}x",
        all(0.95 <= r.perf_ratio <= 1.06 for r in f7.rows),
    )

    # Figure 8 -------------------------------------------------------------
    f8 = figure8.run(runner=rn, executor=executor)
    check(
        "bfs allocates the smallest RF",
        "36 KB",
        f"{f8.row('bfs').rf_kb:.0f} KB",
        abs(f8.row("bfs").rf_kb - 36) < 1,
    )
    check(
        "dgemm allocates the largest RF",
        "228 KB",
        f"{f8.row('dgemm').rf_kb:.0f} KB",
        abs(f8.row("dgemm").rf_kb - 228) < 1,
    )

    # Table 6 --------------------------------------------------------------
    t6 = table6.run(runner=rn, executor=executor)
    check(
        "128 KB hurts register-heavy apps",
        "dgemm 0.77x",
        f"dgemm {t6.row('dgemm').perf[0]:.2f}x",
        t6.row("dgemm").perf[0] < 1.0,
    )
    needle6 = t6.row("needle").perf
    check(
        "needle peaks at 256 KB",
        "1.75 > 1.71",
        f"{needle6[1]:.2f} vs {needle6[2]:.2f}",
        needle6[1] >= needle6[2],
    )
    nb = t6.row("no-benefit avg").energy
    check(
        "no-benefit energy lowest at 128 KB",
        "0.93 < 0.96 < 1.00",
        " < ".join(f"{e:.2f}" for e in nb),
        nb[0] == min(nb),
    )
    return Scorecard(checks)
