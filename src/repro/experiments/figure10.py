"""Figure 10: Fermi-like limited flexibility vs the partitioned baseline.

The Fermi-like design keeps a fixed 256 KB register file and lets the
programmer choose 96/32 or 32/96 KB between shared memory and cache
(Section 6.3).  We simulate both splits per benchmark and keep the
faster (the choice a tuned application would make), then normalise to
the partitioned baseline.  Paper: gains of 1%..20%, consistently below
the fully unified design except for gpu-mummer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET


@dataclass(frozen=True)
class Figure10Row:
    name: str
    speedup: float
    energy_ratio: float
    dram_ratio: float
    chosen_smem_kb: float
    chosen_cache_kb: float


@dataclass
class Figure10Result:
    rows: list[Figure10Row]

    def row(self, name: str) -> Figure10Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_speedup(self) -> float:
        return geomean([r.speedup for r in self.rows])

    def format(self) -> str:
        headers = ["benchmark", "speedup", "energy", "DRAM", "smem KB", "cache KB"]
        rows = [
            [
                r.name,
                r.speedup,
                r.energy_ratio,
                r.dram_ratio,
                r.chosen_smem_kb,
                r.chosen_cache_kb,
            ]
            for r in self.rows
        ]
        rows.append(["geomean", self.mean_speedup, "", "", "", ""])
        return format_table(
            headers, rows, title="Figure 10: Fermi-like (384KB) vs partitioned"
        )


def jobs(benchmarks: tuple[str, ...] = BENEFIT_SET) -> list[Job]:
    """The sweep as independent executor jobs (two per benchmark)."""
    out = []
    for name in benchmarks:
        out.append(Job("baseline", name))
        out.append(Job("fermi", name))
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure10Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="figure10")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        base = rn.baseline(name)
        fermi = rn.fermi_best(name)
        e_base = rn.priced(base).energy
        e_fermi = rn.priced(fermi, baseline=base).energy
        rows.append(
            Figure10Row(
                name=name,
                speedup=fermi.speedup_over(base),
                energy_ratio=e_fermi.total_j / e_base.total_j,
                dram_ratio=fermi.dram_traffic_ratio(base),
                chosen_smem_kb=fermi.partition.smem_kb,
                chosen_cache_kb=fermi.partition.cache_kb,
            )
        )
    return Figure10Result(rows)
