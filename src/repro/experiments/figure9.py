"""Figure 9: unified vs partitioned for the benefit applications.

Performance (higher is better), chip energy (lower is better), and DRAM
traffic (lower is better) of the 384 KB unified design -- partitioned by
the Section 4.5 algorithm -- normalised to the equal-capacity
partitioned baseline.  Paper: speedups of 4.2%..70.8% (average 16.2%),
DRAM reductions up to 32%, energy reductions of 2.8%..33%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, get_benchmark


@dataclass(frozen=True)
class Figure9Row:
    name: str
    speedup: float
    energy_ratio: float
    dram_ratio: float
    paper_speedup: float
    rf_kb: float
    smem_kb: float
    cache_kb: float
    threads: int


@dataclass
class Figure9Result:
    rows: list[Figure9Row]

    def row(self, name: str) -> Figure9Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_speedup(self) -> float:
        return geomean([r.speedup for r in self.rows])

    def format(self) -> str:
        headers = [
            "benchmark",
            "speedup",
            "paper",
            "energy",
            "DRAM",
            "RF KB",
            "smem KB",
            "cache KB",
            "threads",
        ]
        rows = [
            [
                r.name,
                r.speedup,
                r.paper_speedup,
                r.energy_ratio,
                r.dram_ratio,
                r.rf_kb,
                r.smem_kb,
                r.cache_kb,
                r.threads,
            ]
            for r in self.rows
        ]
        rows.append(["geomean", self.mean_speedup, "", "", "", "", "", "", ""])
        return format_table(
            headers,
            rows,
            title="Figure 9: unified (384KB) vs partitioned, benefit applications",
        )


def jobs(benchmarks: tuple[str, ...] = BENEFIT_SET) -> list[Job]:
    """The sweep as independent executor jobs (two per benchmark)."""
    out = []
    for name in benchmarks:
        out.append(Job("baseline", name))
        out.append(Job("unified", name, total_kb=384))
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure9Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="figure9")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        base = rn.baseline(name)
        uni, alloc = rn.unified(name, total_kb=384)
        e_base = rn.priced(base).energy
        e_uni = rn.priced(uni, baseline=base).energy
        rows.append(
            Figure9Row(
                name=name,
                speedup=uni.speedup_over(base),
                energy_ratio=e_uni.total_j / e_base.total_j,
                dram_ratio=uni.dram_traffic_ratio(base),
                paper_speedup=get_benchmark(name).paper_speedup_384,
                rf_kb=alloc.partition.rf_kb,
                smem_kb=alloc.partition.smem_kb,
                cache_kb=alloc.partition.cache_kb,
                threads=alloc.resident_threads,
            )
        )
    return Figure9Result(rows)
