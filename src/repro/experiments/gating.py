"""Power-gating unused unified memory (paper Section 8, future work).

"We explore the sensitivity to unified memory capacity and find that
many benchmarks achieve energy savings with smaller capacity unified
memory.  Future systems could exploit this fact by disabling unneeded
memory."

This experiment implements that suggestion: the SM is built with 384 KB
of unified memory, but before each kernel the system power-gates every
bank row beyond what the kernel's best-energy capacity needs.  Gated
capacity stops leaking; performance equals running at the chosen
capacity.  We sweep capacities per benchmark, pick the minimum-energy
point, and compare three operating modes:

* ``partitioned`` -- the 256/64/64 baseline (full 384 KB leaking);
* ``unified-384`` -- the paper's headline design (full 384 KB leaking);
* ``unified-gated`` -- unified with unneeded capacity switched off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AllocationError
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, NO_BENEFIT_SET

CAPACITY_GRID_KB = (96, 128, 160, 192, 224, 256, 320, 384)


@dataclass(frozen=True)
class GatingRow:
    name: str
    chosen_kb: int
    unified_energy: float  # unified-384 energy vs baseline
    gated_energy: float  # unified-gated energy vs baseline
    gated_perf: float  # performance vs baseline at the gated capacity


@dataclass
class GatingResult:
    rows: list[GatingRow]

    def row(self, name: str) -> GatingRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_gated_energy(self) -> float:
        return geomean([r.gated_energy for r in self.rows])

    @property
    def mean_unified_energy(self) -> float:
        return geomean([r.unified_energy for r in self.rows])

    def format(self) -> str:
        headers = ["benchmark", "gate to KB", "E unified", "E gated", "perf gated"]
        rows = [
            [r.name, r.chosen_kb, r.unified_energy, r.gated_energy, r.gated_perf]
            for r in self.rows
        ]
        rows.append(
            ["geomean", "", self.mean_unified_energy, self.mean_gated_energy, ""]
        )
        return format_table(
            headers,
            rows,
            title="Power-gating unneeded unified memory (Section 8 extension)",
        )


def jobs(
    benchmarks: tuple[str, ...] = BENEFIT_SET + NO_BENEFIT_SET,
    capacities_kb: tuple[int, ...] = CAPACITY_GRID_KB,
) -> list[Job]:
    """The sweep as independent executor jobs (baseline + each capacity)."""
    out = []
    for name in benchmarks:
        out.append(Job("baseline", name))
        out.append(Job("unified", name, total_kb=384))
        out.extend(Job("unified", name, total_kb=cap) for cap in capacities_kb)
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET + NO_BENEFIT_SET,
    capacities_kb: tuple[int, ...] = CAPACITY_GRID_KB,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> GatingResult:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks, capacities_kb), label="gating")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        base = rn.baseline(name)
        e_base = rn.priced(base).energy.total_j
        uni384, _ = rn.unified(name, total_kb=384)
        e_uni = rn.priced(uni384, baseline=base).energy.total_j
        best_kb, best_energy, best_perf = None, None, None
        for cap in capacities_kb:
            try:
                result, _ = rn.unified(name, total_kb=cap)
            except AllocationError:
                continue
            # Gating: only the enabled capacity leaks, so the priced
            # partition (capacity ``cap``) is exactly the gated SM.
            e = rn.priced(result, baseline=base).energy.total_j
            if best_energy is None or e < best_energy:
                best_kb, best_energy = cap, e
                best_perf = result.speedup_over(base)
        rows.append(
            GatingRow(
                name=name,
                chosen_kb=best_kb,
                unified_energy=e_uni / e_base,
                gated_energy=best_energy / e_base,
                gated_perf=best_perf,
            )
        )
    return GatingResult(rows)
