"""Table 4: SRAM bank access energies, partitioned vs unified.

Checks our CACTI-substitute power-law fit against the paper's published
per-access energies and derives the values for the design points the
paper discusses (2 KB shared/cache banks, 8 KB MRF banks, 12 KB unified
banks, plus the Fermi-like 4 KB pool banks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import TABLE4_POINTS, bank_energy
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Table4Row:
    structure: str
    bank_kb: float
    read_pj: float
    write_pj: float
    paper_read_pj: float | None
    paper_write_pj: float | None


@dataclass
class Table4Result:
    rows: list[Table4Row]

    def max_relative_error(self) -> float:
        errs = []
        for r in self.rows:
            if r.paper_read_pj:
                errs.append(abs(r.read_pj - r.paper_read_pj) / r.paper_read_pj)
            if r.paper_write_pj:
                errs.append(abs(r.write_pj - r.paper_write_pj) / r.paper_write_pj)
        return max(errs) if errs else 0.0

    def format(self) -> str:
        headers = ["structure", "bank KB", "read pJ", "write pJ", "paper R", "paper W"]
        rows = [
            [
                r.structure,
                r.bank_kb,
                r.read_pj,
                r.write_pj,
                r.paper_read_pj if r.paper_read_pj is not None else "-",
                r.paper_write_pj if r.paper_write_pj is not None else "-",
            ]
            for r in self.rows
        ]
        return format_table(headers, rows, title="Table 4: SRAM bank access energy")


_STRUCTURES = [
    ("64KB shared/cache (partitioned)", 2.0),
    ("128KB pool (Fermi-like)", 4.0),
    ("256KB RF (partitioned)", 8.0),
    ("384KB unified", 12.0),
    ("256KB unified", 8.0),
    ("128KB unified", 4.0),
]


def run() -> Table4Result:
    published = {kb: (r, w) for kb, r, w in TABLE4_POINTS}
    rows = []
    for label, kb in _STRUCTURES:
        pub = published.get(kb, (None, None))
        rows.append(
            Table4Row(
                structure=label,
                bank_kb=kb,
                read_pj=bank_energy(kb),
                write_pj=bank_energy(kb, write=True),
                paper_read_pj=pub[0],
                paper_write_pj=pub[1],
            )
        )
    return Table4Result(rows)
