"""Table 6: performance and energy across unified memory capacities.

Evaluates the unified design at 128, 256, and 384 KB total capacity,
normalised to the 384 KB partitioned baseline, for the benefit set plus
the average of the no-benefit (Figure 7) set.  Paper findings we check:
register-heavy benchmarks (dgemm, pcr) are *hurt* at 128 KB (0.77x),
performance generally peaks at 384 KB, and the no-benefit set sees its
lowest energy at 128 KB (less SRAM leaking).

When a kernel cannot fit even one CTA at a capacity (the Section 4.5
allocator refuses), we fall back to the spilled configuration: the
register budget is shrunk until the CTA fits, spill code and all --
matching how a real system would still run the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AllocationError, allocate_unified
from repro.core.partition import KB
from repro.experiments.executor import Executor, Job, register_job_kind
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, NO_BENEFIT_SET, get_benchmark

CAPACITIES_KB = (128, 256, 384)


@dataclass(frozen=True)
class Table6Row:
    name: str
    perf: tuple[float, ...]  # per capacity, normalised to baseline
    energy: tuple[float, ...]
    paper_perf: tuple[float, float, float] | None
    paper_energy: tuple[float, float, float] | None


@dataclass
class Table6Result:
    rows: list[Table6Row]

    def row(self, name: str) -> Table6Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def format(self) -> str:
        headers = [
            "benchmark",
            *(f"perf@{c}K" for c in CAPACITIES_KB),
            *(f"E@{c}K" for c in CAPACITIES_KB),
        ]
        rows = []
        for r in self.rows:
            rows.append([r.name, *r.perf, *r.energy])
            if r.paper_perf:
                rows.append([f"{r.name} (paper)", *r.paper_perf, *r.paper_energy])
        return format_table(
            headers,
            rows,
            title="Table 6: unified capacity sensitivity (vs 384KB partitioned)",
        )


def _spilled_allocation(runner: Runner, name: str, total_bytes: int):
    """Shrink the register budget until one CTA fits, inserting spills."""
    ck = runner.summary(name)
    tpc = ck.threads_per_cta
    smem = ck.smem_bytes_per_cta
    regs = ck.max_live
    while regs > 4:
        regs -= 1
        try:
            alloc = allocate_unified(
                total_bytes, regs_per_thread=regs, threads_per_cta=tpc,
                smem_bytes_per_cta=smem,
            )
        except AllocationError:
            continue
        return regs, alloc
    raise AllocationError(f"{name} cannot fit {total_bytes} bytes at any register budget")


@register_job_kind("table6-point")
def _point_job(rn: Runner, job: Job) -> None:
    """One (benchmark, capacity) cell including the spilled fallback."""
    try:
        rn.unified(job.benchmark, total_kb=job.total_kb)
    except AllocationError:
        regs, alloc = _spilled_allocation(rn, job.benchmark, job.total_kb * KB)
        rn.simulate(job.benchmark, alloc.partition, regs=regs)


def jobs(
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    no_benefit: tuple[str, ...] = NO_BENEFIT_SET,
) -> list[Job]:
    """The sweep as independent executor jobs (1 + len(capacities) each)."""
    out = []
    for name in benchmarks + no_benefit:
        out.append(Job("baseline", name))
        out.extend(
            Job("table6-point", name, total_kb=cap) for cap in CAPACITIES_KB
        )
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENEFIT_SET,
    no_benefit: tuple[str, ...] = NO_BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Table6Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks, no_benefit), label="table6")
    else:
        rn = runner or Runner(scale)
    rows: list[Table6Row] = []

    def evaluate(name: str) -> tuple[list[float], list[float]]:
        base = rn.baseline(name)
        e_base = rn.priced(base).energy
        perf, energy = [], []
        for cap in CAPACITIES_KB:
            try:
                result, _ = rn.unified(name, total_kb=cap)
            except AllocationError:
                regs, alloc = _spilled_allocation(rn, name, cap * KB)
                result = rn.simulate(name, alloc.partition, regs=regs)
            e = rn.priced(result, baseline=base).energy
            perf.append(result.speedup_over(base))
            energy.append(e.total_j / e_base.total_j)
        return perf, energy

    for name in benchmarks:
        bm = get_benchmark(name)
        perf, energy = evaluate(name)
        rows.append(
            Table6Row(
                name=name,
                perf=tuple(perf),
                energy=tuple(energy),
                paper_perf=bm.paper_table6_perf,
                paper_energy=bm.paper_table6_energy,
            )
        )
    if no_benefit:
        all_perf = []
        all_energy = []
        for name in no_benefit:
            p, e = evaluate(name)
            all_perf.append(p)
            all_energy.append(e)
        rows.append(
            Table6Row(
                name="no-benefit avg",
                perf=tuple(
                    geomean([p[i] for p in all_perf]) for i in range(len(CAPACITIES_KB))
                ),
                energy=tuple(
                    geomean([e[i] for e in all_energy]) for i in range(len(CAPACITIES_KB))
                ),
                paper_perf=(0.99, 1.00, 1.00),
                paper_energy=(0.93, 0.96, 1.00),
            )
        )
    return Table6Result(rows)
