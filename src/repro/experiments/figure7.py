"""Figure 7: unified vs partitioned for applications with no benefit.

Simulates the 18 no-benefit benchmarks under the partitioned baseline
and under the 384 KB unified design partitioned by the Section 4.5
algorithm, then compares performance and chip energy.  The paper's
finding: every change stays within ~1%, i.e. unification's overheads
(larger banks, arbitration conflicts) are negligible even for apps that
gain nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner
from repro.kernels import NO_BENEFIT_SET
from repro.obs.compare import diff_results


@dataclass(frozen=True)
class Figure7Row:
    name: str
    perf_ratio: float  # unified / partitioned performance (1.0 = equal)
    energy_ratio: float  # unified / partitioned energy (lower is better)
    delta_cycles: float = 0.0  # unified cycles - partitioned cycles
    top_shift: str = ""  # dominant stall-cause delta, e.g. "bank_conflict +12"


@dataclass
class Figure7Result:
    rows: list[Figure7Row]

    def row(self, name: str) -> Figure7Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_perf(self) -> float:
        return geomean([r.perf_ratio for r in self.rows])

    @property
    def mean_energy(self) -> float:
        return geomean([r.energy_ratio for r in self.rows])

    def format(self) -> str:
        headers = ["benchmark", "perf (uni/part)", "energy (uni/part)",
                   "dcycles", "top stall shift"]
        rows = [
            [r.name, r.perf_ratio, r.energy_ratio,
             f"{r.delta_cycles:+.0f}", r.top_shift or "-"]
            for r in self.rows
        ]
        rows.append(["geomean", self.mean_perf, self.mean_energy, "", ""])
        return format_table(
            headers,
            rows,
            title="Figure 7: unified (384KB) vs partitioned, no-benefit applications",
        )


def jobs(benchmarks: tuple[str, ...] = NO_BENEFIT_SET) -> list[Job]:
    """The sweep as independent executor jobs (two per benchmark)."""
    out = []
    for name in benchmarks:
        out.append(Job("baseline", name))
        out.append(Job("unified", name, total_kb=384))
    return out


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = NO_BENEFIT_SET,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure7Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="figure7")
    else:
        rn = runner or Runner(scale)
    rows = []
    for name in benchmarks:
        base = rn.baseline(name)
        uni, _ = rn.unified(name, total_kb=384)
        e_base = rn.priced(base).energy
        e_uni = rn.priced(uni, baseline=base).energy
        # Attribute the (tiny) perf delta through the diff engine: the
        # ratio is speedup_over's, and when stall attribution is live
        # the dominant shifted cause names *why* unification cost or
        # saved those cycles.
        d = diff_results(base, uni)
        shifted = [a for a in d.get("attribution", []) if a["delta"]]
        rows.append(
            Figure7Row(
                name=name,
                perf_ratio=d["cycles"]["speedup"],
                energy_ratio=e_uni.total_j / e_base.total_j,
                delta_cycles=d["cycles"]["delta"],
                top_shift=(
                    f"{shifted[0]['cause']} {shifted[0]['delta']:+.0f}"
                    if shifted
                    else ""
                ),
            )
        )
    return Figure7Result(rows)
