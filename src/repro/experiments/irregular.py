"""Extension study: unified memory for emerging irregular workloads.

The paper's closing argument (Sections 1, 8) is that flexible
partitioning "broadens the scope of applications that GPUs can
efficiently execute", pointing at irregular workloads that the tuned
CUDA suites do not represent.  This experiment runs the emulator-traced
irregular suite (:mod:`repro.kernels.irregular`) through the standard
comparison: every workload uses few registers and no scratchpad, so the
Section 4.5 allocator converts almost the whole 384 KB pool into cache
-- the adaptation a hard-partitioned design cannot make.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import compile_kernel
from repro.core import allocate_unified, partitioned_baseline
from repro.core.partition import KB
from repro.energy import EnergyModel
from repro.experiments.report import format_table, geomean
from repro.kernels.irregular import all_irregular
from repro.sm import simulate


@dataclass(frozen=True)
class IrregularRow:
    name: str
    irregularity: str
    regs_per_thread: int
    speedup: float
    energy_ratio: float
    dram_ratio: float
    unified_cache_kb: float


@dataclass
class IrregularResult:
    rows: list[IrregularRow]

    def row(self, name: str) -> IrregularRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def mean_speedup(self) -> float:
        return geomean([r.speedup for r in self.rows])

    def format(self) -> str:
        headers = ["workload", "regs", "speedup", "energy", "DRAM", "cache KB"]
        rows = [
            [
                r.name,
                r.regs_per_thread,
                r.speedup,
                r.energy_ratio,
                r.dram_ratio,
                r.unified_cache_kb,
            ]
            for r in self.rows
        ]
        rows.append(["geomean", "", self.mean_speedup, "", "", ""])
        table = format_table(
            headers,
            rows,
            title="Extension: irregular workloads, unified (384KB) vs partitioned",
        )
        notes = "\n".join(
            f"  {r.name}: {r.irregularity}" for r in self.rows
        )
        return f"{table}\n{notes}"


def run(scale: str = "small", workloads: tuple[str, ...] | None = None) -> IrregularResult:
    model = EnergyModel()
    rows = []
    for w in all_irregular():
        if workloads is not None and w.name not in workloads:
            continue
        trace = w.build(scale)
        kernel = compile_kernel(trace)
        base = simulate(kernel, partitioned_baseline())
        alloc = allocate_unified(
            384 * KB,
            regs_per_thread=kernel.regs_per_thread,
            threads_per_cta=trace.launch.threads_per_cta,
            smem_bytes_per_cta=trace.launch.smem_bytes_per_cta,
        )
        uni = simulate(kernel, alloc.partition)
        e_base = model.evaluate(base).total_j
        e_uni = model.evaluate(uni, baseline_cycles=base.cycles).total_j
        rows.append(
            IrregularRow(
                name=w.name,
                irregularity=w.irregularity,
                regs_per_thread=kernel.regs_per_thread,
                speedup=uni.speedup_over(base),
                energy_ratio=e_uni / e_base,
                dram_ratio=uni.dram_traffic_ratio(base),
                unified_cache_kb=alloc.partition.cache_kb,
            )
        )
    return IrregularResult(rows)
