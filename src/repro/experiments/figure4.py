"""Figure 4: performance as a function of cache capacity.

Benchmarks: bfs, pcr, gpu-mummer, needle.  Each line fixes the resident
thread count (256..1024); each point raises the cache capacity
(32..512 KB).  The register file eliminates spills and shared memory is
unbounded (Section 3.3.3).  Performance is normalised to the (512 KB,
1024 threads) point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.sm.cta_scheduler import LaunchError

BENCHMARKS = ("bfs", "pcr", "gpu-mummer", "needle")
THREAD_LINES = (256, 512, 768, 1024)
CACHE_POINTS_KB = (32, 64, 128, 256, 512)
UNBOUNDED_SMEM_KB = 512


@dataclass(frozen=True)
class Figure4Point:
    benchmark: str
    threads: int
    cache_kb: int
    normalized_perf: float
    dram_accesses: int


@dataclass
class Figure4Result:
    points: list[Figure4Point]

    def line(self, benchmark: str, threads: int) -> list[Figure4Point]:
        return [
            p for p in self.points if p.benchmark == benchmark and p.threads == threads
        ]

    def format(self) -> str:
        headers = ["benchmark", "threads", *(f"{c}KB" for c in CACHE_POINTS_KB)]
        rows = []
        for b in BENCHMARKS:
            for t in THREAD_LINES:
                line = self.line(b, t)
                if line:
                    rows.append([b, t, *(p.normalized_perf for p in line)])
        return format_table(
            headers, rows, title="Figure 4: performance vs cache capacity"
        )


def jobs(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    thread_lines: tuple[int, ...] = THREAD_LINES,
) -> list[Job]:
    """The sweep as independent executor jobs (one per grid point)."""
    return [
        Job(
            "partition",
            name,
            partition=partitioned_design(256, UNBOUNDED_SMEM_KB, cache_kb),
            thread_target=threads,
        )
        for name in benchmarks
        for threads in thread_lines
        for cache_kb in CACHE_POINTS_KB
    ]


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENCHMARKS,
    thread_lines: tuple[int, ...] = THREAD_LINES,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure4Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks, thread_lines), label="figure4")
    else:
        rn = runner or Runner(scale)
    points: list[Figure4Point] = []
    for name in benchmarks:
        cycles: dict[tuple[int, int], float] = {}
        for threads in thread_lines:
            for cache_kb in CACHE_POINTS_KB:
                part = partitioned_design(256, UNBOUNDED_SMEM_KB, cache_kb)
                try:
                    r = rn.simulate(name, part, thread_target=threads)
                except (LaunchError, ValueError):
                    continue
                cycles[(threads, cache_kb)] = r.cycles
                points.append(
                    Figure4Point(name, threads, cache_kb, r.cycles, r.dram_accesses)
                )
        base = cycles.get((max(thread_lines), CACHE_POINTS_KB[-1]))
        if base:
            for i, p in enumerate(points):
                if p.benchmark == name:
                    points[i] = Figure4Point(
                        p.benchmark,
                        p.threads,
                        p.cache_kb,
                        base / p.normalized_perf,
                        p.dram_accesses,
                    )
    return Figure4Result(points)
