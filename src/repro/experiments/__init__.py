"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(scale=..., ...) -> <Result>`` whose result
object carries ``rows()`` (machine-readable) and ``format()`` (the
pretty table printed by the benchmark harness), plus the corresponding
paper values for side-by-side comparison where the paper publishes
numbers.

========== ========================================================
Module      Reproduces
========== ========================================================
table1      Workload characterisation (registers, spills, shared
            memory, DRAM accesses vs cache size)
figure2     Performance vs register file capacity (4 benchmarks)
figure3     Performance vs shared memory capacity (4 benchmarks)
figure4     Performance vs cache capacity (4 benchmarks)
table4      SRAM bank access energies
table5      Bank-conflict breakdown, partitioned vs unified
figure7     Unified vs partitioned, no-benefit applications
figure8     Chosen 384 KB partitionings (benefit applications)
figure9     Unified vs partitioned: perf / energy / DRAM traffic
figure10    Fermi-like limited flexibility vs partitioned
table6      Capacity sensitivity: 128 / 256 / 384 KB unified
figure11    Needle blocking-factor tuning
========== ========================================================

The shared machinery lives in :mod:`repro.experiments.runner`
(simulate-and-price with per-benchmark caching) and
:mod:`repro.experiments.report` (table formatting).
"""

from repro.experiments.runner import BenchmarkRun, Runner

__all__ = ["BenchmarkRun", "Runner"]
