"""Figure 3: performance versus shared memory capacity.

Benchmarks: needle, pcr, lu, sto.  Points along each benchmark's line
raise the resident thread count (256..1024, CTA-granular); the shared
memory is sized to exactly what that residency needs, the register file
eliminates spills, and the cache is fixed at 64 KB (Section 3.3.2).
Performance is normalised to the 1024-thread point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.experiments.executor import Executor, Job
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.sm.cta_scheduler import LaunchError

BENCHMARKS = ("needle", "pcr", "lu", "sto")
THREAD_POINTS = (256, 512, 768, 1024)


@dataclass(frozen=True)
class Figure3Point:
    benchmark: str
    threads: int
    smem_kb: float
    normalized_perf: float


@dataclass
class Figure3Result:
    points: list[Figure3Point]

    def line(self, benchmark: str) -> list[Figure3Point]:
        return [p for p in self.points if p.benchmark == benchmark]

    def format(self) -> str:
        headers = ["benchmark", *(f"{t} thr" for t in THREAD_POINTS)]
        rows = []
        for b in BENCHMARKS:
            line = self.line(b)
            if line:
                rows.append([b, *(p.normalized_perf for p in line)])
        smem = [
            [f"{b} smem KB", *(p.smem_kb for p in self.line(b))] for b in BENCHMARKS
        ]
        return format_table(
            headers,
            rows + smem,
            title="Figure 3: performance vs shared memory capacity",
        )


def _grid(rn: Runner, name: str):
    """(threads, smem_kb, partition) points for one benchmark's line."""
    ck = rn.summary(name)
    for threads in THREAD_POINTS:
        ctas = max(1, threads // ck.threads_per_cta)
        smem_kb = max(1, -(-ctas * ck.smem_bytes_per_cta // 1024))
        yield threads, smem_kb, partitioned_design(256, smem_kb, 64)


def jobs(runner: Runner, benchmarks: tuple[str, ...] = BENCHMARKS) -> list[Job]:
    """The sweep as independent executor jobs (one per grid point)."""
    return [
        Job("partition", name, partition=part, thread_target=threads)
        for name in benchmarks
        for threads, _, part in _grid(runner, name)
    ]


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENCHMARKS,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Figure3Result:
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(rn, benchmarks), label="figure3")
    else:
        rn = runner or Runner(scale)
    points: list[Figure3Point] = []
    for name in benchmarks:
        cycles: dict[int, float] = {}
        for threads, smem_kb, part in _grid(rn, name):
            try:
                r = rn.simulate(name, part, thread_target=threads)
            except (LaunchError, ValueError):
                continue
            cycles[threads] = r.cycles
            points.append(Figure3Point(name, threads, smem_kb, r.cycles))
        base = cycles.get(THREAD_POINTS[-1])
        if base:
            for i, p in enumerate(points):
                if p.benchmark == name:
                    points[i] = Figure3Point(
                        p.benchmark, p.threads, p.smem_kb, base / p.normalized_perf
                    )
    return Figure3Result(points)
