"""Figure 3: performance versus shared memory capacity.

Benchmarks: needle, pcr, lu, sto.  Points along each benchmark's line
raise the resident thread count (256..1024, CTA-granular); the shared
memory is sized to exactly what that residency needs, the register file
eliminates spills, and the cache is fixed at 64 KB (Section 3.3.2).
Performance is normalised to the 1024-thread point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.sm.cta_scheduler import LaunchError

BENCHMARKS = ("needle", "pcr", "lu", "sto")
THREAD_POINTS = (256, 512, 768, 1024)


@dataclass(frozen=True)
class Figure3Point:
    benchmark: str
    threads: int
    smem_kb: float
    normalized_perf: float


@dataclass
class Figure3Result:
    points: list[Figure3Point]

    def line(self, benchmark: str) -> list[Figure3Point]:
        return [p for p in self.points if p.benchmark == benchmark]

    def format(self) -> str:
        headers = ["benchmark", *(f"{t} thr" for t in THREAD_POINTS)]
        rows = []
        for b in BENCHMARKS:
            line = self.line(b)
            if line:
                rows.append([b, *(p.normalized_perf for p in line)])
        smem = [
            [f"{b} smem KB", *(p.smem_kb for p in self.line(b))] for b in BENCHMARKS
        ]
        return format_table(
            headers,
            rows + smem,
            title="Figure 3: performance vs shared memory capacity",
        )


def run(
    scale: str = "small",
    benchmarks: tuple[str, ...] = BENCHMARKS,
    runner: Runner | None = None,
) -> Figure3Result:
    rn = runner or Runner(scale)
    points: list[Figure3Point] = []
    for name in benchmarks:
        trace = rn.trace(name)
        tpc = trace.launch.threads_per_cta
        smem_per_cta = trace.launch.smem_bytes_per_cta
        cycles: dict[int, float] = {}
        for threads in THREAD_POINTS:
            ctas = max(1, threads // tpc)
            smem_kb = max(1, -(-ctas * smem_per_cta // 1024))
            part = partitioned_design(256, smem_kb, 64)
            try:
                r = rn.simulate(name, part, thread_target=threads)
            except (LaunchError, ValueError):
                continue
            cycles[threads] = r.cycles
            points.append(Figure3Point(name, threads, smem_kb, r.cycles))
        base = cycles.get(THREAD_POINTS[-1])
        if base:
            for i, p in enumerate(points):
                if p.benchmark == name:
                    points[i] = Figure3Point(
                        p.benchmark, p.threads, p.smem_kb, base / p.normalized_perf
                    )
    return Figure3Result(points)
