"""Table 1: workload characterisation.

For every benchmark: registers/thread to avoid spills, dynamic
instruction overhead at 18/24/32/40/64 registers, the register file
capacity needed for full occupancy, shared memory per thread, and
normalised DRAM accesses with a 0 / 64 KB / 256 KB cache (256 KB is the
normalisation base, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import partitioned_design
from repro.core.partition import MAX_THREADS
from repro.experiments.executor import Executor, Job, register_job_kind
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.kernels import all_benchmarks

#: Register budgets of Table 1 columns 3-7.
REG_BUDGETS = (18, 24, 32, 40, 64)
#: Cache capacities of columns 10-12 (KB); the last is the base.
CACHE_POINTS_KB = (0, 64, 256)
#: "Unbounded" shared memory for the cache study (Section 3.3.3).
UNBOUNDED_SMEM_KB = 512


@dataclass(frozen=True)
class Table1Row:
    name: str
    regs_per_thread: int
    spill_overhead: tuple[float, ...]  # dynamic instr ratio per REG_BUDGETS
    rf_full_occupancy_kb: float
    smem_bytes_per_thread: float
    dram_normalized: tuple[float, ...]  # per CACHE_POINTS_KB
    paper_regs: int
    paper_smem: float
    paper_dram: tuple[float, float]


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def row(self, name: str) -> Table1Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def format(self) -> str:
        headers = [
            "benchmark",
            "regs",
            *(f"I@{r}" for r in REG_BUDGETS),
            "RF(KB)",
            "smem B/t",
            *(f"DRAM@{c}K" for c in CACHE_POINTS_KB),
            "regs(paper)",
            "smem(paper)",
        ]
        data = [
            [
                r.name,
                r.regs_per_thread,
                *r.spill_overhead,
                r.rf_full_occupancy_kb,
                r.smem_bytes_per_thread,
                *r.dram_normalized,
                r.paper_regs,
                r.paper_smem,
            ]
            for r in self.rows
        ]
        return format_table(headers, data, title="Table 1: workload characteristics")


@register_job_kind("table1-row")
def _row_job(rn: Runner, job: Job) -> None:
    """Everything one benchmark's row needs: compiles plus cache sims."""
    regs = rn.summary(job.benchmark).max_live
    for budget in REG_BUDGETS:
        if budget < regs:
            rn.summary(job.benchmark, regs=budget)
    for cache_kb in CACHE_POINTS_KB:
        rn.simulate(
            job.benchmark, partitioned_design(256, UNBOUNDED_SMEM_KB, cache_kb)
        )


def jobs(benchmarks: list[str] | None = None) -> list[Job]:
    """One composite job per benchmark row (rows are independent)."""
    return [
        Job("table1-row", bm.name)
        for bm in all_benchmarks()
        if benchmarks is None or bm.name in benchmarks
    ]


def run(
    scale: str = "small",
    benchmarks: list[str] | None = None,
    runner: Runner | None = None,
    executor: Executor | None = None,
) -> Table1Result:
    """Regenerate Table 1 (optionally for a subset of benchmarks)."""
    if executor is not None:
        rn = executor.runner
        executor.prime(jobs(benchmarks), label="table1")
    else:
        rn = runner or Runner(scale)
    rows: list[Table1Row] = []
    for bm in all_benchmarks():
        if benchmarks is not None and bm.name not in benchmarks:
            continue
        base_ck = rn.summary(bm.name)
        regs = base_ck.max_live
        overheads = []
        for budget in REG_BUDGETS:
            if budget >= regs:
                overheads.append(1.0)
            else:
                ck = rn.summary(bm.name, regs=budget)
                overheads.append(ck.total_ops / base_ck.total_ops)
        dram = []
        for cache_kb in CACHE_POINTS_KB:
            part = partitioned_design(256, UNBOUNDED_SMEM_KB, cache_kb)
            dram.append(rn.simulate(bm.name, part).dram_accesses)
        base_dram = dram[-1] or 1
        rows.append(
            Table1Row(
                name=bm.name,
                regs_per_thread=regs,
                spill_overhead=tuple(overheads),
                rf_full_occupancy_kb=regs * 4 * MAX_THREADS / 1024,
                smem_bytes_per_thread=base_ck.smem_bytes_per_thread,
                dram_normalized=tuple(d / base_dram for d in dram),
                paper_regs=bm.paper_regs,
                paper_smem=bm.paper_smem_bytes_per_thread,
                paper_dram=bm.paper_dram,
            )
        )
    return Table1Result(rows)
