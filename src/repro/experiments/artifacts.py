"""Persistent, content-addressed artifact cache for experiment sweeps.

The expensive artefacts of this pipeline are kernel traces (the
Ocelot-equivalent step) and simulation results.  Both are pure functions
of their inputs -- a trace of (benchmark, scale, build params), a
simulation of (trace, register budget, partition, thread target, SM
config) -- so they can be cached on disk, shared between worker
processes, and reused across runs.

Layout under the cache root::

    traces/<sha256>.npz    -- via :mod:`repro.isa.io`
    results/<sha256>.json  -- via :mod:`repro.sm.serialize`
    meta/<sha256>.json     -- small JSON artefacts (compile summaries,
                              unified allocations)
    manifests/run-*.json   -- provenance records of the runs that wrote
                              here (:mod:`repro.obs.manifest`); named by
                              timestamp + digest, never looked up by key
    spans/spans-*.json     -- executor span logs (:mod:`repro.obs.spans`)
                              plus an ``index.json`` listing them; like
                              manifests, append-only provenance

Keys are canonical JSON renderings of plain-data tuples hashed with
SHA-256, and every key embeds the relevant format version
(:data:`repro.isa.io.FORMAT_VERSION`,
:data:`repro.sm.serialize.RESULT_FORMAT_VERSION`), so a format bump
simply misses rather than mis-reads.  Invalidation rules:

* **corrupted or truncated entries** fail to decode; the entry is
  deleted and the artefact regenerated (never a crash);
* **stale entries** (written under an older format version) hash to a
  different path or fail the decoder's version check, same outcome;
* writes are atomic (temp file + ``os.replace``), so a killed run never
  leaves a half-written entry that a later run would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.isa.io import load_trace, save_trace
from repro.isa.kernel import KernelTrace
from repro.sm.result import SimResult
from repro.sm.serialize import load_result, save_result


def cache_key_digest(key: object) -> str:
    """SHA-256 of the canonical JSON rendering of a plain-data key."""
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(slots=True)
class DiskCacheStats:
    """Hit/miss accounting across one :class:`DiskCache` lifetime."""

    trace_hits: int = 0
    trace_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    meta_hits: int = 0
    meta_misses: int = 0
    invalidated: int = 0

    @property
    def hits(self) -> int:
        return self.trace_hits + self.result_hits + self.meta_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.result_misses + self.meta_misses

    def summary(self) -> str:
        parts = [
            f"traces {self.trace_hits}/{self.trace_hits + self.trace_misses}",
            f"results {self.result_hits}/{self.result_hits + self.result_misses}",
            f"meta {self.meta_hits}/{self.meta_hits + self.meta_misses}",
        ]
        s = f"cache hits: {', '.join(parts)}"
        if self.invalidated:
            s += f"; {self.invalidated} stale/corrupt entries regenerated"
        return s


class DiskCache:
    """Content-addressed trace/result store shared by processes and runs.

    Safe for concurrent writers: the worst case is two processes
    computing the same artefact and replacing the entry with identical
    bytes.  All ``get_*`` methods return ``None`` on any decode failure
    after deleting the offending entry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = DiskCacheStats()
        for sub in ("traces", "results", "meta"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- path mapping -----------------------------------------------------
    def trace_path(self, key: object) -> Path:
        return self.root / "traces" / f"{cache_key_digest(key)}.npz"

    def result_path(self, key: object) -> Path:
        return self.root / "results" / f"{cache_key_digest(key)}.json"

    def meta_path(self, key: object) -> Path:
        return self.root / "meta" / f"{cache_key_digest(key)}.json"

    # -- atomic write helper ----------------------------------------------
    @staticmethod
    def _replace(tmp: Path, final: Path) -> None:
        os.replace(tmp, final)

    def _drop(self, path: Path) -> None:
        self.stats.invalidated += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- traces -----------------------------------------------------------
    def get_trace(self, key: object) -> KernelTrace | None:
        path = self.trace_path(key)
        if not path.exists():
            self.stats.trace_misses += 1
            return None
        try:
            trace = load_trace(path)
        except Exception:
            self._drop(path)
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        return trace

    def put_trace(self, key: object, trace: KernelTrace) -> None:
        path = self.trace_path(key)
        tmp = path.with_name(f".{os.getpid()}-{path.name}")
        save_trace(trace, tmp)
        self._replace(tmp, path)

    # -- simulation results -----------------------------------------------
    def get_result(self, key: object) -> SimResult | None:
        path = self.result_path(key)
        if not path.exists():
            self.stats.result_misses += 1
            return None
        try:
            result = load_result(path)
        except Exception:
            self._drop(path)
            self.stats.result_misses += 1
            return None
        self.stats.result_hits += 1
        return result

    def put_result(self, key: object, result: SimResult) -> None:
        path = self.result_path(key)
        tmp = path.with_name(f".{os.getpid()}-{path.name}")
        save_result(result, tmp)
        self._replace(tmp, path)

    # -- small JSON artefacts (compile summaries, allocations) -------------
    def get_meta(self, key: object) -> dict | None:
        path = self.meta_path(key)
        if not path.exists():
            self.stats.meta_misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("meta entry must be a JSON object")
        except Exception:
            self._drop(path)
            self.stats.meta_misses += 1
            return None
        self.stats.meta_hits += 1
        return payload

    def put_meta(self, key: object, payload: dict) -> None:
        path = self.meta_path(key)
        tmp = path.with_name(f".{os.getpid()}-{path.name}")
        tmp.write_text(json.dumps(payload))
        self._replace(tmp, path)

    # -- run manifests ------------------------------------------------------
    @staticmethod
    def _unique_path(path: Path) -> Path:
        """First non-existing ``name``, ``name-2``, ``name-3``, ... path.

        Default manifest/span names embed a wall-clock second plus a
        content digest, so many ``--jobs`` workers (or two quick serial
        runs) finishing in the same second with *different* payloads
        must not clobber each other; identical payloads may (their
        bytes match, so the replace is a no-op).
        """
        if not path.exists():
            return path
        for n in range(2, 10_000):
            candidate = path.with_name(f"{path.stem}-{n}{path.suffix}")
            if not candidate.exists():
                return candidate
        raise RuntimeError(f"could not uniquify {path}")

    def put_manifest(self, manifest: dict) -> Path:
        """Write a run's provenance record next to the artifacts it made."""
        from repro.obs.manifest import default_manifest_name, write_manifest

        directory = self.root / "manifests"
        directory.mkdir(parents=True, exist_ok=True)
        return write_manifest(
            manifest, self._unique_path(directory / default_manifest_name(manifest))
        )

    def manifest_paths(self) -> list[Path]:
        directory = self.root / "manifests"
        if not directory.is_dir():
            return []
        return sorted(directory.glob("run-*.json"))

    # -- executor span logs --------------------------------------------------
    def put_spans(self, payload: dict) -> Path:
        """Persist a ``repro.obs.spans/1`` log and index it per suite.

        The log lands next to the manifests (``spans/`` directory) with
        a uniquified timestamp+digest name; ``spans/index.json`` keeps
        one summary line per log so a fleet of runs can be enumerated
        without opening every file.
        """
        from repro.obs.spans import default_spans_name

        directory = self.root / "spans"
        directory.mkdir(parents=True, exist_ok=True)
        path = self._unique_path(directory / default_spans_name(payload))
        tmp = path.with_name(f".{os.getpid()}-{path.name}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        self._replace(tmp, path)

        index_path = directory / "index.json"
        try:
            index = json.loads(index_path.read_text())
            if not isinstance(index, list):
                raise ValueError("spans index must be a JSON array")
        except Exception:
            index = []
        index.append(
            {
                "file": path.name,
                "created_unix": payload.get("created_unix"),
                "command": payload.get("command"),
                "jobs": payload.get("jobs"),
                "phases": [
                    p.get("label") for p in payload.get("phases", [])
                ],
            }
        )
        tmp = index_path.with_name(f".{os.getpid()}-{index_path.name}")
        tmp.write_text(json.dumps(index, indent=2))
        self._replace(tmp, index_path)
        return path

    def spans_paths(self) -> list[Path]:
        directory = self.root / "spans"
        if not directory.is_dir():
            return []
        return sorted(directory.glob("spans-*.json"))

    # -- maintenance -------------------------------------------------------
    def entry_count(self) -> dict[str, int]:
        return {
            sub: sum(1 for p in (self.root / sub).iterdir() if not p.name.startswith("."))
            for sub in ("traces", "results", "meta")
        }
