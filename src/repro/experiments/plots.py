"""Plain-text line charts for the figure experiments.

The paper's Figures 2-4 and 11 are line charts; the experiment drivers
return their points, and this module renders them as unicode-block
terminal plots so ``python -m repro experiment figure4 --plot`` (and the
benchmark harness outputs) convey the *shape* at a glance without any
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Vertical resolution glyphs, lowest to highest fill.
_BLOCKS = " .:-=+*#%@"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a character grid.

    Each series gets a distinct marker (its index digit / letter); a
    legend follows the grid.  Points are mapped onto the grid by linear
    interpolation of the axis ranges; later series overwrite earlier
    ones where they collide.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox*+#@%&"
    for idx, (name, pts) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:8.2f} |"
        elif i == height - 1:
            label = f"{y_lo:8.2f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_lo:<12.4g}{x_label:^{max(0, width - 24)}}{x_hi:>12.4g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    if y_label:
        lines.append(" " * 9 + f"(y: {y_label})")
    return "\n".join(lines)


def plot_figure4(result, benchmark: str) -> str:
    """Performance vs cache capacity, one line per thread count."""
    series = {}
    for threads in sorted({p.threads for p in result.points if p.benchmark == benchmark}):
        line = result.line(benchmark, threads)
        series[f"{threads} thr"] = [(p.cache_kb, p.normalized_perf) for p in line]
    return ascii_plot(
        series,
        title=f"Figure 4 ({benchmark}): performance vs cache capacity",
        x_label="cache KB",
        y_label="performance, normalized",
    )


def plot_figure11(result) -> str:
    """Needle performance vs shared-memory capacity per blocking factor."""
    series = {}
    for bf in sorted({p.blocking_factor for p in result.points}):
        series[f"bf{bf}"] = [
            (p.smem_kb, p.normalized_perf) for p in result.line(bf)
        ]
    return ascii_plot(
        series,
        title="Figure 11: needle blocking factors",
        x_label="shared memory KB",
        y_label="performance, normalized",
    )
