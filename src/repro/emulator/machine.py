"""SIMT execution of thread programs.

Runs 32 threads per warp in lockstep over a
:class:`~repro.emulator.ast.Program`: expressions evaluate to real
per-lane integer values, branches split the active mask, structured
control flow reconverges at block ends, and every step emits the
corresponding :class:`~repro.isa.trace.WarpOp` -- one ALU/SFU op per
operator, loads/stores with the actual per-lane addresses, and merge
(select) ops for predicated assignments under partial masks.

Semantics notes:

* Values are 32-bit unsigned (wrapped after every operation).
* Unwritten global memory reads a deterministic per-address pattern, so
  data-dependent programs are reproducible without initialising every
  byte; pass ``global_init`` to override.
* ``bar.sync`` under a divergent mask raises (as it deadlocks on real
  hardware).
* CTAs execute in index order against one shared global-memory image,
  so inter-CTA visibility is deterministic.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.emulator.ast import (
    _OPS,
    Assign,
    Barrier,
    BinOp,
    Const,
    If,
    LoadGlobal,
    LoadShared,
    Program,
    SFU_OPS,
    Special,
    Stmt,
    StoreGlobal,
    StoreShared,
    Var,
    While,
)
from repro.isa.builder import WarpBuilder
from repro.isa.kernel import CTATrace, KernelTrace, LaunchConfig
from repro.isa.trace import WARP_SIZE, WarpOp

_MASK32 = 0xFFFFFFFF


class EmulationError(RuntimeError):
    """Thread-program execution failed (bad address, divergent barrier...)."""


class MemoryImage:
    """Sparse byte-addressed memory with a deterministic background."""

    def __init__(self, init: Callable[[int], int] | None = None) -> None:
        self._data: dict[int, int] = {}
        self._init = init or (lambda addr: (addr * 2654435761 >> 7) & _MASK32)

    def read(self, addr: int) -> int:
        if addr in self._data:
            return self._data[addr]
        return self._init(addr) & _MASK32

    def write(self, addr: int, value: int) -> None:
        self._data[addr] = value & _MASK32

    @property
    def written_locations(self) -> int:
        return len(self._data)


class _WarpMachine:
    def __init__(
        self,
        builder: WarpBuilder,
        specials: dict[str, list[int]],
        gmem: MemoryImage,
        smem: MemoryImage,
        smem_bytes: int,
        lanes: int,
    ) -> None:
        self.b = builder
        self.gmem = gmem
        self.smem = smem
        self.smem_bytes = smem_bytes
        self.lanes = lanes
        self.values: dict[str, list[int]] = {}
        self.regs: dict[str, int] = {}
        self._const_regs: dict[int, int] = {}
        self._special_regs: dict[str, int] = {}
        self.specials = specials

    # -- expression evaluation ---------------------------------------------
    def eval(self, expr, mask: list[bool]) -> tuple[list[int], int]:
        """Returns (per-lane values, trace register holding them)."""
        n = sum(mask)
        if isinstance(expr, Const):
            reg = self._const_regs.get(expr.value)
            if reg is None:
                reg = self.b.iconst()
                self._const_regs[expr.value] = reg
            return [expr.value & _MASK32] * self.lanes, reg
        if isinstance(expr, Special):
            if expr.name not in self.specials:
                raise EmulationError(f"unknown special {expr.name!r}")
            reg = self._special_regs.get(expr.name)
            if reg is None:
                reg = self.b.iconst()
                self._special_regs[expr.name] = reg
            return list(self.specials[expr.name]), reg
        if isinstance(expr, Var):
            if expr.name not in self.values:
                raise EmulationError(f"read of undefined variable {expr.name!r}")
            return self.values[expr.name], self.regs[expr.name]
        if isinstance(expr, BinOp):
            lv, lr = self.eval(expr.left, mask)
            rv, rr = self.eval(expr.right, mask)
            fn = _OPS[expr.op]
            out = [0] * self.lanes
            for lane in range(self.lanes):
                if mask[lane]:
                    try:
                        out[lane] = fn(lv[lane], rv[lane]) & _MASK32
                    except ZeroDivisionError as e:
                        raise EmulationError(
                            f"lane {lane}: division by zero in {expr.op!r}"
                        ) from e
            emit = self.b.sfu if expr.op in SFU_OPS else self.b.alu
            reg = emit(lr, rr, active=max(1, n))
            return out, reg
        raise EmulationError(f"cannot evaluate {type(expr).__name__}")

    # -- variable binding with predication ----------------------------------
    def bind(self, var: str, vals: list[int], reg: int, mask: list[bool]) -> None:
        if var not in self.values or all(mask):
            self.values[var] = list(vals)
            self.regs[var] = reg
            return
        # Partial mask over an existing variable: a predicated write.
        old_vals = self.values[var]
        merged = [
            vals[lane] if mask[lane] else old_vals[lane] for lane in range(self.lanes)
        ]
        sel = self.b.alu(reg, self.regs[var], active=max(1, sum(mask)))
        self.values[var] = merged
        self.regs[var] = sel

    # -- statements ----------------------------------------------------------
    def run(self, stmts: Sequence[Stmt], mask: list[bool]) -> None:
        for stmt in stmts:
            if not any(mask):
                return
            self.step(stmt, mask)

    def step(self, stmt: Stmt, mask: list[bool]) -> None:
        if isinstance(stmt, Assign):
            vals, reg = self.eval(stmt.expr, mask)
            self.bind(stmt.var, vals, reg, mask)
        elif isinstance(stmt, LoadGlobal):
            self._load(stmt.var, stmt.addr, mask, shared=False)
        elif isinstance(stmt, LoadShared):
            self._load(stmt.var, stmt.addr, mask, shared=True)
        elif isinstance(stmt, StoreGlobal):
            self._store(stmt.addr, stmt.value, mask, shared=False)
        elif isinstance(stmt, StoreShared):
            self._store(stmt.addr, stmt.value, mask, shared=True)
        elif isinstance(stmt, Barrier):
            if not all(mask):
                raise EmulationError(
                    "bar.sync under a divergent mask deadlocks on real hardware"
                )
            self.b.barrier()
        elif isinstance(stmt, If):
            cvals, _ = self.eval(stmt.cond, mask)
            then_mask = [mask[l] and cvals[l] != 0 for l in range(self.lanes)]
            else_mask = [mask[l] and cvals[l] == 0 for l in range(self.lanes)]
            if any(then_mask):
                self.run(stmt.then, then_mask)
            if stmt.orelse and any(else_mask):
                self.run(stmt.orelse, else_mask)
            # Reconvergence: execution resumes under the caller's mask.
        elif isinstance(stmt, While):
            live = list(mask)
            for _ in range(stmt.max_iterations):
                cvals, _ = self.eval(stmt.cond, live)
                live = [live[l] and cvals[l] != 0 for l in range(self.lanes)]
                if not any(live):
                    return
                self.run(stmt.body, live)
            raise EmulationError(
                f"while loop exceeded {stmt.max_iterations} iterations"
            )
        else:
            raise EmulationError(f"unknown statement {type(stmt).__name__}")

    def _addrs(self, addr_expr, mask, shared: bool) -> tuple[list[int], int, list[int]]:
        avals, areg = self.eval(addr_expr, mask)
        lanes = [l for l in range(self.lanes) if mask[l]]
        addrs = [avals[l] for l in lanes]
        limit = self.smem_bytes if shared else (1 << 40)
        for a in addrs:
            if not 0 <= a < limit:
                space = "shared" if shared else "global"
                raise EmulationError(f"{space} address {a:#x} out of range")
        return addrs, areg, lanes

    def _load(self, var, addr_expr, mask, shared: bool) -> None:
        addrs, areg, lanes = self._addrs(addr_expr, mask, shared)
        mem = self.smem if shared else self.gmem
        loader = self.b.load_shared if shared else self.b.load_global
        reg = loader(addrs, areg, active=len(lanes))
        vals = [0] * self.lanes
        for l, a in zip(lanes, addrs):
            vals[l] = mem.read(a)
        self.bind(var, vals, reg, mask)

    def _store(self, addr_expr, val_expr, mask, shared: bool) -> None:
        vvals, vreg = self.eval(val_expr, mask)
        addrs, areg, lanes = self._addrs(addr_expr, mask, shared)
        mem = self.smem if shared else self.gmem
        storer = self.b.store_shared if shared else self.b.store_global
        storer(addrs, areg, vreg, active=len(lanes))
        for l, a in zip(lanes, addrs):
            mem.write(a, vvals[l])


def emulate_warp(
    program: Program | Sequence[Stmt],
    cta: int = 0,
    warp: int = 0,
    lanes: int = WARP_SIZE,
    threads_per_cta: int = WARP_SIZE,
    gmem: MemoryImage | None = None,
    smem: MemoryImage | None = None,
    smem_bytes: int = 0,
) -> list[WarpOp]:
    """Run one warp of a thread program; returns its trace."""
    stmts = program.statements if isinstance(program, Program) else tuple(program)
    b = WarpBuilder(active=lanes)
    base = cta * threads_per_cta + warp * WARP_SIZE
    specials = {
        "tid": [warp * WARP_SIZE + l for l in range(lanes)],
        "lane": list(range(lanes)),
        "warp": [warp] * lanes,
        "cta": [cta] * lanes,
        "gtid": [base + l for l in range(lanes)],
    }
    machine = _WarpMachine(
        b,
        specials,
        gmem if gmem is not None else MemoryImage(),
        smem if smem is not None else MemoryImage(),
        smem_bytes,
        lanes,
    )
    machine.run(stmts, [True] * lanes)
    return b.ops


def emulate_kernel(
    program: Program | Sequence[Stmt],
    name: str = "emulated",
    threads_per_cta: int = WARP_SIZE,
    num_ctas: int = 1,
    smem_bytes_per_cta: int = 0,
    global_init: Callable[[int], int] | None = None,
) -> KernelTrace:
    """Emulate a full launch: one trace per warp per CTA.

    CTAs run in index order against a single global-memory image;
    each CTA gets a fresh shared-memory image.
    """
    stmts = program.statements if isinstance(program, Program) else tuple(program)
    gmem = MemoryImage(global_init)
    launch = LaunchConfig(
        threads_per_cta=threads_per_cta,
        num_ctas=num_ctas,
        smem_bytes_per_cta=smem_bytes_per_cta,
    )
    ctas = []
    for c in range(num_ctas):
        smem = MemoryImage(lambda addr: 0)
        warps = [
            list(
                emulate_warp(
                    stmts,
                    cta=c,
                    warp=w,
                    threads_per_cta=threads_per_cta,
                    gmem=gmem,
                    smem=smem,
                    smem_bytes=smem_bytes_per_cta,
                )
            )
            for w in range(launch.warps_per_cta)
        ]
        ctas.append(CTATrace(warps))
    return KernelTrace(name, launch, ctas)
