"""Per-thread SIMT emulator: thread programs -> warp-level traces.

The paper generated traces by running real CUDA kernels under Ocelot, a
functional PTX emulator (Section 5.1).  The hand-written generators in
:mod:`repro.kernels` reproduce the suite's streams directly at warp
granularity; this package supplies the general mechanism for everything
else: write a *thread program* once, and the SIMT executor runs 32
threads per warp in lockstep -- evaluating real values, diverging at
branches, reconverging at the immediate post-dominator the structured
control flow defines -- and emits the same
:class:`~repro.isa.trace.WarpOp` streams the rest of the stack consumes.

Example::

    from repro.emulator import Program, emulate_kernel
    from repro.emulator.ast import V, Const

    p = Program()
    tid = p.special("tid")
    x = p.load_global(Const(0x1000) + tid * 4)
    with p.if_(x % 2 == ...):  # see repro.emulator.ast for operators
        ...

See :mod:`repro.emulator.ast` for the expression/statement forms and
:mod:`repro.emulator.machine` for execution semantics.
"""

from repro.emulator.ast import (
    Assign,
    Barrier,
    BinOp,
    Const,
    If,
    LoadGlobal,
    LoadShared,
    Program,
    Special,
    StoreGlobal,
    StoreShared,
    Var,
    While,
)
from repro.emulator.machine import EmulationError, emulate_kernel, emulate_warp

__all__ = [
    "Assign",
    "Barrier",
    "BinOp",
    "Const",
    "EmulationError",
    "If",
    "LoadGlobal",
    "LoadShared",
    "Program",
    "Special",
    "StoreGlobal",
    "StoreShared",
    "Var",
    "While",
    "emulate_kernel",
    "emulate_warp",
]
