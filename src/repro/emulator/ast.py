"""Thread-program AST: expressions and structured statements.

Programs are written per *thread* over integer values; the executor in
:mod:`repro.emulator.machine` runs a warp of 32 threads in lockstep.
Control flow is structured (``If`` / ``While``), which fixes the
reconvergence point of every branch at its end -- the immediate
post-dominator, exactly what SIMT reconvergence stacks implement for
structured code.

Expressions support Python operator syntax (``a + b * 4``,
``x % 2 == 0``) and evaluate per-thread; comparisons yield 0/1.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "%": operator.mod,
    "^": operator.xor,
    "&": operator.and_,
    "|": operator.or_,
    ">>": operator.rshift,
    "<<": operator.lshift,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}

#: Operators whose hardware realisation is a special-function op.
SFU_OPS = frozenset({"//", "%"})


class Expr:
    """Base expression; supports Python operator overloading."""

    def _bin(self, op: str, other) -> "BinOp":
        return BinOp(op, self, _wrap(other))

    def _rbin(self, op: str, other) -> "BinOp":
        return BinOp(op, _wrap(other), self)

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._rbin("+", o)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._rbin("-", o)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._rbin("*", o)

    def __floordiv__(self, o):
        return self._bin("//", o)

    def __mod__(self, o):
        return self._bin("%", o)

    def __xor__(self, o):
        return self._bin("^", o)

    def __and__(self, o):
        return self._bin("&", o)

    def __or__(self, o):
        return self._bin("|", o)

    def __rshift__(self, o):
        return self._bin(">>", o)

    def __lshift__(self, o):
        return self._bin("<<", o)

    def eq(self, o):
        return self._bin("==", o)

    def ne(self, o):
        return self._bin("!=", o)

    def lt(self, o):
        return self._bin("<", o)

    def le(self, o):
        return self._bin("<=", o)

    def gt(self, o):
        return self._bin(">", o)

    def ge(self, o):
        return self._bin(">=", o)


def _wrap(v) -> Expr:
    if isinstance(v, Expr):
        return v
    if isinstance(v, int):
        return Const(v)
    raise TypeError(f"cannot use {type(v).__name__} in a thread expression")


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class Special(Expr):
    """Built-in thread identifiers: tid (lane), warp, cta, gtid."""

    name: str  # "tid" | "warp" | "cta" | "gtid"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}")


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
class Stmt:
    pass


@dataclass(frozen=True)
class Assign(Stmt):
    var: str
    expr: Expr


@dataclass(frozen=True)
class LoadGlobal(Stmt):
    var: str
    addr: Expr


@dataclass(frozen=True)
class StoreGlobal(Stmt):
    addr: Expr
    value: Expr


@dataclass(frozen=True)
class LoadShared(Stmt):
    var: str
    addr: Expr


@dataclass(frozen=True)
class StoreShared(Stmt):
    addr: Expr
    value: Expr


@dataclass(frozen=True)
class Barrier(Stmt):
    pass


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]
    max_iterations: int = 10_000


class Program:
    """Builder for a thread program with context-manager control flow.

    ::

        p = Program()
        x = p.load_global(Special("gtid") * 4 + 0x100000)
        with p.if_(x % 2 == ...):   # use .eq()/.lt()/... for comparisons
            p.store_global(Special("gtid") * 4 + 0x200000, x * 3 + 1)
        stmts = p.statements
    """

    def __init__(self) -> None:
        self._blocks: list[list[Stmt]] = [[]]
        self._fresh = 0

    # -- expression helpers ----------------------------------------------
    @staticmethod
    def special(name: str) -> Special:
        return Special(name)

    def _new_var(self, prefix: str = "t") -> str:
        self._fresh += 1
        return f"%{prefix}{self._fresh}"

    # -- statements --------------------------------------------------------
    def assign(self, expr: Expr, name: str | None = None) -> Var:
        var = name or self._new_var()
        self._blocks[-1].append(Assign(var, _wrap(expr)))
        return Var(var)

    def load_global(self, addr: Expr, name: str | None = None) -> Var:
        var = name or self._new_var("g")
        self._blocks[-1].append(LoadGlobal(var, _wrap(addr)))
        return Var(var)

    def store_global(self, addr: Expr, value: Expr) -> None:
        self._blocks[-1].append(StoreGlobal(_wrap(addr), _wrap(value)))

    def load_shared(self, addr: Expr, name: str | None = None) -> Var:
        var = name or self._new_var("s")
        self._blocks[-1].append(LoadShared(var, _wrap(addr)))
        return Var(var)

    def store_shared(self, addr: Expr, value: Expr) -> None:
        self._blocks[-1].append(StoreShared(_wrap(addr), _wrap(value)))

    def barrier(self) -> None:
        self._blocks[-1].append(Barrier())

    # -- structured control flow -------------------------------------------
    def if_(self, cond: Expr, orelse: bool = False) -> "_BlockCtx":
        return _BlockCtx(self, "if", _wrap(cond))

    def while_(self, cond: Expr, max_iterations: int = 10_000) -> "_BlockCtx":
        return _BlockCtx(self, "while", _wrap(cond), max_iterations)

    def else_(self) -> "_BlockCtx":
        last = self._blocks[-1][-1] if self._blocks[-1] else None
        if not isinstance(last, If) or last.orelse:
            raise ValueError("else_() must directly follow an if_() block")
        return _BlockCtx(self, "else", None)

    @property
    def statements(self) -> tuple[Stmt, ...]:
        if len(self._blocks) != 1:
            raise ValueError("unclosed control-flow block")
        return tuple(self._blocks[0])


class _BlockCtx:
    def __init__(self, program: Program, kind: str, cond, max_iter: int = 0):
        self.p = program
        self.kind = kind
        self.cond = cond
        self.max_iter = max_iter

    def __enter__(self):
        self.p._blocks.append([])
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        body = tuple(self.p._blocks.pop())
        top = self.p._blocks[-1]
        if self.kind == "if":
            top.append(If(self.cond, body))
        elif self.kind == "while":
            top.append(While(self.cond, body, self.max_iter))
        else:  # else: rewrite the preceding If
            prior = top.pop()
            assert isinstance(prior, If)
            top.append(If(prior.cond, prior.then, body))
        return False
