"""Warp-level mini-ISA used throughout the reproduction.

The paper's evaluation is trace-driven (Section 5.1): Ocelot produced
execution and address traces which a custom single-SM simulator consumed.
We substitute Ocelot with algorithmic trace generators (see
:mod:`repro.kernels`), and this package defines the trace vocabulary they
emit:

* :class:`~repro.isa.opcodes.OpClass` -- instruction classes with the
  Table 2 latency semantics (ALU, SFU, global/shared/local memory, TEX,
  barriers).
* :class:`~repro.isa.trace.WarpOp` -- one dynamic warp instruction over
  *virtual* registers, with per-thread byte addresses for memory ops.
* :class:`~repro.isa.builder.WarpBuilder` -- a small construction API that
  kernels use to emit SSA-style instruction streams.
* :class:`~repro.isa.kernel.KernelInfo` / :class:`~repro.isa.kernel.KernelTrace`
  -- static metadata (registers/thread, shared memory/thread, CTA shape)
  plus the per-CTA, per-warp dynamic instruction streams.

Traces are recorded at warp granularity because every model in the paper
that we reproduce (bank conflicts, coalescing, scheduling, energy counts)
operates on warp instructions, never on individual threads.
"""

from repro.isa.builder import WarpBuilder
from repro.isa.kernel import CTATrace, KernelInfo, KernelTrace, LaunchConfig
from repro.isa.opcodes import MemSpace, OpClass
from repro.isa.trace import WarpOp

__all__ = [
    "CTATrace",
    "KernelInfo",
    "KernelTrace",
    "LaunchConfig",
    "MemSpace",
    "OpClass",
    "WarpBuilder",
    "WarpOp",
]
