"""Dynamic warp-instruction records.

A :class:`WarpOp` is one warp instruction executed by (up to) 32 threads
in lockstep.  Register operands are *virtual* registers local to one warp
stream; the compiler passes in :mod:`repro.compiler` later rewrite them to
architectural registers (inserting spill code) and tag each operand with
the register-file-hierarchy level it is served from.

Memory instructions carry one byte address per active thread.  Addresses
for ``GLOBAL``/``LOCAL`` ops live in a flat 64-bit global space; addresses
for ``SHARED`` ops are offsets into the issuing CTA's shared-memory
allocation (the CTA scheduler rebases them at runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass

#: Number of threads in a warp (paper Section 2: 32-thread warps).
WARP_SIZE = 32


@dataclass(frozen=True, slots=True)
class WarpOp:
    """One dynamic warp instruction over virtual registers.

    Attributes:
        op: Instruction class.
        dst: Virtual destination register, or ``None`` for stores,
            barriers, and other result-less instructions.
        srcs: Virtual source registers (address and data operands).
        addrs: Per-active-thread byte addresses for memory instructions,
            ``None`` otherwise.  ``len(addrs) == active``.
        active: Number of active threads.  Control-flow divergence is
            represented by emitting ops with reduced active counts; a
            memory op may be fully predicated off (``active == 0`` with
            ``addrs == ()``), in which case it still occupies an issue
            slot but touches no memory.  Non-memory ops require at least
            one active thread.
    """

    op: OpClass
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    addrs: tuple[int, ...] | None = None
    active: int = WARP_SIZE

    def __post_init__(self) -> None:
        if self.op.is_memory:
            if not 0 <= self.active <= WARP_SIZE:
                raise ValueError(
                    f"active thread count {self.active} outside [0, {WARP_SIZE}]"
                )
            if self.addrs is None:
                raise ValueError(f"{self.op} requires per-thread addresses")
            if len(self.addrs) != self.active:
                raise ValueError(
                    f"{self.op}: {len(self.addrs)} addresses for {self.active} active threads"
                )
        else:
            if not 1 <= self.active <= WARP_SIZE:
                raise ValueError(
                    f"active thread count {self.active} outside [1, {WARP_SIZE}]"
                )
            if self.addrs is not None:
                raise ValueError(f"{self.op} must not carry addresses")

    @property
    def regs_read(self) -> tuple[int, ...]:
        return self.srcs

    @property
    def regs_written(self) -> tuple[int, ...]:
        return () if self.dst is None else (self.dst,)


@dataclass(slots=True)
class TraceStats:
    """Aggregate statistics over a warp instruction stream."""

    total_ops: int = 0
    alu_ops: int = 0
    sfu_ops: int = 0
    tex_ops: int = 0
    global_loads: int = 0
    global_stores: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    local_loads: int = 0
    local_stores: int = 0
    barriers: int = 0
    by_op: dict = field(default_factory=dict)

    @classmethod
    def from_ops(cls, ops) -> "TraceStats":
        stats = cls()
        counts: dict[OpClass, int] = {}
        for w in ops:
            counts[w.op] = counts.get(w.op, 0) + 1
        stats.by_op = counts
        stats.total_ops = sum(counts.values())
        stats.alu_ops = counts.get(OpClass.ALU, 0)
        stats.sfu_ops = counts.get(OpClass.SFU, 0)
        stats.tex_ops = counts.get(OpClass.TEX, 0)
        stats.global_loads = counts.get(OpClass.LOAD_GLOBAL, 0)
        stats.global_stores = counts.get(OpClass.STORE_GLOBAL, 0)
        stats.shared_loads = counts.get(OpClass.LOAD_SHARED, 0)
        stats.shared_stores = counts.get(OpClass.STORE_SHARED, 0)
        stats.local_loads = counts.get(OpClass.LOAD_LOCAL, 0)
        stats.local_stores = counts.get(OpClass.STORE_LOCAL, 0)
        stats.barriers = counts.get(OpClass.BARRIER, 0)
        return stats

    @property
    def memory_ops(self) -> int:
        return (
            self.global_loads
            + self.global_stores
            + self.shared_loads
            + self.shared_stores
            + self.local_loads
            + self.local_stores
        )
