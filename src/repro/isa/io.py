"""Kernel-trace serialization.

Traces are the expensive artefact of this pipeline (the Ocelot-
equivalent step); persisting them lets a workstation generate once and a
CI sweep re-simulate many configurations, exactly how the paper's
trace-driven methodology separates tracing from simulation.

Format: a single compressed ``.npz`` holding the launch metadata plus
five parallel numpy arrays encoding every warp instruction:

* ``op``        -- opcode ordinal (uint8)
* ``dst``       -- destination vreg + 1, 0 for none (int32)
* ``srcs``      -- flattened source registers with ``src_off`` offsets
* ``addrs``     -- flattened byte addresses with ``addr_off`` offsets
* ``has_addrs`` -- 1 if the op carries an address tuple (uint8); this
  distinguishes an *empty* tuple (a fully-predicated memory op) from
  ``None``, which offset arithmetic alone cannot
* ``bounds``    -- (cta, warp) boundaries as op counts

The encoding is lossless: ``load(save(trace))`` reproduces the trace
exactly, including empty-but-present address tuples (verified by
property test).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.isa.kernel import CTATrace, KernelTrace, LaunchConfig
from repro.isa.opcodes import OpClass
from repro.isa.trace import WarpOp

_OPCODES = list(OpClass)
_OP_INDEX = {op: i for i, op in enumerate(_OPCODES)}

#: Bumped to 2 when the explicit ``has_addrs`` flag was added; version-1
#: files decoded ``addrs=()`` as ``addrs=None`` and are rejected.
FORMAT_VERSION = 2


def save_trace(trace: KernelTrace, path: str | Path) -> None:
    """Write a kernel trace to ``path`` (``.npz``)."""
    ops: list[int] = []
    dsts: list[int] = []
    srcs: list[int] = []
    src_off: list[int] = [0]
    addrs: list[int] = []
    addr_off: list[int] = [0]
    has_addrs: list[int] = []
    actives: list[int] = []
    warp_bounds: list[int] = [0]
    total = 0
    for cta in trace.ctas:
        for warp in cta.warps:
            for op in warp:
                ops.append(_OP_INDEX[op.op])
                dsts.append(0 if op.dst is None else op.dst + 1)
                srcs.extend(op.srcs)
                src_off.append(len(srcs))
                if op.addrs is not None:
                    addrs.extend(op.addrs)
                addr_off.append(len(addrs))
                has_addrs.append(op.addrs is not None)
                actives.append(op.active)
                total += 1
            warp_bounds.append(total)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "threads_per_cta": trace.launch.threads_per_cta,
        "num_ctas": trace.launch.num_ctas,
        "smem_bytes_per_cta": trace.launch.smem_bytes_per_cta,
        "uses_texture": trace.uses_texture,
        "warps_per_cta": trace.launch.warps_per_cta,
        "opcodes": [op.value for op in _OPCODES],
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        op=np.asarray(ops, dtype=np.uint8),
        dst=np.asarray(dsts, dtype=np.int32),
        srcs=np.asarray(srcs, dtype=np.int32),
        src_off=np.asarray(src_off, dtype=np.int64),
        addrs=np.asarray(addrs, dtype=np.int64),
        addr_off=np.asarray(addr_off, dtype=np.int64),
        has_addrs=np.asarray(has_addrs, dtype=np.uint8),
        active=np.asarray(actives, dtype=np.uint8),
        warp_bounds=np.asarray(warp_bounds, dtype=np.int64),
    )


def load_trace(path: str | Path) -> KernelTrace:
    """Read a kernel trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        stored_ops = meta["opcodes"]
        current = [op.value for op in _OPCODES]
        if stored_ops != current:
            raise ValueError("opcode table mismatch; trace written by another build")
        op_arr = data["op"]
        dst = data["dst"]
        srcs = data["srcs"]
        src_off = data["src_off"]
        addrs = data["addrs"]
        addr_off = data["addr_off"]
        has_addrs = data["has_addrs"]
        active = data["active"]
        warp_bounds = data["warp_bounds"]

    def decode(i: int) -> WarpOp:
        opc = _OPCODES[op_arr[i]]
        s0, s1 = src_off[i], src_off[i + 1]
        a0, a1 = addr_off[i], addr_off[i + 1]
        return WarpOp(
            op=opc,
            dst=None if dst[i] == 0 else int(dst[i]) - 1,
            srcs=tuple(int(x) for x in srcs[s0:s1]),
            addrs=tuple(int(x) for x in addrs[a0:a1]) if has_addrs[i] else None,
            active=int(active[i]),
        )

    launch = LaunchConfig(
        threads_per_cta=meta["threads_per_cta"],
        num_ctas=meta["num_ctas"],
        smem_bytes_per_cta=meta["smem_bytes_per_cta"],
    )
    warps_per_cta = meta["warps_per_cta"]
    ctas: list[CTATrace] = []
    wb = list(warp_bounds)
    w = 0
    for _ in range(meta["num_ctas"]):
        warps = []
        for _ in range(warps_per_cta):
            start, end = wb[w], wb[w + 1]
            warps.append([decode(i) for i in range(start, end)])
            w += 1
        ctas.append(CTATrace(warps))
    return KernelTrace(
        meta["name"], launch, ctas, uses_texture=meta["uses_texture"]
    )
