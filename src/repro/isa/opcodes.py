"""Instruction classes and memory spaces for the warp-level mini-ISA.

The classification mirrors the categories the paper's simulator
distinguishes (Table 2 latencies, Section 5.1): arithmetic, special
function, texture, and the three data spaces (global, shared, local).
Local memory holds register spills and is backed by the global memory
path (it flows through the data cache and DRAM), exactly the coupling the
paper relies on when it reports that spills both add dynamic instructions
and increase cache pressure (Section 3.1).
"""

from __future__ import annotations

import enum


class MemSpace(enum.Enum):
    """Address space targeted by a memory instruction."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemSpace.{self.name}"


class OpClass(enum.Enum):
    """Dynamic warp-instruction classes understood by the SM simulator."""

    ALU = "alu"
    SFU = "sfu"
    LOAD_GLOBAL = "ld.global"
    STORE_GLOBAL = "st.global"
    LOAD_SHARED = "ld.shared"
    STORE_SHARED = "st.shared"
    LOAD_LOCAL = "ld.local"
    STORE_LOCAL = "st.local"
    TEX = "tex"
    BARRIER = "bar.sync"
    EXIT = "exit"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"

    @property
    def is_memory(self) -> bool:
        """True for instructions that carry per-thread addresses."""
        return self in _MEMORY_OPS

    @property
    def is_load(self) -> bool:
        return self in _LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self in _STORE_OPS

    @property
    def is_long_latency(self) -> bool:
        """True for ops after which the two-level scheduler deschedules.

        The paper's two-level warp scheduler (Section 2.1, ref [8]) moves a
        warp to the inactive set when it encounters a dependence on a
        long-latency operation: global/local memory and texture.
        """
        return self in _LONG_LATENCY_OPS

    @property
    def space(self) -> MemSpace | None:
        """Memory space for memory ops, ``None`` otherwise."""
        return _SPACE.get(self)


_MEMORY_OPS = frozenset(
    {
        OpClass.LOAD_GLOBAL,
        OpClass.STORE_GLOBAL,
        OpClass.LOAD_SHARED,
        OpClass.STORE_SHARED,
        OpClass.LOAD_LOCAL,
        OpClass.STORE_LOCAL,
    }
)

_LOAD_OPS = frozenset({OpClass.LOAD_GLOBAL, OpClass.LOAD_SHARED, OpClass.LOAD_LOCAL})

_STORE_OPS = frozenset({OpClass.STORE_GLOBAL, OpClass.STORE_SHARED, OpClass.STORE_LOCAL})

_LONG_LATENCY_OPS = frozenset(
    {
        OpClass.LOAD_GLOBAL,
        OpClass.STORE_GLOBAL,
        OpClass.LOAD_LOCAL,
        OpClass.STORE_LOCAL,
        OpClass.TEX,
    }
)

_SPACE = {
    OpClass.LOAD_GLOBAL: MemSpace.GLOBAL,
    OpClass.STORE_GLOBAL: MemSpace.GLOBAL,
    OpClass.LOAD_SHARED: MemSpace.SHARED,
    OpClass.STORE_SHARED: MemSpace.SHARED,
    OpClass.LOAD_LOCAL: MemSpace.LOCAL,
    OpClass.STORE_LOCAL: MemSpace.LOCAL,
}
