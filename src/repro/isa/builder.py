"""SSA-style construction API for warp instruction streams.

Benchmark kernels (:mod:`repro.kernels`) re-implement their algorithms at
warp granularity and use :class:`WarpBuilder` to emit the instruction
stream one warp would execute.  Values are virtual registers returned by
the emit methods; holding a value and reusing it later extends its live
range, which is how kernels express their true register pressure -- the
linear-scan allocator in :mod:`repro.compiler.regalloc` later derives the
"registers per thread to avoid spills" number (Table 1, column 2) from
exactly these live ranges.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.isa.opcodes import OpClass
from repro.isa.trace import WARP_SIZE, WarpOp


class WarpBuilder:
    """Accumulates :class:`WarpOp` records for a single warp.

    Example::

        b = WarpBuilder()
        addr = b.iconst()
        x = b.load_global([base + 4 * t for t in range(32)], addr)
        y = b.alu(x, x)
        b.store_global([out + 4 * t for t in range(32)], addr, y)
        ops = b.ops
    """

    def __init__(self, active: int = WARP_SIZE) -> None:
        if not 1 <= active <= WARP_SIZE:
            raise ValueError(f"active={active} outside [1, {WARP_SIZE}]")
        self._active = active
        self._next_vreg = 0
        self._ops: list[WarpOp] = []

    # ------------------------------------------------------------------
    # value producers
    # ------------------------------------------------------------------
    def _fresh(self) -> int:
        v = self._next_vreg
        self._next_vreg += 1
        return v

    def iconst(self) -> int:
        """Materialise an immediate / special value (tid, ctaid, constant).

        Modelled as a 1-operand-free ALU op producing a fresh register.
        """
        return self.alu()

    def alu(self, *srcs: int, active: int | None = None) -> int:
        """Emit an arithmetic instruction and return its result register."""
        dst = self._fresh()
        self._emit(OpClass.ALU, dst, srcs, None, active)
        return dst

    def alu_into(self, dst: int, *srcs: int, active: int | None = None) -> int:
        """Emit an ALU op that accumulates into an existing register.

        Reads ``dst`` and all ``srcs``, writes ``dst``.  This is the idiom
        for multiply-accumulate chains (e.g. the DGEMM register block),
        which keep many values live simultaneously.
        """
        self._emit(OpClass.ALU, dst, (dst, *srcs), None, active)
        return dst

    def sfu(self, *srcs: int, active: int | None = None) -> int:
        """Emit a special-function (rsqrt/sin/exp/...) instruction."""
        dst = self._fresh()
        self._emit(OpClass.SFU, dst, srcs, None, active)
        return dst

    def tex(self, *srcs: int, active: int | None = None) -> int:
        """Emit a texture fetch (Table 2: 400-cycle latency path)."""
        dst = self._fresh()
        self._emit(OpClass.TEX, dst, srcs, None, active)
        return dst

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load_global(
        self, addrs: Iterable[int], *srcs: int, active: int | None = None
    ) -> int:
        dst = self._fresh()
        self._emit(OpClass.LOAD_GLOBAL, dst, srcs, tuple(addrs), active)
        return dst

    def store_global(
        self, addrs: Iterable[int], *srcs: int, active: int | None = None
    ) -> None:
        self._emit(OpClass.STORE_GLOBAL, None, srcs, tuple(addrs), active)

    def load_shared(
        self, addrs: Iterable[int], *srcs: int, active: int | None = None
    ) -> int:
        dst = self._fresh()
        self._emit(OpClass.LOAD_SHARED, dst, srcs, tuple(addrs), active)
        return dst

    def store_shared(
        self, addrs: Iterable[int], *srcs: int, active: int | None = None
    ) -> None:
        self._emit(OpClass.STORE_SHARED, None, srcs, tuple(addrs), active)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Emit a CTA-wide barrier (``bar.sync``)."""
        self._ops.append(WarpOp(OpClass.BARRIER, active=self._active))

    def touch(self, *vregs: int, active: int | None = None) -> int:
        """Consume values without producing pressure of its own.

        Emits a single ALU op reading ``vregs``; used by kernels to keep a
        pool of values live across a region (e.g. ray-tracing state).
        """
        return self.alu(*vregs, active=active)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def ops(self) -> list[WarpOp]:
        """The emitted instruction stream (live list; do not mutate)."""
        return self._ops

    @property
    def active(self) -> int:
        return self._active

    @property
    def num_vregs(self) -> int:
        return self._next_vreg

    def _emit(
        self,
        op: OpClass,
        dst: int | None,
        srcs: Sequence[int],
        addrs: tuple[int, ...] | None,
        active: int | None,
    ) -> None:
        n = self._active if active is None else active
        if addrs is not None and len(addrs) != n:
            # Kernels frequently compute full-warp address vectors and then
            # execute with a partial mask (edge tiles); truncate to match.
            addrs = addrs[:n]
        self._ops.append(WarpOp(op, dst, tuple(srcs), addrs, n))
