"""Kernel metadata and trace containers.

A *kernel* in this reproduction is a benchmark trace generator plus the
static facts the paper's allocation algorithm consumes (Section 4.5):

* registers per thread required to avoid spills (compiler-derived),
* shared-memory bytes per CTA (programmer-declared),
* CTA shape (threads per CTA) and grid size.

The generated :class:`KernelTrace` holds one instruction stream per warp
per CTA.  The timing simulator replays these streams under a given
:class:`~repro.core.partition.MemoryPartition`; the same trace is reused
across all memory configurations, mirroring the paper's trace-driven
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.trace import WARP_SIZE, TraceStats, WarpOp


@dataclass(frozen=True, slots=True)
class LaunchConfig:
    """Grid/CTA shape of one kernel launch."""

    threads_per_cta: int
    num_ctas: int
    smem_bytes_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_cta <= 0 or self.threads_per_cta % WARP_SIZE:
            raise ValueError(
                f"threads_per_cta={self.threads_per_cta} must be a positive multiple of {WARP_SIZE}"
            )
        if self.num_ctas <= 0:
            raise ValueError("num_ctas must be positive")
        if self.smem_bytes_per_cta < 0:
            raise ValueError("smem_bytes_per_cta must be non-negative")

    @property
    def warps_per_cta(self) -> int:
        return self.threads_per_cta // WARP_SIZE

    @property
    def total_threads(self) -> int:
        return self.threads_per_cta * self.num_ctas

    @property
    def smem_bytes_per_thread(self) -> float:
        return self.smem_bytes_per_cta / self.threads_per_cta


@dataclass(frozen=True, slots=True)
class KernelInfo:
    """Static per-kernel facts consumed by the partitioning algorithm."""

    name: str
    regs_per_thread: int
    smem_bytes_per_thread: float
    threads_per_cta: int
    uses_texture: bool = False

    @property
    def rf_bytes_per_thread(self) -> int:
        """Register footprint in bytes (4-byte architectural registers)."""
        return 4 * self.regs_per_thread

    def rf_bytes(self, threads: int) -> int:
        return self.rf_bytes_per_thread * threads

    def smem_bytes(self, threads: int) -> float:
        return self.smem_bytes_per_thread * threads


@dataclass(slots=True)
class CTATrace:
    """Per-warp instruction streams of one CTA."""

    warps: list[list[WarpOp]]

    def __post_init__(self) -> None:
        if not self.warps:
            raise ValueError("CTA must contain at least one warp")
        barrier_counts = {
            sum(1 for op in w if op.op.name == "BARRIER") for w in self.warps
        }
        if len(barrier_counts) != 1:
            raise ValueError(
                "all warps in a CTA must execute the same number of barriers; "
                f"got counts {sorted(barrier_counts)}"
            )

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def total_ops(self) -> int:
        return sum(len(w) for w in self.warps)


@dataclass(slots=True)
class KernelTrace:
    """A full kernel launch: metadata plus all CTA traces."""

    name: str
    launch: LaunchConfig
    ctas: list[CTATrace]
    uses_texture: bool = False
    _stats: TraceStats | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.ctas) != self.launch.num_ctas:
            raise ValueError(
                f"launch declares {self.launch.num_ctas} CTAs but trace has {len(self.ctas)}"
            )
        for cta in self.ctas:
            if cta.num_warps != self.launch.warps_per_cta:
                raise ValueError(
                    f"CTA has {cta.num_warps} warps, launch declares {self.launch.warps_per_cta}"
                )

    @property
    def total_ops(self) -> int:
        return sum(cta.total_ops for cta in self.ctas)

    def stats(self) -> TraceStats:
        """Aggregate instruction-mix statistics (cached)."""
        if self._stats is None:
            self._stats = TraceStats.from_ops(
                op for cta in self.ctas for warp in cta.warps for op in warp
            )
        return self._stats

    def iter_ops(self):
        for cta in self.ctas:
            for warp in cta.warps:
                yield from warp
