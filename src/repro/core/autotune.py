"""Thread-count autotuning (paper Section 4.5).

"Some applications see higher performance with fewer than the maximum
number of threads, due to interactions with the thread scheduler and
memory system. ... Techniques like autotuning [24] can be used to
automatically optimize thread count."

:func:`autotune_threads` performs that search: it sweeps CTA-granular
thread targets under a given unified capacity, simulating each, and
returns the fastest configuration.  The freed register/shared capacity
at lower thread counts flows to the cache (the Section 4.5 remainder
rule), so reducing threads can *increase* cache capacity -- the trade
the paper's needle and GPU-mummer results hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.compiled import CompiledKernel
from repro.core.allocator import AllocationError, UnifiedAllocation, allocate_unified
from repro.core.partition import MAX_THREADS
from repro.sm.config import SMConfig
from repro.sm.result import SimResult
from repro.sm.simulator import simulate


@dataclass(frozen=True)
class AutotunePoint:
    threads: int
    allocation: UnifiedAllocation
    result: SimResult


@dataclass
class AutotuneResult:
    points: list[AutotunePoint]

    @property
    def best(self) -> AutotunePoint:
        return min(self.points, key=lambda p: p.result.cycles)

    @property
    def max_threads_point(self) -> AutotunePoint:
        return max(self.points, key=lambda p: p.threads)

    @property
    def gain_over_max_threads(self) -> float:
        """Speedup of the tuned point over simply maximising threads."""
        return self.max_threads_point.result.cycles / self.best.result.cycles


def autotune_threads(
    kernel: CompiledKernel,
    total_bytes: int,
    config: SMConfig | None = None,
    min_threads: int = 128,
) -> AutotuneResult:
    """Sweep CTA-granular thread targets; return every point and the best.

    Raises:
        AllocationError: If the kernel fits at no thread target.
    """
    tpc = kernel.launch.threads_per_cta
    points: list[AutotunePoint] = []
    target = (MAX_THREADS // tpc) * tpc
    lo = max(tpc, min_threads)
    while target >= lo:
        try:
            alloc = allocate_unified(
                total_bytes,
                regs_per_thread=kernel.regs_per_thread,
                threads_per_cta=tpc,
                smem_bytes_per_cta=kernel.launch.smem_bytes_per_cta,
                thread_target=target,
            )
        except AllocationError:
            target -= tpc
            continue
        if points and alloc.resident_threads == points[-1].threads:
            target -= tpc
            continue  # same residency as the previous point
        result = simulate(kernel, alloc.partition, config, thread_target=target)
        points.append(AutotunePoint(alloc.resident_threads, alloc, result))
        target -= tpc
    if not points:
        raise AllocationError(
            f"kernel {kernel.name!r} fits at no thread target in {total_bytes} bytes"
        )
    return AutotuneResult(points)
