"""Occupancy: how many threads/CTAs fit a partition.

Mirrors the hardware scheduler constraints of Sections 3.1 and 4.5: the
register file must hold ``regs_per_thread * 4`` bytes for every resident
thread, shared memory must hold one allocation per resident CTA, and the
SM supports at most 1024 threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import MAX_THREADS, MemoryPartition


@dataclass(frozen=True, slots=True)
class OccupancyLimits:
    """Per-resource CTA limits and the resulting residency."""

    ctas_by_threads: int
    ctas_by_registers: int
    ctas_by_smem: int
    threads_per_cta: int

    @property
    def resident_ctas(self) -> int:
        return max(
            0, min(self.ctas_by_threads, self.ctas_by_registers, self.ctas_by_smem)
        )

    @property
    def resident_threads(self) -> int:
        return self.resident_ctas * self.threads_per_cta

    @property
    def limiting_resource(self) -> str:
        if (
            self.ctas_by_threads <= self.ctas_by_registers
            and self.ctas_by_threads <= self.ctas_by_smem
        ):
            return "threads"
        if self.ctas_by_registers <= self.ctas_by_smem:
            return "registers"
        return "shared memory"


def occupancy_limits(
    partition: MemoryPartition,
    regs_per_thread: int,
    threads_per_cta: int,
    smem_bytes_per_cta: int,
    thread_target: int = MAX_THREADS,
) -> OccupancyLimits:
    """Compute per-resource CTA limits under a partition.

    Args:
        partition: The memory split to fit into.
        regs_per_thread: Architectural registers allocated per thread.
        threads_per_cta: CTA size of the kernel.
        smem_bytes_per_cta: Shared memory per CTA.
        thread_target: Upper bound on resident threads; the paper's
            sensitivity studies sweep this from 256 to 1024.

    Returns:
        :class:`OccupancyLimits`; ``resident_ctas`` may be zero when a
        single CTA does not fit, which callers must treat as "kernel
        cannot launch under this partition".
    """
    if regs_per_thread <= 0:
        raise ValueError("regs_per_thread must be positive")
    if threads_per_cta <= 0:
        raise ValueError("threads_per_cta must be positive")
    if smem_bytes_per_cta < 0:
        raise ValueError("smem_bytes_per_cta must be non-negative")
    target = min(thread_target, MAX_THREADS)
    rf_per_cta = 4 * regs_per_thread * threads_per_cta
    return OccupancyLimits(
        ctas_by_threads=target // threads_per_cta,
        ctas_by_registers=partition.rf_bytes // rf_per_cta,
        ctas_by_smem=(
            partition.smem_bytes // smem_bytes_per_cta
            if smem_bytes_per_cta > 0
            else target // threads_per_cta
        ),
        threads_per_cta=threads_per_cta,
    )


def max_resident_threads(
    partition: MemoryPartition,
    regs_per_thread: int,
    threads_per_cta: int,
    smem_bytes_per_cta: int,
    thread_target: int = MAX_THREADS,
) -> int:
    """Resident thread count under a partition (0 if nothing fits)."""
    return occupancy_limits(
        partition, regs_per_thread, threads_per_cta, smem_bytes_per_cta, thread_target
    ).resident_threads
