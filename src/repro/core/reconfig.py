"""Per-kernel repartitioning of unified memory (paper Section 4.4).

"Before each kernel launch, the system can reconfigure the memory banks
to change the memory partitioning.  Because the register file and shared
memory are not persistent across CTA boundaries, the only state that
must be considered when repartitioning is the cache.  As we use a
write-through cache, the cache does not contain dirty data to evict."

This module models multi-kernel applications under two policies:

* ``fixed`` -- one partition for the whole application, sized so every
  kernel fits (the paper's measurement setup: "choosing a single memory
  partitioning at the start of each benchmark"); capacity is the
  *envelope* of the kernels' register and shared demands, so diverse
  kernels squeeze each other's cache.
* ``per-kernel`` -- re-run the Section 4.5 allocator before each launch.
  Repartitioning costs a cache flush (cold misses afterwards -- modelled
  naturally, as each launch starts cold) plus a small drain latency.

Both policies start each kernel with a cold cache, so the measured
difference isolates what the paper argues for: per-kernel right-sizing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compiler.compiled import CompiledKernel
from repro.core.allocator import AllocationError, allocate_unified
from repro.core.partition import MAX_THREADS, DesignStyle, MemoryPartition
from repro.sm.config import SMConfig
from repro.sm.result import SimResult
from repro.sm.simulator import simulate

#: Cycles to drain the SM and invalidate cache tags when repartitioning.
#: Write-through means no dirty-data writeback (Section 4.4); the cost is
#: a pipeline drain plus tag invalidation.
REPARTITION_DRAIN_CYCLES = 200


class ReconfigPolicy(enum.Enum):
    FIXED = "fixed"
    PER_KERNEL = "per-kernel"


@dataclass(frozen=True)
class ApplicationPhase:
    """One kernel launch of a multi-kernel application."""

    kernel: str
    partition: MemoryPartition
    result: SimResult
    repartitioned: bool


@dataclass
class ApplicationResult:
    policy: ReconfigPolicy
    phases: list[ApplicationPhase]
    reconfigurations: int
    drain_cycles: float

    @property
    def total_cycles(self) -> float:
        return sum(p.result.cycles for p in self.phases) + self.drain_cycles

    @property
    def total_dram_accesses(self) -> int:
        return sum(p.result.dram_accesses for p in self.phases)

    def speedup_over(self, other: "ApplicationResult") -> float:
        return other.total_cycles / self.total_cycles


def fixed_envelope_partition(
    kernels: list[CompiledKernel], total_bytes: int
) -> MemoryPartition:
    """One partition that fits every kernel of the application.

    Registers and shared memory take the envelope (maximum) of the
    per-kernel demands at the highest common thread target; the
    remainder becomes cache.  The thread target backs off until the
    envelope fits the pool.
    """
    if not kernels:
        raise ValueError("application must contain at least one kernel")
    target = MAX_THREADS
    while target >= 32:
        rf = smem = 0
        feasible = True
        for k in kernels:
            tpc = k.launch.threads_per_cta
            ctas = max(1, min(target, MAX_THREADS) // tpc)
            k_rf = ctas * tpc * 4 * k.regs_per_thread
            k_smem = ctas * k.launch.smem_bytes_per_cta
            if k_rf + k_smem > total_bytes:
                feasible = False
                break
            rf = max(rf, k_rf)
            smem = max(smem, k_smem)
        if feasible and rf + smem <= total_bytes:
            return MemoryPartition(
                DesignStyle.UNIFIED,
                rf_bytes=rf,
                smem_bytes=smem,
                cache_bytes=total_bytes - rf - smem,
            )
        target -= 32
    raise AllocationError(
        f"no common thread target fits all {len(kernels)} kernels in "
        f"{total_bytes} bytes"
    )


def run_application(
    kernels: list[CompiledKernel],
    total_bytes: int,
    policy: ReconfigPolicy | str = ReconfigPolicy.PER_KERNEL,
    config: SMConfig | None = None,
    drain_cycles: int = REPARTITION_DRAIN_CYCLES,
) -> ApplicationResult:
    """Run a multi-kernel application under a reconfiguration policy."""
    policy = ReconfigPolicy(policy) if isinstance(policy, str) else policy
    if not kernels:
        raise ValueError("application must contain at least one kernel")
    phases: list[ApplicationPhase] = []
    reconfigs = 0
    if policy is ReconfigPolicy.FIXED:
        partition = fixed_envelope_partition(kernels, total_bytes)
        for k in kernels:
            phases.append(
                ApplicationPhase(
                    kernel=k.name,
                    partition=partition,
                    result=simulate(k, partition, config),
                    repartitioned=False,
                )
            )
        return ApplicationResult(policy, phases, 0, 0.0)

    previous: MemoryPartition | None = None
    for k in kernels:
        alloc = allocate_unified(
            total_bytes,
            regs_per_thread=k.regs_per_thread,
            threads_per_cta=k.launch.threads_per_cta,
            smem_bytes_per_cta=k.launch.smem_bytes_per_cta,
        )
        changed = previous is not None and alloc.partition != previous
        if changed:
            reconfigs += 1
        phases.append(
            ApplicationPhase(
                kernel=k.name,
                partition=alloc.partition,
                result=simulate(k, alloc.partition, config),
                repartitioned=changed,
            )
        )
        previous = alloc.partition
    return ApplicationResult(policy, phases, reconfigs, reconfigs * drain_cycles)
