"""ASCII rendering of a partition's bank layout (paper Figures 5-6).

Figures 5 and 6 of the paper illustrate how the three storage types map
onto the SM's 8 clusters x 4 banks in the unified and baseline designs.
:func:`bank_layout` renders the same picture for any
:class:`~repro.core.partition.MemoryPartition`: each bank is drawn as a
column whose rows are filled proportionally by register file (R),
shared memory (S), and cache (C) capacity.

Used by ``python -m repro run --show-layout`` and handy in notebooks::

    >>> print(bank_layout(partitioned_baseline()))
"""

from __future__ import annotations

from repro.core.partition import (
    BANKS_PER_CLUSTER,
    NUM_BANKS,
    NUM_CLUSTERS,
    DesignStyle,
    MemoryPartition,
)

_GLYPH = {"rf": "R", "smem": "S", "cache": "C", "none": "."}


def _bank_column(partition: MemoryPartition, rows: int) -> list[str]:
    """Fill pattern of one bank, top-down, for the unified design."""
    total = partition.total_bytes or 1
    rf_rows = round(rows * partition.rf_bytes / total)
    smem_rows = round(rows * partition.smem_bytes / total)
    cache_rows = rows - rf_rows - smem_rows
    return (
        [_GLYPH["rf"]] * rf_rows
        + [_GLYPH["smem"]] * smem_rows
        + [_GLYPH["cache"]] * max(0, cache_rows)
    )[:rows]


def bank_layout(partition: MemoryPartition, rows: int = 8) -> str:
    """Render the SM's 32 banks with their per-design contents."""
    header = partition.describe()
    lines = [header, "=" * len(header)]
    if partition.style is DesignStyle.UNIFIED:
        column = _bank_column(partition, rows)
        lines.append(
            f"one pool: {NUM_CLUSTERS} clusters x {BANKS_PER_CLUSTER} banks of "
            f"{partition.rf_geometry.bank_kb:g} KB; every bank holds all three"
        )
        for r in range(rows):
            cells = " ".join(column[r] * BANKS_PER_CLUSTER for _ in range(NUM_CLUSTERS))
            lines.append(f"  {cells}")
    else:
        lines.append(
            f"register file: {NUM_BANKS} banks of "
            f"{partition.rf_geometry.bank_kb:g} KB"
        )
        for _ in range(max(2, rows // 3)):
            lines.append(
                "  " + " ".join("R" * BANKS_PER_CLUSTER for _ in range(NUM_CLUSTERS))
            )
        pool = "shared/cache pool" if partition.style is DesignStyle.FERMI_LIKE else None
        if pool:
            lines.append(
                f"{pool}: {NUM_BANKS} banks of {partition.smem_geometry.bank_kb:g} KB "
                f"(split {partition.smem_kb:g}/{partition.cache_kb:g} KB)"
            )
            mix = _bank_column(
                MemoryPartition(
                    DesignStyle.UNIFIED,
                    rf_bytes=1,
                    smem_bytes=partition.smem_bytes,
                    cache_bytes=partition.cache_bytes,
                ),
                max(2, rows // 3),
            )
            for r in range(max(2, rows // 3)):
                g = mix[r] if r < len(mix) else _GLYPH["cache"]
                lines.append(
                    "  " + " ".join(g * BANKS_PER_CLUSTER for _ in range(NUM_CLUSTERS))
                )
        else:
            lines.append(
                f"shared memory: {NUM_BANKS} banks of "
                f"{partition.smem_geometry.bank_kb:g} KB"
            )
            lines.append(
                "  " + " ".join("S" * BANKS_PER_CLUSTER for _ in range(NUM_CLUSTERS))
            )
            lines.append(
                f"cache: {NUM_BANKS} banks of {partition.cache_geometry.bank_kb:g} KB"
            )
            lines.append(
                "  " + " ".join("C" * BANKS_PER_CLUSTER for _ in range(NUM_CLUSTERS))
            )
    lines.append("  R = registers   S = shared memory   C = cache")
    return "\n".join(lines)
