"""Factory functions for the design points the paper evaluates."""

from __future__ import annotations

from repro.core.partition import KB, DesignStyle, MemoryPartition

#: The two shared/cache splits the Fermi-like design offers at 384 KB
#: total capacity (Section 6.3): (shared_bytes, cache_bytes).
FERMI_SPLITS = ((96 * KB, 32 * KB), (32 * KB, 96 * KB))


def partitioned_baseline() -> MemoryPartition:
    """The Section 2.1 baseline: 256 KB RF / 64 KB shared / 64 KB cache."""
    return MemoryPartition(
        DesignStyle.PARTITIONED,
        rf_bytes=256 * KB,
        smem_bytes=64 * KB,
        cache_bytes=64 * KB,
    )


def partitioned_design(
    rf_kb: float, smem_kb: float, cache_kb: float
) -> MemoryPartition:
    """An arbitrary hard-partitioned design (used by the limit studies)."""
    return MemoryPartition(
        DesignStyle.PARTITIONED,
        rf_bytes=int(rf_kb * KB),
        smem_bytes=int(smem_kb * KB),
        cache_bytes=int(cache_kb * KB),
    )


def fermi_like(split: int, rf_kb: float = 256) -> MemoryPartition:
    """The limited-flexibility design of Section 6.3.

    Args:
        split: 0 for 96 KB shared / 32 KB cache, 1 for 32 KB shared /
            96 KB cache.
        rf_kb: Register file capacity (fixed at 256 KB in the paper).
    """
    smem, cache = FERMI_SPLITS[split]
    return MemoryPartition(
        DesignStyle.FERMI_LIKE,
        rf_bytes=int(rf_kb * KB),
        smem_bytes=smem,
        cache_bytes=cache,
    )


def fermi_like_best_split(smem_bytes_needed_per_sm: float) -> MemoryPartition:
    """Pick the Fermi split a programmer would choose.

    The paper lets the programmer select the configuration per kernel;
    the natural heuristic is: take the large shared memory only when the
    kernel's aggregate shared-memory demand exceeds the small option.
    Experiments that want the true best may simulate both splits and keep
    the faster one (see :mod:`repro.experiments.figure10`).
    """
    small_smem = FERMI_SPLITS[1][0]
    split = 0 if smem_bytes_needed_per_sm > small_smem else 1
    return fermi_like(split)
