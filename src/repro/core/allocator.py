"""The automated allocation algorithm of Section 4.5.

Given the compiler-reported register requirement, the
programmer-declared shared memory per CTA, and the total unified
capacity, the hardware scheduler maximises the resident thread count and
assigns all remaining storage to the primary data cache:

1. registers/thread to avoid spills (Table 1, column 2) -- from the
   compiler (:func:`repro.compiler.liveness.max_live_registers`);
2. shared memory per CTA -- from the kernel launch;
3. thread count = capacity // per-thread footprint (CTA-granular);
4. cache = remainder.

The paper notes some applications peak below the maximum thread count;
``thread_target`` lets experiment drivers sweep that dimension like the
paper's autotuning remark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import MAX_THREADS, DesignStyle, MemoryPartition


class AllocationError(ValueError):
    """The kernel cannot fit even one CTA in the unified capacity."""


@dataclass(frozen=True, slots=True)
class UnifiedAllocation:
    """Result of the Section 4.5 algorithm."""

    partition: MemoryPartition
    resident_ctas: int
    resident_threads: int

    @property
    def cache_bytes(self) -> int:
        return self.partition.cache_bytes


def allocate_unified(
    total_bytes: int,
    regs_per_thread: int,
    threads_per_cta: int,
    smem_bytes_per_cta: int = 0,
    thread_target: int = MAX_THREADS,
) -> UnifiedAllocation:
    """Partition a unified memory of ``total_bytes`` for one kernel.

    Args:
        total_bytes: Unified pool capacity (the paper evaluates 128 KB,
            256 KB, and 384 KB in Table 6).
        regs_per_thread: Registers per thread that avoid spills.
        threads_per_cta: Kernel CTA size (threads are scheduled in CTA
            granularity).
        smem_bytes_per_cta: Programmer-declared shared memory per CTA.
        thread_target: Cap on resident threads (<= 1024).

    Returns:
        The unified :class:`~repro.core.partition.MemoryPartition` plus
        the residency it supports.

    Raises:
        AllocationError: If one CTA's registers + shared memory exceed
            the pool.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if regs_per_thread <= 0:
        raise ValueError("regs_per_thread must be positive")
    if threads_per_cta <= 0:
        raise ValueError("threads_per_cta must be positive")
    if smem_bytes_per_cta < 0:
        raise ValueError("smem_bytes_per_cta must be non-negative")

    target = min(thread_target, MAX_THREADS)
    rf_per_cta = 4 * regs_per_thread * threads_per_cta
    bytes_per_cta = rf_per_cta + smem_bytes_per_cta
    ctas = min(target // threads_per_cta, total_bytes // bytes_per_cta)
    if ctas <= 0:
        raise AllocationError(
            f"one CTA needs {bytes_per_cta} bytes "
            f"({rf_per_cta} registers + {smem_bytes_per_cta} shared) but the "
            f"unified pool holds only {total_bytes} bytes"
            if total_bytes < bytes_per_cta
            else f"thread target {target} below one CTA of {threads_per_cta} threads"
        )
    rf = ctas * rf_per_cta
    smem = ctas * smem_bytes_per_cta
    partition = MemoryPartition(
        DesignStyle.UNIFIED,
        rf_bytes=rf,
        smem_bytes=smem,
        cache_bytes=total_bytes - rf - smem,
    )
    return UnifiedAllocation(
        partition=partition,
        resident_ctas=ctas,
        resident_threads=ctas * threads_per_cta,
    )
