"""Memory partitions and bank geometry.

A :class:`MemoryPartition` is one concrete division of an SM's local
storage into register file, shared memory, and cache, together with the
bank organisation of Section 4.2:

* **Partitioned** (baseline, Section 2.1): the register file lives in 32
  banks of 16-byte width (8 KB each at the 256 KB baseline); shared
  memory and cache each live in their own 32 banks of 4-byte width
  (2 KB each at 64 KB).
* **Unified** (Section 4.2): one pool of 32 banks, 16 bytes wide, shared
  by all three storage types; bank capacity is total/32 (12 KB for the
  384 KB design).  Register, shared, and cache conflicts can now
  interact ("arbitration conflicts", Section 4.3).
* **Fermi-like** (Section 6.3): the register file keeps its own banks;
  shared memory and cache share one pool that can be split 96/32 or
  32/96 KB.

The SM always has 8 clusters x 4 banks = 32 banks so that bandwidth is
constant across designs (Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

KB = 1024

#: SIMT clusters per SM (Section 2.1).
NUM_CLUSTERS = 8
#: Banks per cluster; 8 x 4 = 32 banks per SM in every design.
BANKS_PER_CLUSTER = 4
#: Total banks per SM.
NUM_BANKS = NUM_CLUSTERS * BANKS_PER_CLUSTER
#: Bank width in the register file and in unified banks (bytes).
BANK_WIDTH = 16
#: Cache line size in bytes (both designs, Section 4.2).
CACHE_LINE = 128
#: Hardware thread capacity of one SM (Section 2.1).
MAX_THREADS = 1024


class DesignStyle(enum.Enum):
    """How the three storage types map onto banks."""

    PARTITIONED = "partitioned"
    UNIFIED = "unified"
    FERMI_LIKE = "fermi-like"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DesignStyle.{self.name}"


@dataclass(frozen=True, slots=True)
class BankGeometry:
    """Bank sizing of one storage structure (used by the energy model)."""

    num_banks: int
    bank_bytes: int

    @property
    def bank_kb(self) -> float:
        return self.bank_bytes / KB

    @property
    def total_bytes(self) -> int:
        return self.num_banks * self.bank_bytes


@dataclass(frozen=True, slots=True)
class MemoryPartition:
    """One concrete split of SM local storage.

    Use the factories in :mod:`repro.core.configs` and
    :mod:`repro.core.allocator` rather than constructing directly.
    """

    style: DesignStyle
    rf_bytes: int
    smem_bytes: int
    cache_bytes: int

    def __post_init__(self) -> None:
        for label, v in (
            ("rf_bytes", self.rf_bytes),
            ("smem_bytes", self.smem_bytes),
            ("cache_bytes", self.cache_bytes),
        ):
            if v < 0:
                raise ValueError(f"{label} must be non-negative, got {v}")
        if self.rf_bytes == 0:
            raise ValueError("a partition must include register file capacity")

    # -- capacity -------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.rf_bytes + self.smem_bytes + self.cache_bytes

    @property
    def rf_kb(self) -> float:
        return self.rf_bytes / KB

    @property
    def smem_kb(self) -> float:
        return self.smem_bytes / KB

    @property
    def cache_kb(self) -> float:
        return self.cache_bytes / KB

    # -- bank geometry (energy model input) ------------------------------
    @property
    def rf_geometry(self) -> BankGeometry:
        if self.style is DesignStyle.UNIFIED:
            return self._unified_geometry
        return BankGeometry(NUM_BANKS, self.rf_bytes // NUM_BANKS)

    @property
    def smem_geometry(self) -> BankGeometry:
        if self.style is DesignStyle.UNIFIED:
            return self._unified_geometry
        if self.style is DesignStyle.FERMI_LIKE:
            return self._fermi_pool_geometry
        return BankGeometry(NUM_BANKS, self.smem_bytes // NUM_BANKS)

    @property
    def cache_geometry(self) -> BankGeometry:
        if self.style is DesignStyle.UNIFIED:
            return self._unified_geometry
        if self.style is DesignStyle.FERMI_LIKE:
            return self._fermi_pool_geometry
        return BankGeometry(NUM_BANKS, self.cache_bytes // NUM_BANKS)

    @property
    def _unified_geometry(self) -> BankGeometry:
        return BankGeometry(NUM_BANKS, self.total_bytes // NUM_BANKS)

    @property
    def _fermi_pool_geometry(self) -> BankGeometry:
        pool = self.smem_bytes + self.cache_bytes
        return BankGeometry(NUM_BANKS, pool // NUM_BANKS)

    # -- tag storage (Section 4.1 overhead discussion) --------------------
    @property
    def tag_bytes(self) -> int:
        """Approximate cache tag storage.

        Calibrated to the paper's two data points (Section 4.1): 1.125 KB
        of tags for the 64 KB baseline cache (18 bits per 128-byte line)
        and 7.125 KB for a fully-cache 384 KB unified pool (19 bits per
        line; the larger pool needs one extra state bit per line).
        """
        lines = self.cache_bytes // CACHE_LINE
        bits_per_line = 18 if self.cache_bytes <= 64 * KB else 19
        return lines * bits_per_line // 8

    def describe(self) -> str:
        return (
            f"{self.style.value}: RF {self.rf_kb:g} KB / "
            f"shared {self.smem_kb:g} KB / cache {self.cache_kb:g} KB "
            f"(total {self.total_bytes / KB:g} KB)"
        )
