"""The paper's contribution: unified local-memory partitioning.

This package holds the design points the paper compares (Section 6):

* :func:`~repro.core.configs.partitioned_baseline` -- the hard-partitioned
  SM of Section 2.1: 256 KB register file, 64 KB shared memory, 64 KB
  cache, each in its own banks.
* :func:`~repro.core.configs.fermi_like` -- the limited-flexibility design
  of Section 6.3: a fixed 256 KB register file plus 128 KB that can be
  split 96/32 or 32/96 between shared memory and cache.
* :func:`~repro.core.allocator.allocate_unified` -- the fully unified
  design of Section 4 with the automated allocation algorithm of
  Section 4.5: compiler-reported registers/thread, programmer-declared
  shared memory, scheduler-maximised thread count, remainder to cache.

A :class:`~repro.core.partition.MemoryPartition` captures one concrete
split plus its bank geometry (Section 4.2), and is what the SM simulator
and energy model consume.
"""

from repro.core.allocator import AllocationError, allocate_unified
from repro.core.autotune import AutotuneResult, autotune_threads
from repro.core.configs import (
    FERMI_SPLITS,
    fermi_like,
    fermi_like_best_split,
    partitioned_baseline,
    partitioned_design,
)
from repro.core.occupancy import max_resident_threads, occupancy_limits
from repro.core.reconfig import (
    ApplicationResult,
    ReconfigPolicy,
    fixed_envelope_partition,
    run_application,
)
from repro.core.partition import BankGeometry, DesignStyle, MemoryPartition

__all__ = [
    "AllocationError",
    "ApplicationResult",
    "AutotuneResult",
    "BankGeometry",
    "DesignStyle",
    "FERMI_SPLITS",
    "MemoryPartition",
    "allocate_unified",
    "autotune_threads",
    "ReconfigPolicy",
    "fermi_like",
    "fermi_like_best_split",
    "fixed_envelope_partition",
    "max_resident_threads",
    "occupancy_limits",
    "partitioned_baseline",
    "partitioned_design",
    "run_application",
]
