"""SimResult (de)serialization for the on-disk artifact cache.

The paper's methodology is "trace once, simulate many configurations"
(Section 5.1); the artifact cache extends that to "simulate once, report
many times".  A :class:`~repro.sm.result.SimResult` is a small bundle of
counters plus its :class:`~repro.core.partition.MemoryPartition`, so we
serialize to JSON: human-inspectable, diffable, and exact for the
integer counters.  Cycle counts are floats; Python's ``json`` emits
``repr``-faithful floats, so the round trip is bit-exact.

``load_result(save_result(r))`` reproduces ``r`` field for field; the
round trip is verified by unit test.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.core.partition import DesignStyle, MemoryPartition
from repro.memory.banks import ConflictHistogram
from repro.memory.cache import CacheStats
from repro.sm.result import EnergyCounts, SimResult

#: Bump whenever the SimResult schema changes; cached entries written
#: under another version are treated as stale and regenerated.
#: v2: added ``stall_cycles`` (observability layer).
#: The non-blocking memory system (MSHRs + banked DRAM) did NOT bump
#: this: its per-run statistics ride inside the pre-existing ``notes``
#: dict (empty under the default blocking config), so the golden
#: fixtures that pin ``"version": 2`` stay bit-identical.
RESULT_FORMAT_VERSION = 2


def _counter_dict(obj) -> dict:
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _counter_from_dict(cls, d: dict):
    return cls(**{f.name: d[f.name] for f in fields(cls)})


def partition_to_dict(p: MemoryPartition) -> dict:
    """JSON-safe form of a partition (style string + byte sizes)."""
    return {
        "style": p.style.value,
        "rf_bytes": p.rf_bytes,
        "smem_bytes": p.smem_bytes,
        "cache_bytes": p.cache_bytes,
    }


def partition_from_dict(d: dict) -> MemoryPartition:
    """Inverse of :func:`partition_to_dict`."""
    return MemoryPartition(
        style=DesignStyle(d["style"]),
        rf_bytes=d["rf_bytes"],
        smem_bytes=d["smem_bytes"],
        cache_bytes=d["cache_bytes"],
    )


def result_to_dict(result: SimResult) -> dict:
    """Encode one simulation outcome as a JSON-compatible dict."""
    return {
        "version": RESULT_FORMAT_VERSION,
        "kernel": result.kernel,
        "partition": partition_to_dict(result.partition),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "resident_ctas": result.resident_ctas,
        "resident_threads": result.resident_threads,
        "regs_per_thread": result.regs_per_thread,
        "bank_conflict_cycles": result.bank_conflict_cycles,
        "conflict_histogram": _counter_dict(result.conflict_histogram),
        "cache_stats": _counter_dict(result.cache_stats),
        "dram_accesses": result.dram_accesses,
        "dram_bytes": result.dram_bytes,
        "energy_counts": _counter_dict(result.energy_counts),
        "limiting_resource": result.limiting_resource,
        "notes": result.notes,
        "stall_cycles": result.stall_cycles,
    }


def result_from_dict(d: dict) -> SimResult:
    """Decode :func:`result_to_dict` output.

    Raises:
        ValueError: If the dict was written under another schema version.
    """
    if d.get("version") != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported SimResult format version {d.get('version')!r}"
        )
    return SimResult(
        kernel=d["kernel"],
        partition=partition_from_dict(d["partition"]),
        cycles=d["cycles"],
        instructions=d["instructions"],
        resident_ctas=d["resident_ctas"],
        resident_threads=d["resident_threads"],
        regs_per_thread=d["regs_per_thread"],
        bank_conflict_cycles=d["bank_conflict_cycles"],
        conflict_histogram=_counter_from_dict(
            ConflictHistogram, d["conflict_histogram"]
        ),
        cache_stats=_counter_from_dict(CacheStats, d["cache_stats"]),
        dram_accesses=d["dram_accesses"],
        dram_bytes=d["dram_bytes"],
        energy_counts=_counter_from_dict(EnergyCounts, d["energy_counts"]),
        limiting_resource=d["limiting_resource"],
        notes=d["notes"],
        stall_cycles=d["stall_cycles"],
    )


def save_result(result: SimResult, path: str | Path) -> None:
    """Write one simulation outcome to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path: str | Path) -> SimResult:
    """Read a simulation outcome written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
