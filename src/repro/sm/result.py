"""Simulation outputs: timing, traffic, and energy-relevant counters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.partition import MemoryPartition
from repro.memory.banks import ConflictHistogram
from repro.memory.cache import CacheStats


@dataclass(slots=True)
class EnergyCounts:
    """Event counts the energy model prices (Section 5.2)."""

    mrf_reads: int = 0
    mrf_writes: int = 0
    orf_reads: int = 0
    orf_writes: int = 0
    lrf_reads: int = 0
    lrf_writes: int = 0
    shared_row_reads: int = 0
    shared_row_writes: int = 0
    cache_row_reads: int = 0
    cache_row_writes: int = 0
    tag_lookups: int = 0
    dram_bits: int = 0

    @property
    def mrf_accesses(self) -> int:
        """Main-register-file reads plus writes."""
        return self.mrf_reads + self.mrf_writes

    @property
    def shared_rows(self) -> int:
        """Shared-memory data-row reads plus writes."""
        return self.shared_row_reads + self.shared_row_writes

    @property
    def cache_rows(self) -> int:
        """Cache data-row reads plus writes."""
        return self.cache_row_reads + self.cache_row_writes


@dataclass(slots=True)
class SimResult:
    """Outcome of simulating one kernel launch under one partition."""

    kernel: str
    partition: MemoryPartition
    cycles: float
    instructions: int
    resident_ctas: int
    resident_threads: int
    regs_per_thread: int
    bank_conflict_cycles: int
    conflict_histogram: ConflictHistogram
    cache_stats: CacheStats
    dram_accesses: int
    dram_bytes: int
    energy_counts: EnergyCounts
    limiting_resource: str = ""
    notes: dict = field(default_factory=dict)
    #: Per-cause stall cycles summed across warps (empty unless the run
    #: was instrumented with a :class:`repro.obs.Collector`).  Keys are
    #: :data:`repro.obs.STALL_CAUSES`.
    stall_cycles: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Warp instructions issued per simulated cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Performance relative to a baseline run of the same kernel.

        Both runs execute the same total work (the full launch), so the
        cycle ratio is the speedup.
        """
        if self.kernel != baseline.kernel:
            raise ValueError(
                f"cannot compare runs of different kernels: "
                f"{self.kernel!r} vs {baseline.kernel!r}"
            )
        if self.cycles <= 0:
            raise ValueError("run has no cycles")
        return baseline.cycles / self.cycles

    def dram_traffic_ratio(self, baseline: "SimResult") -> float:
        """DRAM accesses of this run relative to ``baseline``'s.

        The Table 1 DRAM columns and the cache-capacity studies compare
        designs by off-chip traffic; below 1.0 means the larger cache
        absorbed misses.  Two traffic-free runs compare as 1.0.
        """
        if baseline.dram_accesses == 0:
            return 1.0 if self.dram_accesses == 0 else float("inf")
        return self.dram_accesses / baseline.dram_accesses

    def summary(self) -> str:
        """One-line human-readable digest of the run (for CLI output)."""
        return (
            f"{self.kernel}: {self.cycles:.0f} cycles, IPC {self.ipc:.3f}, "
            f"{self.resident_threads} threads, "
            f"{self.dram_accesses} DRAM accesses, "
            f"{self.bank_conflict_cycles} conflict cycles "
            f"[{self.partition.describe()}]"
        )
