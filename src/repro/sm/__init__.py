"""Single-SM timing simulator.

Reproduces the paper's custom trace-driven SM simulator (Section 5.1):

* one SM, in-order, single-issue, 32-wide SIMT (Table 2);
* Table 2 latencies: ALU 8, SFU 20, shared memory 20, texture 400,
  DRAM 400 cycles, with 8 bytes/cycle of DRAM bandwidth (the SM's share
  of chip bandwidth);
* bank conflicts charged with the paper's simplified per-warp-instruction
  model (Section 6.1) via :mod:`repro.memory.banks`;
* CTA-granular occupancy against a
  :class:`~repro.core.partition.MemoryPartition`, with new CTAs launched
  as resident ones retire;
* CTA-wide barriers, write-through caching, and per-sector DRAM
  accounting.

The engine is event-driven rather than cycle-stepped: a warp's next
issue time is fully determined when its previous instruction issues
(dependences, barrier releases, and memory completions are all known),
so the simulator pops the earliest-ready warp from a heap and serialises
it on the single issue port.  This is exact for the modelled machine and
keeps pure-Python simulation fast enough to sweep the paper's full
design space.

The two-level warp scheduler of the baseline (ref [8]) is represented at
compile time: the RF-hierarchy pass flushes LRF/ORF values to the MRF at
every deschedule point, which is the architecturally visible effect of
descheduling.  Issue arbitration itself uses ready-time order (oldest
ready first), which prior work shows performs equivalently to the
two-level scheme it approximates.
"""

from repro.sm.config import SMConfig
from repro.sm.result import EnergyCounts, SimResult
from repro.sm.simulator import SimulationError, simulate

__all__ = ["EnergyCounts", "SMConfig", "SimResult", "SimulationError", "simulate"]
