"""Event-driven single-SM timing simulation.

See the package docstring (:mod:`repro.sm`) for the modelling contract.
The main loop pops the earliest-ready warp from a heap, serialises it on
the single issue port, resolves its instruction against the bank model /
cache / DRAM, and schedules the warp's next readiness.  Each warp
instruction is visited exactly once, so the loop runs in
``O(total_ops * log(resident_warps))``; the first simulation of a kernel
additionally pays a one-time ``O(total_ops * warp_width)`` planning pass
(:mod:`repro.compiler.precompute`) whose tables every later simulation
of the same :class:`CompiledKernel` reuses.

The loop dispatches on the plan's dense ``kind`` int instead of the
``op.op.space`` / ``is_load`` enum-property chain, resolves bank
outcomes through the bank model's ``planned_*`` memo lookups, and
accumulates histogram buckets, arbitration conflicts, and energy events
in local counters that are merged into the :class:`ConflictHistogram` /
:class:`~repro.sm.result.EnergyCounts` once per run.  All of this is
strictly a constant-factor optimisation: every simulated quantity --
cycles, conflict histogram, cache stats, DRAM traffic and request
ordering, energy counts, stall attribution -- is bit-identical to the
straightforward per-access evaluation, which the golden-result tests
(``tests/integration/test_golden_results.py``) pin end to end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.compiler.compiled import CompiledKernel, CompiledOp
from repro.compiler.precompute import (
    K_BARRIER,
    K_GLOBAL_LOAD,
    K_SHARED_LOAD,
    K_SHARED_STORE,
    K_TEX,
    plan_kernel,
)
from repro.core.partition import MemoryPartition
from repro.memory.banks import make_bank_model
from repro.memory.cache import DataCache
from repro.obs.collector import (
    CAUSE_BARRIER,
    CAUSE_MEMORY,
    CAUSE_RAW,
)
from repro.sm.config import SMConfig
from repro.sm.cta_scheduler import CTAScheduler, ResidentCTA
from repro.sm.result import EnergyCounts, SimResult

class SimulationError(RuntimeError):
    """The simulation reached an inconsistent state (internal bug guard)."""


@dataclass(slots=True)
class _WarpState:
    ops: list[CompiledOp]
    #: Per-op plans aligned with ``ops`` (see repro.compiler.precompute).
    plans: list
    cta: ResidentCTA
    pc: int = 0
    #: Architectural register -> cycle its pending write completes.
    pending: dict[int, float] = field(default_factory=dict)
    #: Run-unique warp id (observability track key).
    wid: int = 0
    #: Warp index within its CTA.
    widx: int = 0

    def next_ready(self, now: float) -> float:
        """Earliest cycle the next instruction's operands are available."""
        op = self.ops[self.pc]
        ready = now
        pending = self.pending
        if pending:
            # RAW hazards only: writes drain in program order through the
            # in-order pipeline, so WAW to a recycled register is safe.
            for r in op.srcs:
                t = pending.get(r)
                if t is not None and t > ready:
                    ready = t
        return ready


def resolved_engine(kernel: CompiledKernel, config: SMConfig | None) -> str:
    """Engine the *next* ``simulate`` of ``kernel`` would actually run.

    The dispatch seam above is tiered: even under
    ``engine == "columnar"`` a kernel's first simulation runs the event
    core (and warms the plan cache), so the configured engine and the
    executed one can differ.  Callers that record provenance (run
    manifests, ``Runner.sim_metrics``) ask here instead of duplicating
    the warm-key rule.
    """
    cfg = config or SMConfig()
    if cfg.engine != "columnar":
        return "event"
    warm_key = ("colwarm", cfg.cache_line_bytes)
    return "columnar" if warm_key in kernel._plan_cache else "event"


def simulate(
    kernel: CompiledKernel,
    partition: MemoryPartition,
    config: SMConfig | None = None,
    thread_target: int | None = None,
    collector=None,
    dram=None,
    cta_source=None,
) -> SimResult:
    """Run one kernel launch to completion under a memory partition.

    The SM's three external dependencies are injectable, which is what
    makes it a composable chip component (:mod:`repro.chip`): its DRAM
    port (``dram``), its supply of work (``cta_source``), and its
    observability sink (``collector``).  With all three left at their
    defaults this is exactly the paper's single-SM methodology -- a
    private 1/32-bandwidth channel and the whole grid.

    Args:
        kernel: Compiled kernel (see :func:`repro.compiler.compile_kernel`).
        partition: Memory split to simulate (baseline, Fermi-like, or
            unified).
        config: SM latencies/bandwidth; defaults to Table 2 values.
        thread_target: Optional cap on resident threads (the paper's
            256..1024 sweeps); ``None`` lets occupancy decide.
        collector: Optional :class:`repro.obs.Collector` receiving stall
            attribution, interval metrics, and trace events.  ``None``
            (or any collector with ``enabled == False``) keeps the hot
            loop uninstrumented; instrumentation never changes timing.
        dram: Optional DRAM port standing in for the SM's private
            channel -- anything with ``request(now, nbytes)`` plus the
            ``accesses`` / ``bytes_transferred`` / ``bits_transferred``
            / ``free_at`` counters (e.g. a
            :class:`repro.memory.dram.DRAMPort`).  The caller owns its
            observer wiring; the default channel is built by
            :meth:`SMConfig.make_dram_channel` with the collector's
            transfer hook attached.
        cta_source: Optional work supply for the CTA scheduler (see
            :class:`repro.sm.cta_scheduler.CTAScheduler`); ``None``
            launches the whole grid on this SM in index order.

    Returns:
        A :class:`~repro.sm.result.SimResult` with cycles, DRAM traffic,
        bank-conflict statistics, and energy-relevant event counts (plus
        per-cause stall totals when a collector was attached).

    Raises:
        repro.sm.cta_scheduler.LaunchError: If no CTA fits the partition.
    """
    cfg = config or SMConfig()
    obs = collector if collector is not None and collector.enabled else None
    if cfg.engine == "columnar":
        # Dispatch seam: warm kernels replay precompiled columnar warp
        # programs (bit-identical results, ~2x faster once lowered) --
        # instrumented or not; a live collector routes to the replay
        # loop's instrumented runner, which fires the same hooks as the
        # event loop below at the same times (see repro.sm.replay).
        #
        # Tiered warm-up: lowering a kernel (signatures + programs)
        # costs about as much as one event-engine run, so it only pays
        # off from a kernel's second simulation on.  The first sight of
        # a kernel runs the event core and marks it; sweeps (capacity,
        # thread-target, ablation grids) replay columnar from then on,
        # while one-shot simulations never pay an unamortised compile.
        warm_key = ("colwarm", cfg.cache_line_bytes)
        if warm_key in kernel._plan_cache:
            from repro.sm.replay import replay_simulate

            return replay_simulate(
                kernel,
                partition,
                cfg,
                thread_target=thread_target,
                dram=dram,
                cta_source=cta_source,
                collector=collector,
            )
        kernel._plan_cache[warm_key] = True
    scheduler = CTAScheduler(kernel, partition, thread_target, cta_source=cta_source)
    banks = make_bank_model(partition, cluster_port=cfg.cluster_port_banks)
    # The unified allocator can leave any remainder as cache; model the
    # whole sets and keep the dropped bytes visible in cache.slack_bytes.
    cache = DataCache(
        partition.cache_bytes,
        assoc=cfg.cache_assoc,
        line_bytes=cfg.cache_line_bytes,
        misaligned="floor",
    )
    if dram is None:
        dram = cfg.make_dram_channel(
            observer=obs.dram_transfer if obs is not None else None
        )
    counts = EnergyCounts()
    line_bytes = cfg.cache_line_bytes
    plans_k = plan_kernel(kernel, line_bytes)
    # None = legacy blocking miss model (the golden-fixture default).
    mshr = cfg.make_mshr_file()

    # Event heap of (ready_cycle, seq, warp); seq keeps FIFO order among ties.
    heap: list[tuple[float, int, _WarpState]] = []
    seq = 0  # also advanced inline by the hot loop below
    warp_serial = 0

    def push(w: _WarpState, now: float) -> None:
        nonlocal seq
        heapq.heappush(heap, (w.next_ready(now), seq, w))
        seq += 1

    def spawn_cta(now: float) -> bool:
        nonlocal warp_serial
        resident = scheduler.launch_next()
        if resident is None:
            return False
        if obs is not None:
            obs.cta_launch(resident.index, now, len(resident.cta.warps))
        warp_plans = plans_k[resident.index]
        for wi, cw in enumerate(resident.cta.warps):
            w = _WarpState(
                ops=cw.ops,
                plans=warp_plans[wi],
                cta=resident,
                wid=warp_serial,
                widx=wi,
            )
            warp_serial += 1
            if obs is not None:
                obs.spawn(w.wid, resident.index, wi, now)
            push(w, now)
        return True

    live_ctas = 0
    for _ in range(scheduler.max_concurrent):
        if spawn_cta(0.0):
            live_ctas += 1

    issued_until = 0.0
    # The shared-memory / cache pipeline: bank-conflicted accesses
    # serialise here without blocking instruction issue for other warps
    # (register-bank conflicts, by contrast, stall operand fetch and
    # therefore the issue port itself).
    mem_port_free = 0.0
    instructions = 0
    conflict_cycles = 0

    # Hoisted bound methods / config scalars and local accumulators --
    # merged into banks.histogram / EnergyCounts once after the loop.
    heappush = heapq.heappush
    heappop = heapq.heappop
    planned_shared = banks.planned_shared
    planned_global = banks.planned_global
    cache_read = cache.read_line
    cache_write = cache.write_line
    dram_request = dram.request
    cache_enabled = cache.enabled
    lat_by_kind = (cfg.alu_latency, cfg.sfu_latency, cfg.tex_latency)
    shared_latency = cfg.shared_latency
    hit_latency = cfg.cache_hit_latency
    txn_bytes = cfg.dram_transaction_bytes
    desch_lat = cfg.deschedule_latency
    desch_thr = cfg.deschedule_threshold
    hist = [0, 0, 0, 0, 0]
    arb_total = 0
    mrf_reads_t = mrf_writes_t = 0
    orf_reads_t = orf_writes_t = 0
    lrf_reads_t = lrf_writes_t = 0
    shared_row_reads_t = shared_row_writes_t = 0
    cache_row_reads_t = cache_row_writes_t = 0
    tag_lookups_t = 0

    while heap:
        ready, _, w = heappop(heap)
        t = ready if ready > issued_until else issued_until
        pc = w.pc
        op = w.ops[pc]
        pl = w.plans[pc]
        kind = pl.kind
        instructions += 1

        if kind <= K_TEX:
            # ALU/SFU/TEX: register-bank conflicts stall operand fetch,
            # and with it the issue port.
            penalty = pl.reg_penalty
            hist[pl.reg_bucket] += 1
            issue_done = t + 1 + penalty
            completion = issue_done + lat_by_kind[kind]
        elif kind == K_BARRIER:
            cta = w.cta
            cta.barrier_count += 1
            w.pc = pc + 1
            issued_until = t + 1
            if obs is not None:
                obs.issue(w.wid, "BARRIER", op.srcs, ready, t, t + 1)
            if cta.barrier_count == cta.warps_outstanding:
                cta.barrier_count = 0
                waiting = cta.waiting_warps
                cta.waiting_warps = []
                release = t + 1 + cfg.barrier_latency
                for other in (*waiting, w):
                    if obs is not None:
                        obs.resume(other.wid, release, CAUSE_BARRIER)
                    if other.pc < len(other.ops):
                        push(other, release)
                    else:
                        cta.warps_outstanding -= 1
                        # A warp whose last instruction is a barrier.
                        if obs is not None:
                            obs.complete(other.wid, release)
                if cta.warps_outstanding == 0:
                    scheduler.retire(cta)
                    if obs is not None:
                        obs.cta_retire(cta.index, release)
                    live_ctas -= 1
                    if spawn_cta(release):
                        live_ctas += 1
            else:
                cta.waiting_warps.append(w)
            continue
        else:
            # Memory instructions issue in one cycle; bank conflicts
            # serialise in the memory pipeline (other warps keep issuing).
            issue_done = t + 1
            wb_cause = CAUSE_RAW  # latency class of the writeback (obs)
            mshr_wait = 0.0  # cycles this op stalled for a free MSHR entry
            if kind <= K_SHARED_STORE:
                penalty, bucket, rows, arb = planned_shared(
                    pl, op.addrs, w.cta.shared_base
                )
                hist[bucket] += 1
                arb_total += arb
                if kind == K_SHARED_LOAD:
                    shared_row_reads_t += rows
                else:
                    shared_row_writes_t += rows
                port_start = issue_done if issue_done > mem_port_free else mem_port_free
                data_ready = port_start + penalty
                mem_port_free = port_start + 1 + penalty
                completion = data_ready + shared_latency
            else:  # global / local through the cache
                penalty, bucket, rows, arb = planned_global(pl)
                hist[bucket] += 1
                arb_total += arb
                if cache_enabled:
                    # A 0 KB cache has no tag array, so a disabled cache
                    # must not accrue tag-lookup energy.
                    tag_lookups_t += pl.n_segments
                port_start = issue_done if issue_done > mem_port_free else mem_port_free
                data_ready = port_start + penalty
                mem_port_free = port_start + 1 + penalty
                if kind == K_GLOBAL_LOAD:
                    completion = data_ready
                    if cache_enabled:
                        cache_row_reads_t += rows
                        if mshr is not None:
                            # Non-blocking memory system: a primary miss
                            # allocates an MSHR entry and an addressed
                            # line fill; a secondary miss to an in-flight
                            # line merges into its outstanding fill with
                            # no extra DRAM traffic; a full file stalls
                            # the LSU until the earliest fill retires.
                            cur = data_ready
                            for seg in pl.segments:
                                hit = cache_read(seg)
                                if obs is not None:
                                    obs.cache_access(cur, hit)
                                fill = mshr.outstanding(seg, cur)
                                if fill is not None:
                                    # The tag was installed by the
                                    # primary miss, so the probe "hits";
                                    # the data arrives with the fill.
                                    mshr.secondary_merges += 1
                                    wb_cause = CAUSE_MEMORY
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr.entry_free_at(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        mshr_wait += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr.allocate(seg, done, cur)
                                    wb_cause = CAUSE_MEMORY
                                if done > completion:
                                    completion = done
                            if cur > mem_port_free:
                                # An LSU that cannot allocate an entry
                                # blocks the memory pipeline (structural
                                # back-pressure); this also keeps the
                                # DRAM request stream time-ordered.
                                mem_port_free = cur
                        elif obs is None:
                            for seg in pl.segments:
                                if cache_read(seg):
                                    done = data_ready + hit_latency
                                else:
                                    done = dram_request(data_ready, line_bytes)
                                    wb_cause = CAUSE_MEMORY
                                if done > completion:
                                    completion = done
                        else:
                            for seg in pl.segments:
                                if cache_read(seg):
                                    done = data_ready + hit_latency
                                    obs.cache_access(data_ready, True)
                                else:
                                    done = dram_request(data_ready, line_bytes)
                                    wb_cause = CAUSE_MEMORY
                                    obs.cache_access(data_ready, False)
                                if done > completion:
                                    completion = done
                    else:
                        wb_cause = CAUSE_MEMORY
                        ns = pl.n_sectors
                        if ns < 0:
                            ns = pl.sector_info(op.addrs, line_bytes)[0]
                        for _ in range(ns):
                            done = dram_request(data_ready, txn_bytes)
                            if done > completion:
                                completion = done
                else:  # store: write-through, no-allocate, fire-and-forget
                    completion = None
                    if cache_enabled:
                        cache_row_writes_t += rows
                        if obs is None:
                            for seg in pl.segments:
                                cache_write(seg)
                        else:
                            for seg in pl.segments:
                                obs.cache_access(data_ready, cache_write(seg))
                        # With a cache in front, the memory controller
                        # combines write-through traffic into per-line
                        # bursts: one DRAM access per touched line.
                        pls = pl.per_line_sectors
                        if pls is None:
                            pls = pl.sector_info(op.addrs, line_bytes)[1]
                        if mshr is not None:
                            # Non-blocking mode addresses the bursts so
                            # the DRAM row-buffer decode sees them.
                            for seg, nsect in zip(pl.segments, pls):
                                dram_request(data_ready, nsect * txn_bytes, seg)
                        else:
                            for nsect in pls:
                                dram_request(data_ready, nsect * txn_bytes)
                    else:
                        ns = pl.n_sectors
                        if ns < 0:
                            ns = pl.sector_info(op.addrs, line_bytes)[0]
                        for _ in range(ns):
                            dram_request(data_ready, txn_bytes)

        # ---- register file traffic -------------------------------------
        mrf_reads_t += pl.n_mrf_reads
        mrf_writes_t += pl.n_mrf_writes
        orf_reads_t += op.orf_reads
        orf_writes_t += op.orf_writes
        lrf_reads_t += op.lrf_reads
        lrf_writes_t += op.lrf_writes

        # ---- issue/penalty accounting -----------------------------------
        conflict_cycles += penalty
        issued_until = issue_done
        if op.dst is not None:
            if completion is None or completion < issue_done:
                completion = issue_done  # a result is never early-forwarded
            w.pending[op.dst] = completion
        if obs is not None:
            # issue() reads the *old* pending entries for dependency
            # attribution, so it runs before writeback() (dst may appear
            # in srcs).
            obs.issue(w.wid, op.op.name, op.srcs, ready, t, issue_done)
            if op.dst is not None:
                if kind <= K_TEX:
                    cause = CAUSE_MEMORY if kind == K_TEX else CAUSE_RAW
                    obs.writeback(w.wid, op.dst, completion, cause, 0.0)
                else:
                    # Memory-pipeline serialisation folded into this
                    # op's latency: LSU-port queueing + bank conflicts.
                    wb_conflict = (port_start - issue_done) + penalty
                    obs.writeback(
                        w.wid, op.dst, completion, wb_cause, wb_conflict, mshr_wait
                    )

        # ---- advance warp ------------------------------------------------
        pc += 1
        w.pc = pc
        ops_w = w.ops
        if pc < len(ops_w):
            # Inlined _WarpState.next_ready plus the two-level scheduler
            # runtime model (ref [8]): a warp stalling past the threshold
            # is descheduled and pays a reactivation latency when its
            # dependence resolves.
            nr = issue_done
            pending = w.pending
            if pending:
                for r in ops_w[pc].srcs:
                    t2 = pending.get(r)
                    if t2 is not None and t2 > nr:
                        nr = t2
            if desch_lat and nr - issue_done > desch_thr:
                heappush(heap, (nr + desch_lat, seq, w))
            else:
                heappush(heap, (nr, seq, w))
            seq += 1
            continue
        if obs is not None:
            obs.complete(w.wid, issue_done)
        cta = w.cta
        cta.warps_outstanding -= 1
        if cta.warps_outstanding == 0:
            if cta.waiting_warps:
                raise SimulationError(
                    f"CTA {cta.index} finished with warps still at a barrier"
                )
            scheduler.retire(cta)
            if obs is not None:
                obs.cta_retire(cta.index, issue_done)
            live_ctas -= 1
            if spawn_cta(issue_done):
                live_ctas += 1

    if scheduler.remaining:
        raise SimulationError(f"{scheduler.remaining} CTAs were never launched")
    if live_ctas:
        raise SimulationError(f"{live_ctas} CTAs never finished")

    # ---- merge local accumulators -------------------------------------
    h = banks.histogram
    h.at_most_1 += hist[0]
    h.exactly_2 += hist[1]
    h.exactly_3 += hist[2]
    h.exactly_4 += hist[3]
    h.over_4 += hist[4]
    if arb_total:
        banks.arbitration_conflicts += arb_total
    counts.mrf_reads = mrf_reads_t
    counts.mrf_writes = mrf_writes_t
    counts.orf_reads = orf_reads_t
    counts.orf_writes = orf_writes_t
    counts.lrf_reads = lrf_reads_t
    counts.lrf_writes = lrf_writes_t
    counts.shared_row_reads = shared_row_reads_t
    counts.shared_row_writes = shared_row_writes_t
    counts.cache_row_reads = cache_row_reads_t
    counts.cache_row_writes = cache_row_writes_t
    counts.tag_lookups = tag_lookups_t

    counts.dram_bits = dram.bits_transferred
    end = max(issued_until, mem_port_free, dram.free_at)
    stall_cycles: dict[str, float] = {}
    if obs is not None:
        obs.finish(end)
        stall_cycles = obs.stall_totals()
    notes: dict = {}
    if mshr is not None:
        memsys = {"mshr": mshr.stats()}
        if getattr(dram, "row_hits", None) is not None:
            # A private channel keeps its own row-buffer counters; a
            # shared-system port does not (the chip result carries the
            # system-wide counters instead).
            memsys["dram_row_hits"] = dram.row_hits
            memsys["dram_row_misses"] = dram.row_misses
        notes["memsys"] = memsys
    return SimResult(
        kernel=kernel.name,
        partition=partition,
        cycles=end,
        instructions=instructions,
        resident_ctas=scheduler.max_concurrent,
        resident_threads=scheduler.limits.resident_threads,
        regs_per_thread=kernel.regs_per_thread,
        bank_conflict_cycles=conflict_cycles,
        conflict_histogram=banks.histogram,
        cache_stats=cache.stats,
        dram_accesses=dram.accesses,
        dram_bytes=dram.bytes_transferred,
        energy_counts=counts,
        limiting_resource=scheduler.limits.limiting_resource,
        stall_cycles=stall_cycles,
        notes=notes,
    )
