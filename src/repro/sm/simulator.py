"""Event-driven single-SM timing simulation.

See the package docstring (:mod:`repro.sm`) for the modelling contract.
The main loop pops the earliest-ready warp from a heap, serialises it on
the single issue port, resolves its instruction against the bank model /
cache / DRAM, and schedules the warp's next readiness.  Each warp
instruction is visited exactly once, so runtime is
``O(total_ops * log(resident_warps))``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.compiler.compiled import CompiledKernel, CompiledOp, CompiledWarp
from repro.core.partition import MemoryPartition
from repro.isa.opcodes import MemSpace, OpClass
from repro.memory.banks import make_bank_model
from repro.memory.cache import DataCache
from repro.memory.coalescer import coalesce_lines, coalesce_sectors
from repro.memory.dram import DRAMChannel
from repro.obs.collector import (
    CAUSE_BARRIER,
    CAUSE_MEMORY,
    CAUSE_RAW,
)
from repro.sm.config import SMConfig
from repro.sm.cta_scheduler import CTAScheduler, ResidentCTA
from repro.sm.result import EnergyCounts, SimResult


class SimulationError(RuntimeError):
    """The simulation reached an inconsistent state (internal bug guard)."""


@dataclass(slots=True)
class _WarpState:
    ops: list[CompiledOp]
    cta: ResidentCTA
    pc: int = 0
    #: Architectural register -> cycle its pending write completes.
    pending: dict[int, float] = field(default_factory=dict)
    #: Run-unique warp id (observability track key).
    wid: int = 0
    #: Warp index within its CTA.
    widx: int = 0

    def next_ready(self, now: float) -> float:
        """Earliest cycle the next instruction's operands are available."""
        op = self.ops[self.pc]
        ready = now
        pending = self.pending
        if pending:
            # RAW hazards only: writes drain in program order through the
            # in-order pipeline, so WAW to a recycled register is safe.
            for r in op.srcs:
                t = pending.get(r)
                if t is not None and t > ready:
                    ready = t
        return ready


def simulate(
    kernel: CompiledKernel,
    partition: MemoryPartition,
    config: SMConfig | None = None,
    thread_target: int | None = None,
    collector=None,
) -> SimResult:
    """Run one kernel launch to completion under a memory partition.

    Args:
        kernel: Compiled kernel (see :func:`repro.compiler.compile_kernel`).
        partition: Memory split to simulate (baseline, Fermi-like, or
            unified).
        config: SM latencies/bandwidth; defaults to Table 2 values.
        thread_target: Optional cap on resident threads (the paper's
            256..1024 sweeps); ``None`` lets occupancy decide.
        collector: Optional :class:`repro.obs.Collector` receiving stall
            attribution, interval metrics, and trace events.  ``None``
            (or any collector with ``enabled == False``) keeps the hot
            loop uninstrumented; instrumentation never changes timing.

    Returns:
        A :class:`~repro.sm.result.SimResult` with cycles, DRAM traffic,
        bank-conflict statistics, and energy-relevant event counts (plus
        per-cause stall totals when a collector was attached).

    Raises:
        repro.sm.cta_scheduler.LaunchError: If no CTA fits the partition.
    """
    cfg = config or SMConfig()
    obs = collector if collector is not None and collector.enabled else None
    scheduler = CTAScheduler(kernel, partition, thread_target)
    banks = make_bank_model(partition, cluster_port=cfg.cluster_port_banks)
    cache = DataCache(
        partition.cache_bytes, assoc=cfg.cache_assoc, line_bytes=cfg.cache_line_bytes
    )
    dram = DRAMChannel(
        bytes_per_cycle=cfg.dram_bytes_per_cycle,
        latency=cfg.dram_latency,
        transaction_bytes=cfg.dram_transaction_bytes,
        observer=obs.dram_transfer if obs is not None else None,
    )
    counts = EnergyCounts()

    # Event heap of (ready_cycle, seq, warp); seq keeps FIFO order among ties.
    heap: list[tuple[float, int, _WarpState]] = []
    seq = 0  # also advanced inline by the deschedule path below
    warp_serial = 0

    def push(w: _WarpState, now: float) -> None:
        nonlocal seq
        heapq.heappush(heap, (w.next_ready(now), seq, w))
        seq += 1

    def spawn_cta(now: float) -> bool:
        nonlocal warp_serial
        resident = scheduler.launch_next()
        if resident is None:
            return False
        if obs is not None:
            obs.cta_launch(resident.index, now, len(resident.cta.warps))
        for wi, cw in enumerate(resident.cta.warps):
            w = _WarpState(ops=cw.ops, cta=resident, wid=warp_serial, widx=wi)
            warp_serial += 1
            if obs is not None:
                obs.spawn(w.wid, resident.index, wi, now)
            push(w, now)
        return True

    live_ctas = 0
    for _ in range(scheduler.max_concurrent):
        if spawn_cta(0.0):
            live_ctas += 1

    issued_until = 0.0
    # The shared-memory / cache pipeline: bank-conflicted accesses
    # serialise here without blocking instruction issue for other warps
    # (register-bank conflicts, by contrast, stall operand fetch and
    # therefore the issue port itself).
    mem_port_free = 0.0
    instructions = 0
    conflict_cycles = 0
    line_bytes = cfg.cache_line_bytes

    latency_of = {
        OpClass.ALU: cfg.alu_latency,
        OpClass.SFU: cfg.sfu_latency,
        OpClass.TEX: cfg.tex_latency,
        OpClass.LOAD_SHARED: cfg.shared_latency,
        OpClass.STORE_SHARED: cfg.shared_latency,
    }

    while heap:
        ready, _, w = heapq.heappop(heap)
        t = ready if ready > issued_until else issued_until
        op = w.ops[w.pc]
        instructions += 1

        # ---- barriers -------------------------------------------------
        if op.op is OpClass.BARRIER:
            cta = w.cta
            cta.barrier_count += 1
            w.pc += 1
            issued_until = t + 1
            if obs is not None:
                obs.issue(w.wid, "BARRIER", op.srcs, ready, t, t + 1)
            if cta.barrier_count == cta.warps_outstanding:
                cta.barrier_count = 0
                waiting = cta.waiting_warps
                cta.waiting_warps = []
                release = t + 1 + cfg.barrier_latency
                for other in (*waiting, w):
                    if obs is not None:
                        obs.resume(other.wid, release, CAUSE_BARRIER)
                    if other.pc < len(other.ops):
                        push(other, release)
                    else:
                        cta.warps_outstanding -= 1
                        # A warp whose last instruction is a barrier.
                        if obs is not None:
                            obs.complete(other.wid, release)
                if cta.warps_outstanding == 0:
                    scheduler.retire(cta)
                    if obs is not None:
                        obs.cta_retire(cta.index, release)
                    live_ctas -= 1
                    if spawn_cta(release):
                        live_ctas += 1
            else:
                cta.waiting_warps.append(w)
            continue

        # ---- memory resolution ----------------------------------------
        space = op.op.space
        completion = None
        wb_cause = CAUSE_RAW  # latency class of this op's writeback (obs)
        if space is None:
            # ALU/SFU/TEX: register-bank conflicts stall operand fetch,
            # and with it the issue port.
            access = banks.access(op)
            penalty = access.penalty
            issue_done = t + 1 + penalty
            completion = issue_done + latency_of[op.op]
        else:
            # Memory instructions issue in one cycle; bank conflicts
            # serialise in the memory pipeline (other warps keep issuing).
            issue_done = t + 1
            if space is MemSpace.SHARED:
                access = banks.access(op, shared_base=w.cta.shared_base)
                if op.op.is_load:
                    counts.shared_row_reads += access.data_row_accesses
                else:
                    counts.shared_row_writes += access.data_row_accesses
                segments = None
            else:
                segments = coalesce_lines(op.addrs, line_bytes)
                access = banks.access(op, segments=segments)
                if cache.enabled:
                    # A 0 KB cache has no tag array, so a disabled cache
                    # must not accrue tag-lookup energy.
                    counts.tag_lookups += len(segments)
            penalty = access.penalty
            port_start = issue_done if issue_done > mem_port_free else mem_port_free
            data_ready = port_start + penalty
            mem_port_free = port_start + 1 + penalty
            if space is MemSpace.SHARED:
                completion = data_ready + cfg.shared_latency
            elif op.op.is_load:
                completion = data_ready
                if cache.enabled:
                    counts.cache_row_reads += access.data_row_accesses
                    for seg in segments:
                        if cache.read_line(seg):
                            done = data_ready + cfg.cache_hit_latency
                            if obs is not None:
                                obs.cache_access(data_ready, True)
                        else:
                            done = dram.request(data_ready, line_bytes)
                            wb_cause = CAUSE_MEMORY
                            if obs is not None:
                                obs.cache_access(data_ready, False)
                        if done > completion:
                            completion = done
                else:
                    wb_cause = CAUSE_MEMORY
                    for _ in coalesce_sectors(op.addrs):
                        done = dram.request(data_ready, cfg.dram_transaction_bytes)
                        if done > completion:
                            completion = done
            else:  # store: write-through, no-allocate, fire-and-forget
                sectors = coalesce_sectors(op.addrs)
                if cache.enabled:
                    counts.cache_row_writes += access.data_row_accesses
                    for seg in segments:
                        hit = cache.write_line(seg)
                        if obs is not None:
                            obs.cache_access(data_ready, hit)
                    # With a cache in front, the memory controller
                    # combines write-through traffic into per-line
                    # bursts: one DRAM access per touched line.
                    per_line: dict[int, int] = {}
                    for sector in sectors:
                        line = sector - sector % line_bytes
                        per_line[line] = per_line.get(line, 0) + 1
                    for nsect in per_line.values():
                        dram.request(data_ready, nsect * cfg.dram_transaction_bytes)
                else:
                    for _ in sectors:
                        dram.request(data_ready, cfg.dram_transaction_bytes)

        # ---- register file traffic -------------------------------------
        counts.mrf_reads += len(op.mrf_reads)
        counts.mrf_writes += len(op.mrf_writes)
        counts.orf_reads += op.orf_reads
        counts.orf_writes += op.orf_writes
        counts.lrf_reads += op.lrf_reads
        counts.lrf_writes += op.lrf_writes

        # ---- issue/penalty accounting -----------------------------------
        conflict_cycles += penalty
        issued_until = issue_done
        if op.dst is not None:
            if completion is None or completion < issue_done:
                completion = issue_done  # a result is never early-forwarded
            w.pending[op.dst] = completion
        if obs is not None:
            # issue() reads the *old* pending entries for dependency
            # attribution, so it runs before writeback() (dst may appear
            # in srcs).
            obs.issue(w.wid, op.op.name, op.srcs, ready, t, issue_done)
            if op.dst is not None:
                if space is None:
                    cause = CAUSE_MEMORY if op.op is OpClass.TEX else CAUSE_RAW
                    wb_conflict = 0.0
                else:
                    cause = wb_cause
                    # Memory-pipeline serialisation folded into this
                    # op's latency: LSU-port queueing + bank conflicts.
                    wb_conflict = (port_start - issue_done) + penalty
                obs.writeback(w.wid, op.dst, completion, cause, wb_conflict)

        # ---- advance warp ------------------------------------------------
        w.pc += 1
        if w.pc < len(w.ops):
            if cfg.deschedule_latency:
                # Two-level scheduler runtime model (ref [8]): a warp
                # stalling past the threshold is descheduled and pays a
                # reactivation latency when its dependence resolves.
                nxt = w.next_ready(issue_done)
                if nxt - issue_done > cfg.deschedule_threshold:
                    heapq.heappush(heap, (nxt + cfg.deschedule_latency, seq, w))
                    seq += 1
                    continue
            push(w, issue_done)
            continue
        if obs is not None:
            obs.complete(w.wid, issue_done)
        cta = w.cta
        cta.warps_outstanding -= 1
        if cta.warps_outstanding == 0:
            if cta.waiting_warps:
                raise SimulationError(
                    f"CTA {cta.index} finished with warps still at a barrier"
                )
            scheduler.retire(cta)
            if obs is not None:
                obs.cta_retire(cta.index, issue_done)
            live_ctas -= 1
            if spawn_cta(issue_done):
                live_ctas += 1

    if scheduler.remaining:
        raise SimulationError(f"{scheduler.remaining} CTAs were never launched")
    if live_ctas:
        raise SimulationError(f"{live_ctas} CTAs never finished")

    counts.dram_bits = dram.bits_transferred
    end = max(issued_until, mem_port_free, dram.free_at)
    stall_cycles: dict[str, float] = {}
    if obs is not None:
        obs.finish(end)
        stall_cycles = obs.stall_totals()
    return SimResult(
        kernel=kernel.name,
        partition=partition,
        cycles=end,
        instructions=instructions,
        resident_ctas=scheduler.max_concurrent,
        resident_threads=scheduler.limits.resident_threads,
        regs_per_thread=kernel.regs_per_thread,
        bank_conflict_cycles=conflict_cycles,
        conflict_histogram=banks.histogram,
        cache_stats=cache.stats,
        dram_accesses=dram.accesses,
        dram_bytes=dram.bytes_transferred,
        energy_counts=counts,
        limiting_resource=scheduler.limits.limiting_resource,
        stall_cycles=stall_cycles,
    )
