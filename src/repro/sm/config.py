"""SM simulation parameters (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import MAX_THREADS


@dataclass(frozen=True, slots=True)
class SMConfig:
    """Latency and bandwidth parameters of one SM.

    Defaults reproduce Table 2 of the paper.  ``cache_hit_latency`` is
    not listed there; we use the shared-memory latency, as both paths go
    through the same crossbar and banks.
    """

    alu_latency: int = 8
    sfu_latency: int = 20
    shared_latency: int = 20
    cache_hit_latency: int = 20
    tex_latency: int = 400
    dram_latency: int = 400
    dram_bytes_per_cycle: float = 8.0
    dram_transaction_bytes: int = 32
    cache_assoc: int = 4
    cache_line_bytes: int = 128
    max_threads: int = MAX_THREADS
    #: Cycles between the last warp arriving at a CTA barrier and the
    #: released warps issuing again: pipeline drain plus the two-level
    #: scheduler moving the warps back into the active set (ref [8]).
    barrier_latency: int = 72
    #: Optional runtime model of the two-level warp scheduler (ref [8]):
    #: a warp stalling longer than ``deschedule_threshold`` cycles is
    #: moved to the inactive set and pays ``deschedule_latency`` extra
    #: cycles on reactivation.  Default 0 = the prior work's finding
    #: that swapping costs no performance; raise it to stress-test that
    #: claim (see ``ablations`` and the two-level scheduler tests).
    deschedule_latency: int = 0
    deschedule_threshold: int = 40
    #: Enforce the strict one-bank-per-cluster crossbar port of the
    #: Section 4.2 "simple design" (ablation; the default follows the
    #: paper's Section 6.1 per-bank conflict model).
    cluster_port_banks: bool = False
    #: MSHR entries per SM.  0 (default) keeps the legacy *blocking*
    #: miss model the golden fixtures pin; any positive count enables
    #: the non-blocking memory system: secondary misses to an in-flight
    #: line merge into the outstanding fill (no extra DRAM traffic), and
    #: a full file stalls the LSU (the ``mshr_full`` stall cause).
    mshr_entries: int = 0
    #: DRAM banks per channel for open-page row-buffer timing.  The
    #: default ``banks=1`` with ``row_hit_latency=None`` (== full
    #: latency) is the flat-latency FCFS model, cycle-identical to the
    #: legacy channel.
    dram_banks: int = 1
    #: Row-buffer (DRAM page) size per bank.
    dram_row_bytes: int = 2048
    #: Latency of a request hitting a bank's open row; ``None`` means
    #: the full ``dram_latency`` (row buffers modeled but never faster,
    #: i.e. disabled).
    dram_row_hit_latency: int | None = None
    #: Simulation engine: ``"columnar"`` (default) replays precompiled
    #: columnar warp programs (:mod:`repro.sm.replay`); ``"event"`` is
    #: the legacy per-op event loop.  The two are bit-identical --
    #: every SimResult field matches exactly (differential tests pin
    #: this) -- so the flag never changes simulated numbers, only
    #: wall-clock.  Instrumented runs (profile/trace collectors)
    #: replay columnar too, with identical per-cause attribution,
    #: interval samples, and trace events.  Being timing-neutral,
    #: the field is excluded from experiment/chip config fingerprints
    #: and serialized payloads.
    engine: str = "columnar"

    @property
    def non_blocking(self) -> bool:
        """True when the MSHR-tracked non-blocking memory system is on."""
        return self.mshr_entries > 0

    def make_mshr_file(self):
        """The SM's MSHR file, or ``None`` in the blocking model."""
        if self.mshr_entries <= 0:
            return None
        from repro.memory.mshr import MSHRFile

        return MSHRFile(self.mshr_entries)

    def make_dram_channel(self, observer=None):
        """The SM's default private DRAM port (its 1/32 chip slice).

        This is the seam the chip simulator replaces: anything with the
        same ``request`` / traffic-counter surface (for example a
        :class:`repro.memory.dram.DRAMPort` onto a shared
        :class:`~repro.memory.dram.DRAMSystem`) can stand in for the
        private channel via :func:`repro.sm.simulate`'s ``dram``
        argument.
        """
        from repro.memory.dram import DRAMChannel

        return DRAMChannel(
            bytes_per_cycle=self.dram_bytes_per_cycle,
            latency=self.dram_latency,
            transaction_bytes=self.dram_transaction_bytes,
            observer=observer,
            banks=self.dram_banks,
            row_bytes=self.dram_row_bytes,
            row_hit_latency=self.dram_row_hit_latency,
        )

    def __post_init__(self) -> None:
        for name in (
            "alu_latency",
            "sfu_latency",
            "shared_latency",
            "cache_hit_latency",
            "tex_latency",
            "dram_latency",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.dram_bytes_per_cycle <= 0:
            raise ValueError("dram_bytes_per_cycle must be positive")
        if self.max_threads <= 0 or self.max_threads % 32:
            raise ValueError("max_threads must be a positive multiple of 32")
        if self.mshr_entries < 0:
            raise ValueError("mshr_entries must be non-negative (0 = blocking)")
        if self.dram_banks < 1:
            raise ValueError("dram_banks must be >= 1")
        if self.dram_row_bytes <= 0:
            raise ValueError("dram_row_bytes must be positive")
        if self.dram_row_hit_latency is not None and not (
            0 <= self.dram_row_hit_latency <= self.dram_latency
        ):
            raise ValueError(
                "dram_row_hit_latency must lie within [0, dram_latency]"
            )
        if self.engine not in ("event", "columnar"):
            raise ValueError(
                f"engine must be 'event' or 'columnar', got {self.engine!r}"
            )
