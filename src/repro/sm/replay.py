"""Columnar replay engine: the ``engine="columnar"`` simulation core.

The event engine (:mod:`repro.sm.simulator`) visits one op per heap
pop, re-deriving dispatch, bank outcomes, dependences, and a dozen
counters from Python object graphs each time; this core *replays* the
columnar warp programs built by :mod:`repro.compiler.columnar`.  Each
dynamic instruction costs one fused-row unpack, a few float adds, and
(for memory ops) the cache/DRAM/MSHR calls that are the model itself.
Counters never appear in the hot loop -- they were summed per warp at
compile time and are added once at CTA spawn.  Warps also execute in
**run batches**: a popped warp keeps stepping inline while its next
ready time stays strictly below the earliest other heap entry, so
dependence-limited phases skip heap traffic entirely.

Bit-identity with the event engine follows from three facts:

* **Batching is a no-op.** After the event engine processes an op at
  time ``t`` it pushes the warp back keyed ``nr`` with a sequence
  number larger than every other heap entry's, so the warp pops next
  iff ``nr`` is *strictly* below the minimum other key -- in which
  case the pop returns exactly ``(nr, w)`` and nothing else ran in
  between.  Replaying those ops inline under ``nr < limit`` (where
  ``limit`` is the heap minimum after the pop, which nothing can
  change during the run) performs the same state updates in the same
  order on the same timestamps.
* **The dependency columns are the pending dict.** The event engine's
  ``pending`` maps a register to its last writer's completion; the
  compiled per-op ``deps`` are that last-writer relation, and
  ``comp[pc]`` stores exactly the value ``pending[dst]`` would have
  held (stores clamp to issue time, loads to data arrival).
* **Static totals are order-independent.** Every counter the event
  loop bumps per op (RF traffic, histogram buckets, conflict cycles,
  row/tag energy, arbitration) is a pure sum over the warp's plans
  and bank-memo outcomes, so adding the precomputed warp total at
  spawn yields the same number as accumulating per op.

All time quantities are integer-valued floats well below 2**53 under
every supported config, so float addition here is exact and replaying
the same additions in the same order reproduces bit-equal cycles.

Two consumers share the op semantics: :func:`replay_simulate` is the
single-SM engine with everything inlined into one frame, and
:func:`make_warp_runner` packages the identical per-op body as a
per-SM closure for the chip simulator (one runner per core over the
core's own cache/DRAM port/MSHRs), which is how chip runs inherit the
speedup.  Instrumented runs (a live collector) replay too:
:func:`make_warp_runner_obs` is the same arithmetic with the
collector's hooks fired at exactly the event engine's call sites and
with the same arguments, so stall attribution, interval metrics, and
trace payloads are byte-identical per cause -- the observability side
of the bit-identity contract, enforced by
``tests/obs/test_replay_observability.py``.
"""

from __future__ import annotations

import heapq

from repro.compiler.columnar import (
    N_TOTALS,
    R_END,
    _sig_table,
    cta_plan,
    sig_obs_rows,
)
from repro.compiler.compiled import CompiledKernel
from repro.core.partition import MemoryPartition
from repro.memory.banks import make_bank_model
from repro.memory.cache import DataCache
from repro.memory.dram import DRAMChannel
from repro.obs.collector import (
    CAUSE_BANK_CONFLICT,
    CAUSE_BARRIER,
    CAUSE_DESCHEDULE,
    CAUSE_ISSUE_PORT,
    CAUSE_MEMORY,
    CAUSE_MSHR_FULL,
    CAUSE_RAW,
    STALL_CAUSES,
)

#: Integer stall-cause indices: the instrumented loops accumulate into
#: per-warp float lists indexed by these (no dict traffic per op) and
#: fold into ``_WarpObs.stalls`` once at the end of the run.  The fold
#: is exact -- stall sums are integer-valued floats -- and invisible to
#: every report: ``stall_totals`` re-keys through ``STALL_CAUSES`` so
#: per-warp dict insertion order is never serialized.
CI_RAW = STALL_CAUSES.index(CAUSE_RAW)
CI_BANK = STALL_CAUSES.index(CAUSE_BANK_CONFLICT)
CI_MEMORY = STALL_CAUSES.index(CAUSE_MEMORY)
CI_MSHR = STALL_CAUSES.index(CAUSE_MSHR_FULL)
CI_PORT = STALL_CAUSES.index(CAUSE_ISSUE_PORT)
CI_DESCH = STALL_CAUSES.index(CAUSE_DESCHEDULE)
N_CAUSES = len(STALL_CAUSES)
from repro.obs.trace import PID_WARPS
from repro.sm.config import SMConfig
from repro.sm.cta_scheduler import CTAScheduler
from repro.sm.result import EnergyCounts, SimResult

#: Runner outcome codes (shared with the chip simulator's loop).
YIELD = 0  # next op not ready before the heap's earliest other warp
BARRIER = 1  # hit a barrier; CTA-level coordination needed
DONE = 2  # warp retired


class _ColWarp:
    """Replay state of one warp: fused rows, completions, position."""

    __slots__ = (
        "rows", "comp", "cta", "pc", "n_ops", "core", "wid", "obs_rows",
        "odst", "ws", "wcaus", "wconf", "wmshr", "wstal",
    )

    def __init__(self, prog, cta, core=None, wid=0, obs_rows=None) -> None:
        self.rows = prog.rows
        #: Completion cycle per op (the event engine's pending dict,
        #: indexed by producing pc instead of destination register).
        self.comp = [0.0] * prog.n_ops
        self.cta = cta
        self.pc = 0
        self.n_ops = prog.n_ops
        #: Owning SM core in a chip simulation; unused single-SM.
        self.core = core
        #: Instrumented-replay state, set only when ``obs_rows`` (the
        #: :func:`~repro.compiler.columnar.sig_obs_rows` pair) is given:
        #: run-unique warp id, per-op (name, prods, dst) columns, the
        #: collector's _WarpObs, and the per-pc writeback latency class
        #: -- cause index / conflict share / MSHR wait, the pc-indexed
        #: image of what ``Collector.writeback`` would have stored per
        #: destination register.  ALU rows never touch them (their
        #: static cause and zero shares are the initial values).
        #: ``wstal`` accumulates stall cycles per cause index; it is
        #: folded into the collector's stalls dict at end of run.
        self.wid = wid
        self.ws = None
        if obs_rows is not None:
            rows_o, causes, dsts = obs_rows
            self.obs_rows = rows_o
            self.odst = dsts
            self.wcaus = list(causes)
            self.wconf = [0.0] * prog.n_ops
            self.wmshr = [0.0] * prog.n_ops
            self.wstal = [0.0] * N_CAUSES
        else:
            self.obs_rows = None


def _release_key(w: _ColWarp, release: float) -> float:
    """Heap key of a barrier-released warp: the event engine re-keys
    through ``next_ready``, so an in-flight load still gates issue."""
    key = release
    comp = w.comp
    for d in w.rows[w.pc][4]:
        c = comp[d]
        if c > key:
            key = c
    return key


def make_warp_runner(cfg: SMConfig, cache, dram, mshr):
    """Build one SM core's warp runner over its memory system.

    Returns ``(run, state)``: ``run(w, ready, limit)`` replays warp
    ``w`` from cycle ``max(ready, issued_until)`` while its ops stay
    strictly below ``limit``, returning ``(code, value)`` --
    ``(YIELD, heap_key)``, ``(BARRIER, arrival_cycle)`` with the pc
    already advanced past the barrier, or ``(DONE, last_issue)``.
    ``state()`` reports ``(issued_until, mem_port_free)`` for the
    end-of-simulation cycle count.

    The issue port and memory pipeline port are closure state -- the
    two scalars the event engine threads through its loop.  The op
    bodies here and in :func:`replay_simulate` are line-for-line the
    same arithmetic; the chip simulator calls this per core, the
    single-SM path inlines it for one less frame per pop.
    """
    dram_request = dram.request
    hit_latency = float(cfg.cache_hit_latency)
    line_bytes = cfg.cache_line_bytes
    txn_bytes = cfg.dram_transaction_bytes
    desch_lat = cfg.deschedule_latency
    desch_thr = cfg.deschedule_threshold if desch_lat else float("inf")
    issued_until = 0.0
    mem_port_free = 0.0
    if mshr is not None:
        mshr_outstanding = mshr.outstanding
        mshr_entry_free = mshr.entry_free_at
        mshr_allocate = mshr.allocate

    # ---- inlined model fast paths -----------------------------------
    # The cache probe (dict hit + LRU touch) and the unbanked DRAM bus
    # arithmetic (two adds and a division) are a fraction of the cost
    # of calling into the model objects, so the runner keeps both as
    # local state and replays *the same arithmetic in the same order*
    # -- bit-identical by construction -- writing the counters back
    # through ``sync()``.  Banked or observed DRAM channels keep the
    # model call (row-buffer state stays where it lives); the cache is
    # always a plain DataCache here and is always inlined.
    cache_sets = cache._sets
    num_sets = cache.num_sets
    cache_assoc = cache.assoc
    stats = cache.stats
    c_rhit = stats.read_hits
    c_rmiss = stats.read_misses
    c_whit = stats.write_hits
    c_wmiss = stats.write_misses
    # ``mshr is None`` keeps mixed accounting out: the MSHR branches
    # route fills through ``dram.request`` (which bumps the model's own
    # counters), and the write-back below would clobber those.
    fast_dram = (
        mshr is None
        and type(dram) is DRAMChannel
        and not dram._banked
        and dram.observer is None
    )
    if fast_dram:
        dram_free = dram.free_at
        dram_acc = dram.accesses
        dram_xfer = dram.bytes_transferred
        dram_busy = dram.busy_cycles
        dram_last = dram._last_request_time
        dram_lat = float(dram.latency)
        dram_bpc = dram.bytes_per_cycle
        # Fixed-size transfers always divide the same operands, so the
        # quotients are loop invariants (same division, same bits).
        line_service = line_bytes / dram_bpc
        txn_service = txn_bytes / dram_bpc
    else:
        # Placeholders; the slow branches never read these, and shared
        # DRAMSystem ports don't expose the channel-only attributes.
        dram_free = 0.0
        dram_acc = dram_xfer = 0
        dram_busy = dram_last = dram_lat = 0.0
        dram_bpc = line_service = txn_service = 1.0

    def sync():
        """Flush inlined model counters back into the model objects."""
        stats.read_hits = c_rhit
        stats.read_misses = c_rmiss
        stats.write_hits = c_whit
        stats.write_misses = c_wmiss
        if fast_dram:
            dram.free_at = dram_free
            dram.accesses = dram_acc
            dram.bytes_transferred = dram_xfer
            dram.busy_cycles = dram_busy
            dram._last_request_time = dram_last

    def state():
        sync()
        return issued_until, mem_port_free

    def run(w: _ColWarp, ready: float, limit: float):
        nonlocal issued_until, mem_port_free
        nonlocal c_rhit, c_rmiss, c_whit, c_wmiss
        nonlocal dram_free, dram_acc, dram_xfer, dram_busy, dram_last
        rows = w.rows
        comp = w.comp
        pc = w.pc
        mpf = mem_port_free
        t = ready if ready > issued_until else issued_until
        kind, a, b, aux, deps = rows[pc]
        while True:
            if kind == 0:  # ALU / SFU / TEX
                issue_done = t + a
                comp[pc] = t + b
            elif kind != 6:  # memory: one issue cycle, conflicts
                # serialise in the pipeline behind the single LSU port
                issue_done = t + 1.0
                port_start = issue_done if issue_done > mpf else mpf
                if kind == 1:  # shared load / store
                    mpf = port_start + a
                    comp[pc] = port_start + b
                else:
                    data_ready = port_start + a
                    mpf = port_start + b
                    if kind == 2:  # global/local load through the cache
                        completion = data_ready
                        if mshr is None:  # legacy blocking miss model
                            if fast_dram:
                                for li in aux[1]:
                                    ss = cache_sets[li % num_sets]
                                    if li in ss:
                                        ss.move_to_end(li)
                                        c_rhit += 1
                                        done = data_ready + hit_latency
                                    else:
                                        c_rmiss += 1
                                        if len(ss) >= cache_assoc:
                                            ss.popitem(last=False)
                                        ss[li] = None
                                        start = (
                                            data_ready
                                            if data_ready > dram_free
                                            else dram_free
                                        )
                                        dram_free = start + line_service
                                        dram_acc += 1
                                        dram_xfer += line_bytes
                                        dram_busy += line_service
                                        dram_last = data_ready
                                        done = (
                                            start + dram_lat + line_service
                                        )
                                    if done > completion:
                                        completion = done
                            else:  # banked/observed DRAM keeps the call
                                for li in aux[1]:
                                    ss = cache_sets[li % num_sets]
                                    if li in ss:
                                        ss.move_to_end(li)
                                        c_rhit += 1
                                        done = data_ready + hit_latency
                                    else:
                                        c_rmiss += 1
                                        if len(ss) >= cache_assoc:
                                            ss.popitem(last=False)
                                        ss[li] = None
                                        done = dram_request(
                                            data_ready, line_bytes
                                        )
                                    if done > completion:
                                        completion = done
                        else:  # non-blocking: merge secondaries, stall
                            # on a full file, address the fills
                            cur = data_ready
                            for seg in aux[0]:
                                li = seg // line_bytes
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    hit = True
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    hit = False
                                fill = mshr_outstanding(seg, cur)
                                if fill is not None:
                                    mshr.secondary_merges += 1
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr_entry_free(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr_allocate(seg, done, cur)
                                if done > completion:
                                    completion = done
                            if cur > mpf:
                                mpf = cur
                        comp[pc] = completion
                    elif kind == 3:  # uncached load: per-sector DRAM
                        completion = data_ready
                        if fast_dram:
                            for _ in range(aux):
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                dram_free = start + txn_service
                                dram_acc += 1
                                dram_xfer += txn_bytes
                                dram_busy += txn_service
                                done = start + dram_lat + txn_service
                                if done > completion:
                                    completion = done
                            dram_last = data_ready
                        else:
                            for _ in range(aux):
                                done = dram_request(data_ready, txn_bytes)
                                if done > completion:
                                    completion = done
                        comp[pc] = completion
                    elif kind == 4:  # cached store: write-through bursts
                        for li in aux[1]:
                            ss = cache_sets[li % num_sets]
                            if li in ss:
                                ss.move_to_end(li)
                                c_whit += 1
                            else:
                                c_wmiss += 1
                        if fast_dram:
                            for nb in aux[2]:
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                service = nb / dram_bpc
                                dram_free = start + service
                                dram_acc += 1
                                dram_xfer += nb
                                dram_busy += service
                            dram_last = data_ready
                        elif mshr is None:
                            for nb in aux[2]:
                                dram_request(data_ready, nb)
                        else:
                            for seg, nb in zip(aux[0], aux[2]):
                                dram_request(data_ready, nb, seg)
                        comp[pc] = issue_done
                    else:  # kind == 5, uncached store
                        if fast_dram:
                            for _ in range(aux):
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                dram_free = start + txn_service
                                dram_acc += 1
                                dram_xfer += txn_bytes
                                dram_busy += txn_service
                            dram_last = data_ready
                        else:
                            for _ in range(aux):
                                dram_request(data_ready, txn_bytes)
                        comp[pc] = issue_done
            else:  # BARRIER: hand back for CTA coordination
                w.pc = pc + 1
                issued_until = t + 1.0
                mem_port_free = mpf
                return 1, t
            pc += 1
            kind, a, b, aux, deps = rows[pc]
            nr = issue_done
            if deps:
                for d in deps:
                    c = comp[d]
                    if c > nr:
                        nr = c
            elif deps is None:  # R_END sentinel: warp retired
                w.pc = pc
                issued_until = issue_done
                mem_port_free = mpf
                return 2, issue_done
            if desch_lat and nr - issue_done > desch_thr:
                nr += desch_lat
            if nr < limit:
                # The warp would pop next anyway (strictly earliest
                # key; ties lose to older sequence numbers): keep
                # replaying inline.
                t = nr
                continue
            w.pc = pc
            issued_until = issue_done
            mem_port_free = mpf
            return 0, nr

    return run, state


def make_warp_runner_obs(cfg: SMConfig, cache, dram, mshr, obs):
    """Instrumented warp runner: :func:`make_warp_runner` plus a collector.

    Identical timing arithmetic, with the :class:`~repro.obs.Collector`
    semantics *inlined* rather than called: the attribution expressions
    of ``Collector.issue`` / ``writeback`` / ``cache_access`` are
    replicated operation for operation (same operands, same order, same
    guards), evaluated against the collector's own ``_WarpObs`` state,
    so per-cause stall totals, interval metrics, and trace payloads are
    byte-identical to the event engine's while the per-op cost stays
    replay-grade.  ``tests/obs/test_replay_observability.py`` enforces
    the equivalence per stall cause; any edit to ``Collector`` must be
    mirrored here.

    Deltas against the uninstrumented runner:

    * No ``fast_dram`` arm: instrumented channels carry the collector's
      transfer observer, which routes every request through the model
      call anyway (that call is where DRAM trace slices originate, in
      the event engine's order: transfers fire during op modelling,
      before the op's own stall/issue slices).
    * The op's ``ready`` / grant time ``t`` pair feeds the attribution
      carve: for a popped warp they are the heap key and
      ``max(ready, issued_until)``; for a run-batched op both collapse
      to ``nr`` (the event engine would have pushed and immediately
      popped the warp keyed ``nr``, with ``issued_until`` equal to the
      previous ``issue_done <= nr``).
    * Writeback state lives in pc-indexed per-warp arrays instead of
      the collector's reg-keyed pending dict: ``comp`` already holds
      every producer's completion, and ``wcaus`` / ``wconf`` /
      ``wmshr`` hold its latency class -- initialised to the static
      per-op cause from :func:`~repro.compiler.columnar.sig_obs_rows`
      (RAW, or MEMORY for texture) with zero shares, written only on
      escalation, exactly as the event loop decides it: cache-missing
      or MSHR-merging loads and every uncached load become MEMORY;
      stores and shared ops stay RAW.  The memory-side conflict share
      is recovered from the fused columns (``penalty == a`` for global
      rows, ``a - 1.0`` for shared rows; both exact, the columns are
      float-converted integers).  The dependency scan walks the static
      producer pcs in operand order, so the strict-maximum tie-break
      matches the pending-dict scan entry for entry.

    Barrier arrivals attribute their issue before handing back, so the
    caller's CTA coordination only owes the ``resume`` / ``complete`` /
    CTA-lifetime hooks.
    """
    dram_request = dram.request
    hit_latency = float(cfg.cache_hit_latency)
    line_bytes = cfg.cache_line_bytes
    txn_bytes = cfg.dram_transaction_bytes
    desch_lat = cfg.deschedule_latency
    desch_thr = cfg.deschedule_threshold if desch_lat else float("inf")
    issued_until = 0.0
    mem_port_free = 0.0
    if mshr is not None:
        mshr_outstanding = mshr.outstanding
        mshr_entry_free = mshr.entry_free_at
        mshr_allocate = mshr.allocate

    # Inlined cache probe as in make_warp_runner (same arithmetic, same
    # order); the hit/miss boolean doubles as the cache_access sample.
    cache_sets = cache._sets
    num_sets = cache.num_sets
    cache_assoc = cache.assoc
    stats = cache.stats
    c_rhit = stats.read_hits
    c_rmiss = stats.read_misses
    c_whit = stats.write_hits
    c_wmiss = stats.write_misses

    # Collector internals, hoisted.  cache_access only feeds the
    # sampler and issue's trace work only fires with a trace buffer, so
    # a plain profiling collector reduces both to a None check.
    sampler = obs.sampler
    trace = obs.trace
    samp_instr = sampler.add_instruction if sampler is not None else None
    samp_cache = sampler.add_cache_access if sampler is not None else None
    trace_slice = trace.slice if trace is not None else None
    CAUSES = STALL_CAUSES
    BANK = CAUSE_BANK_CONFLICT
    MSHRF = CAUSE_MSHR_FULL
    PORT = CAUSE_ISSUE_PORT
    DESCH = CAUSE_DESCHEDULE

    def sync():
        stats.read_hits = c_rhit
        stats.read_misses = c_rmiss
        stats.write_hits = c_whit
        stats.write_misses = c_wmiss

    def state():
        sync()
        return issued_until, mem_port_free

    def run(w: _ColWarp, ready: float, limit: float):
        nonlocal issued_until, mem_port_free
        nonlocal c_rhit, c_rmiss, c_whit, c_wmiss
        rows = w.rows
        orows = w.obs_rows
        comp = w.comp
        wid = w.wid
        ws = w.ws
        cursor = ws.cursor
        stalls = ws.stalls
        wcaus = w.wcaus
        wconf = w.wconf
        wmshr = w.wmshr
        pc = w.pc
        mpf = mem_port_free
        t = ready if ready > issued_until else issued_until
        kind, a, b, aux, deps = rows[pc]
        while True:
            name, prods, dst = orows[pc]
            if kind == 0:  # ALU / SFU / TEX
                issue_done = t + a
                completion = t + b
                comp[pc] = completion
            elif kind != 6:  # memory
                issue_done = t + 1.0
                port_start = issue_done if issue_done > mpf else mpf
                if kind == 1:  # shared load / store
                    mpf = port_start + a
                    completion = port_start + b
                    comp[pc] = completion
                    if dst is not None:
                        wconf[pc] = (port_start - issue_done) + (a - 1.0)
                else:
                    data_ready = port_start + a
                    mpf = port_start + b
                    if dst is not None:
                        wconf[pc] = (port_start - issue_done) + a
                    if kind == 2:  # global/local load through the cache
                        completion = data_ready
                        wb_ci = CI_RAW
                        if mshr is None:  # legacy blocking miss model
                            for li in aux[1]:
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    done = data_ready + hit_latency
                                    if samp_cache is not None:
                                        samp_cache(data_ready, True)
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    done = dram_request(
                                        data_ready, line_bytes
                                    )
                                    wb_ci = CI_MEMORY
                                    if samp_cache is not None:
                                        samp_cache(data_ready, False)
                                if done > completion:
                                    completion = done
                        else:  # non-blocking MSHR arm
                            mshr_wait = 0.0
                            cur = data_ready
                            for seg in aux[0]:
                                li = seg // line_bytes
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    hit = True
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    hit = False
                                if samp_cache is not None:
                                    samp_cache(cur, hit)
                                fill = mshr_outstanding(seg, cur)
                                if fill is not None:
                                    mshr.secondary_merges += 1
                                    wb_ci = CI_MEMORY
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr_entry_free(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        mshr_wait += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr_allocate(seg, done, cur)
                                    wb_ci = CI_MEMORY
                                if done > completion:
                                    completion = done
                            if cur > mpf:
                                mpf = cur
                            if mshr_wait and dst is not None:
                                wmshr[pc] = mshr_wait
                        comp[pc] = completion
                        # The pc-indexed writeback arrays start at the
                        # static latency class (RAW cause, zero shares),
                        # so only escalations need a store.
                        if dst is not None and wb_ci != CI_RAW:
                            wcaus[pc] = wb_ci
                    elif kind == 3:  # uncached load: per-sector DRAM
                        completion = data_ready
                        if dst is not None:
                            wcaus[pc] = CI_MEMORY
                        for _ in range(aux):
                            done = dram_request(data_ready, txn_bytes)
                            if done > completion:
                                completion = done
                        comp[pc] = completion
                    elif kind == 4:  # cached store: write-through bursts
                        completion = issue_done
                        for li in aux[1]:
                            ss = cache_sets[li % num_sets]
                            if li in ss:
                                ss.move_to_end(li)
                                c_whit += 1
                                if samp_cache is not None:
                                    samp_cache(data_ready, True)
                            else:
                                c_wmiss += 1
                                if samp_cache is not None:
                                    samp_cache(data_ready, False)
                        if mshr is None:
                            for nb in aux[2]:
                                dram_request(data_ready, nb)
                        else:
                            for seg, nb in zip(aux[0], aux[2]):
                                dram_request(data_ready, nb, seg)
                        comp[pc] = issue_done
                    else:  # kind == 5, uncached store
                        completion = issue_done
                        for _ in range(aux):
                            dram_request(data_ready, txn_bytes)
                        comp[pc] = issue_done
            else:  # BARRIER: attribute the issue, then hand back
                issue_done = t + 1.0

            # ---- Collector.issue, inlined (same expressions/guards) --
            if ready > cursor:
                # Dependency wait: the producer with the latest
                # completion determined readiness; carve its wait into
                # bank-conflict, MSHR-full, and producer-cause shares.
                # ``prods`` lists the static last writer of each source
                # register in operand order -- the same entries, in the
                # same order, that ``Collector.issue`` finds scanning
                # the pending dict, so the strict-maximum tie-break
                # picks the same producer.
                dep_end = cursor
                best = -1
                for d in prods:
                    c = comp[d]
                    if c > dep_end:
                        dep_end = c
                        best = d
                if dep_end > ready:
                    dep_end = ready
                if dep_end > cursor:
                    # A winning producer exists (dep_end moved), so
                    # ``best`` indexes its writeback latency class.
                    conflict = wconf[best]
                    mshrw = wmshr[best]
                    wait = dep_end - cursor
                    bank = conflict if conflict < wait else wait
                    rest = wait - bank
                    msh = mshrw if mshrw < rest else rest
                    cb = cursor + bank
                    cbm = cb + msh
                    if bank > 0.0 and cb > cursor:
                        stalls[BANK] = stalls.get(BANK, 0.0) + (cb - cursor)
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, wid, BANK, "stall",
                                cursor, cb - cursor,
                            )
                    if msh > 0.0 and cbm > cb:
                        stalls[MSHRF] = stalls.get(MSHRF, 0.0) + (cbm - cb)
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, wid, MSHRF, "stall", cb, cbm - cb
                            )
                    if dep_end > cbm:
                        cause = CAUSES[wcaus[best]]
                        stalls[cause] = (
                            stalls.get(cause, 0.0) + (dep_end - cbm)
                        )
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, wid, cause, "stall",
                                cbm, dep_end - cbm,
                            )
                    cursor = dep_end
                if ready > cursor:
                    # Two-level scheduler reactivation latency.
                    stalls[DESCH] = stalls.get(DESCH, 0.0) + (ready - cursor)
                    if trace_slice is not None:
                        trace_slice(
                            PID_WARPS, wid, DESCH, "stall",
                            cursor, ready - cursor,
                        )
                    cursor = ready
            if t > cursor:
                stalls[PORT] = stalls.get(PORT, 0.0) + (t - cursor)
                if trace_slice is not None:
                    trace_slice(
                        PID_WARPS, wid, PORT, "stall", cursor, t - cursor
                    )
            t1 = t + 1.0
            if issue_done > t1:
                stalls[BANK] = stalls.get(BANK, 0.0) + (issue_done - t1)
                if trace_slice is not None:
                    trace_slice(
                        PID_WARPS, wid, BANK, "stall", t1, issue_done - t1
                    )
            cursor = issue_done
            if samp_instr is not None:
                samp_instr(t)
            if trace_slice is not None:
                trace_slice(PID_WARPS, wid, name, "issue", t, issue_done - t)
            if kind == 6:  # barrier: hand back for CTA coordination
                # Ops issued == pc for an in-order replay, so the
                # collector's issue counter is the resume pc itself.
                w.pc = pc + 1
                issued_until = issue_done
                mem_port_free = mpf
                ws.cursor = cursor
                ws.issue_cycles = pc + 1
                return 1, t
            pc += 1
            kind, a, b, aux, deps = rows[pc]
            nr = issue_done
            if deps:
                for d in deps:
                    c = comp[d]
                    if c > nr:
                        nr = c
            elif deps is None:  # R_END sentinel: warp retired
                w.pc = pc
                issued_until = issue_done
                mem_port_free = mpf
                ws.cursor = cursor
                ws.issue_cycles = pc
                return 2, issue_done
            if desch_lat and nr - issue_done > desch_thr:
                nr += desch_lat
            if nr < limit:
                # Run-batched op: the event engine would push the warp
                # keyed ``nr`` and pop it right back, so its ready and
                # grant times both equal ``nr``.
                t = nr
                ready = nr
                continue
            w.pc = pc
            issued_until = issue_done
            mem_port_free = mpf
            ws.cursor = cursor
            ws.issue_cycles = pc
            return 0, nr

    return run, state


def replay_simulate(
    kernel: CompiledKernel,
    partition: MemoryPartition,
    config: SMConfig | None = None,
    thread_target: int | None = None,
    dram=None,
    cta_source=None,
    collector=None,
) -> SimResult:
    """Single-SM simulation on the columnar replay core.

    Same contract and result as :func:`repro.sm.simulator.simulate`;
    the dispatch seam there routes here when
    ``config.engine == "columnar"`` and the kernel is warm.  With no
    live collector the warp-step body is :func:`make_warp_runner`'s,
    inlined into one frame so a pop costs no Python call; a live
    collector delegates to the instrumented loop built around
    :func:`make_warp_runner_obs`, which fires the same hooks as the
    event engine at the same times.
    """
    from repro.sm.simulator import SimulationError

    cfg = config or SMConfig()
    obs = collector if collector is not None and collector.enabled else None
    if obs is not None:
        return _replay_simulate_obs(
            kernel, partition, cfg, thread_target, dram, cta_source, obs
        )
    scheduler = CTAScheduler(
        kernel, partition, thread_target, cta_source=cta_source
    )
    banks = make_bank_model(partition, cluster_port=cfg.cluster_port_banks)
    cache = DataCache(
        partition.cache_bytes,
        assoc=cfg.cache_assoc,
        line_bytes=cfg.cache_line_bytes,
        misaligned="floor",
    )
    if dram is None:
        dram = cfg.make_dram_channel()
    mshr = cfg.make_mshr_file()
    cache_enabled = cache.enabled
    barrier_latency = cfg.barrier_latency

    dram_request = dram.request
    hit_latency = float(cfg.cache_hit_latency)
    line_bytes = cfg.cache_line_bytes
    txn_bytes = cfg.dram_transaction_bytes
    desch_lat = cfg.deschedule_latency
    desch_thr = cfg.deschedule_threshold if desch_lat else float("inf")
    if mshr is not None:
        mshr_outstanding = mshr.outstanding
        mshr_entry_free = mshr.entry_free_at
        mshr_allocate = mshr.allocate

    # Inlined model fast paths -- see make_warp_runner for the
    # contract: same arithmetic in the same order as the model
    # methods, counters kept in locals and written back after the
    # loop.  ``fast_dram`` keeps banked/observed channels on the
    # method call so row-buffer state stays in the model.
    cache_sets = cache._sets
    num_sets = cache.num_sets
    cache_assoc = cache.assoc
    c_rhit = c_rmiss = c_whit = c_wmiss = 0
    # ``mshr is None`` keeps mixed accounting out: the MSHR branches
    # route fills through ``dram.request`` (which bumps the model's own
    # counters), and the write-back below would clobber those.
    fast_dram = (
        mshr is None
        and type(dram) is DRAMChannel
        and not dram._banked
        and dram.observer is None
    )
    if fast_dram:
        dram_free = dram.free_at
        dram_acc = dram.accesses
        dram_xfer = dram.bytes_transferred
        dram_busy = dram.busy_cycles
        dram_last = dram._last_request_time
        dram_lat = float(dram.latency)
        dram_bpc = dram.bytes_per_cycle
        # Fixed-size transfers always divide the same operands, so the
        # quotients are loop invariants (same division, same bits).
        line_service = line_bytes / dram_bpc
        txn_service = txn_bytes / dram_bpc
    else:
        # Placeholders; the slow branches never read these, and shared
        # DRAMSystem ports don't expose the channel-only attributes.
        dram_free = 0.0
        dram_acc = dram_xfer = 0
        dram_busy = dram_last = dram_lat = 0.0
        dram_bpc = line_service = txn_service = 1.0

    INF = float("inf")
    # The heap always holds an infinite-key sentinel, so the hot loop
    # peeks ``heap[0][0]`` without an emptiness guard and the outer
    # loop terminates on popping it.
    heap: list = [(INF, 0, None, 0, (), None)]
    heappush = heapq.heappush
    heappop = heapq.heappop
    heappushpop = heapq.heappushpop
    seq = 0
    # Static totals: one tuple appended per CTA spawn, summed
    # columnwise once at the end.
    spawned: list = []
    plans: dict = {}
    # CTA indexes are unique, but grids repeat one CTA shape: the
    # interned signature row's identity plus the recycled shared-memory
    # base is exactly what a plan depends on within one run, so keying
    # on those lets steady-state spawns skip cta_plan's key rebuild.
    sig_rows = _sig_table(kernel, line_bytes)

    def spawn_cta(now: float) -> bool:
        nonlocal seq
        resident = scheduler.launch_next()
        if resident is None:
            return False
        pkey = (id(sig_rows[resident.index]), resident.shared_base)
        plan = plans.get(pkey)
        if plan is None:
            plan = plans[pkey] = cta_plan(
                kernel, banks, resident.shared_base, cfg, cache_enabled,
                resident.index,
            )
        progs, ctot = plan
        for prog in progs:
            w = _ColWarp(prog, resident)
            heappush(heap, (now, seq, w, 0, w.rows, w.comp))
            seq += 1
        spawned.append(ctot)
        return True

    live_ctas = 0
    for _ in range(scheduler.max_concurrent):
        if spawn_cta(0.0):
            live_ctas += 1

    issued_until = 0.0
    mem_port_free = 0.0
    while True:
        item = heappop(heap)
        ready, _, w, pc, rows, comp = item
        if w is None:  # sentinel popped: no runnable warp left
            break
        limit = heap[0][0]
        t = ready if ready > issued_until else issued_until
        kind, a, b, aux, deps = rows[pc]
        # ---- warp run: the make_warp_runner body, inlined.  A yield
        # swaps in the earliest heap entry without leaving this loop;
        # heap entries carry (key, seq, warp, pc, rows, comp) so a pop
        # resumes with plain unpacks instead of attribute loads.  The
        # warp object's own ``pc`` is only synchronised at barriers,
        # the one consumer that inspects a parked warp.
        while True:
            if kind == 0:  # ALU / SFU / TEX
                issue_done = t + a
                comp[pc] = t + b
            elif kind != 6:  # memory
                issue_done = t + 1.0
                port_start = (
                    issue_done if issue_done > mem_port_free
                    else mem_port_free
                )
                if kind == 1:  # shared load / store
                    mem_port_free = port_start + a
                    comp[pc] = port_start + b
                else:
                    data_ready = port_start + a
                    mem_port_free = port_start + b
                    if kind == 2:  # global/local load through the cache
                        completion = data_ready
                        if mshr is None:
                            if fast_dram:
                                for li in aux[1]:
                                    ss = cache_sets[li % num_sets]
                                    if li in ss:
                                        ss.move_to_end(li)
                                        c_rhit += 1
                                        done = data_ready + hit_latency
                                    else:
                                        c_rmiss += 1
                                        if len(ss) >= cache_assoc:
                                            ss.popitem(last=False)
                                        ss[li] = None
                                        start = (
                                            data_ready
                                            if data_ready > dram_free
                                            else dram_free
                                        )
                                        dram_free = start + line_service
                                        dram_acc += 1
                                        dram_xfer += line_bytes
                                        dram_busy += line_service
                                        dram_last = data_ready
                                        done = (
                                            start + dram_lat + line_service
                                        )
                                    if done > completion:
                                        completion = done
                            else:  # banked/observed DRAM keeps the call
                                for li in aux[1]:
                                    ss = cache_sets[li % num_sets]
                                    if li in ss:
                                        ss.move_to_end(li)
                                        c_rhit += 1
                                        done = data_ready + hit_latency
                                    else:
                                        c_rmiss += 1
                                        if len(ss) >= cache_assoc:
                                            ss.popitem(last=False)
                                        ss[li] = None
                                        done = dram_request(
                                            data_ready, line_bytes
                                        )
                                    if done > completion:
                                        completion = done
                        else:
                            cur = data_ready
                            for seg in aux[0]:
                                li = seg // line_bytes
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    hit = True
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    hit = False
                                fill = mshr_outstanding(seg, cur)
                                if fill is not None:
                                    mshr.secondary_merges += 1
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr_entry_free(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr_allocate(seg, done, cur)
                                if done > completion:
                                    completion = done
                            if cur > mem_port_free:
                                mem_port_free = cur
                        comp[pc] = completion
                    elif kind == 3:  # uncached load
                        completion = data_ready
                        if fast_dram:
                            for _ in range(aux):
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                dram_free = start + txn_service
                                dram_acc += 1
                                dram_xfer += txn_bytes
                                dram_busy += txn_service
                                done = start + dram_lat + txn_service
                                if done > completion:
                                    completion = done
                            dram_last = data_ready
                        else:
                            for _ in range(aux):
                                done = dram_request(data_ready, txn_bytes)
                                if done > completion:
                                    completion = done
                        comp[pc] = completion
                    elif kind == 4:  # cached store
                        for li in aux[1]:
                            ss = cache_sets[li % num_sets]
                            if li in ss:
                                ss.move_to_end(li)
                                c_whit += 1
                            else:
                                c_wmiss += 1
                        if fast_dram:
                            for nb in aux[2]:
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                service = nb / dram_bpc
                                dram_free = start + service
                                dram_acc += 1
                                dram_xfer += nb
                                dram_busy += service
                            dram_last = data_ready
                        elif mshr is None:
                            for nb in aux[2]:
                                dram_request(data_ready, nb)
                        else:
                            for seg, nb in zip(aux[0], aux[2]):
                                dram_request(data_ready, nb, seg)
                        comp[pc] = issue_done
                    else:  # kind == 5, uncached store
                        if fast_dram:
                            for _ in range(aux):
                                start = (
                                    data_ready if data_ready > dram_free
                                    else dram_free
                                )
                                dram_free = start + txn_service
                                dram_acc += 1
                                dram_xfer += txn_bytes
                                dram_busy += txn_service
                            dram_last = data_ready
                        else:
                            for _ in range(aux):
                                dram_request(data_ready, txn_bytes)
                        comp[pc] = issue_done
            else:  # BARRIER
                w.pc = pc + 1
                issued_until = t + 1.0
                code = 1
                break
            pc += 1
            kind, a, b, aux, deps = rows[pc]
            nr = issue_done
            if deps:
                for d in deps:
                    c = comp[d]
                    if c > nr:
                        nr = c
            elif deps is None:  # R_END: warp retired
                issued_until = issue_done
                code = 2
                break
            if desch_lat and nr - issue_done > desch_thr:
                nr += desch_lat
            if nr < limit:
                t = nr
                continue
            # Yield: reinsert this warp keyed ``nr`` and continue with
            # whichever warp is now earliest -- one heap operation.
            issued_until = issue_done
            item = heappushpop(heap, (nr, seq, w, pc, rows, comp))
            seq += 1
            ready, _, w, pc, rows, comp = item
            limit = heap[0][0]
            t = ready if ready > issued_until else issued_until
            kind, a, b, aux, deps = rows[pc]
        # ---- irregular outcomes: retire / barrier --------------------
        if code == 2:  # warp done at cycle ``issue_done``
            cta = w.cta
            cta.warps_outstanding -= 1
            if cta.warps_outstanding == 0:
                if cta.waiting_warps:
                    raise SimulationError(
                        f"CTA {cta.index} finished with warps still at a "
                        "barrier"
                    )
                scheduler.retire(cta)
                live_ctas -= 1
                if spawn_cta(issue_done):
                    live_ctas += 1
        else:  # barrier arrival at cycle ``t``
            cta = w.cta
            cta.barrier_count += 1
            if cta.barrier_count == cta.warps_outstanding:
                cta.barrier_count = 0
                waiting = cta.waiting_warps
                cta.waiting_warps = []
                release = t + 1 + barrier_latency
                for other in (*waiting, w):
                    if other.pc < other.n_ops:
                        heappush(
                            heap,
                            (_release_key(other, release), seq, other,
                             other.pc, other.rows, other.comp),
                        )
                        seq += 1
                    else:
                        # A warp whose last instruction is a barrier.
                        cta.warps_outstanding -= 1
                if cta.warps_outstanding == 0:
                    scheduler.retire(cta)
                    live_ctas -= 1
                    if spawn_cta(release):
                        live_ctas += 1
            else:
                cta.waiting_warps.append(w)

    if scheduler.remaining:
        raise SimulationError(f"{scheduler.remaining} CTAs were never launched")
    if live_ctas:
        raise SimulationError(f"{live_ctas} CTAs never finished")

    # ---- write the inlined model counters back ------------------------
    st = cache.stats
    st.read_hits = c_rhit
    st.read_misses = c_rmiss
    st.write_hits = c_whit
    st.write_misses = c_wmiss
    if fast_dram:
        dram.free_at = dram_free
        dram.accesses = dram_acc
        dram.bytes_transferred = dram_xfer
        dram.busy_cycles = dram_busy
        dram._last_request_time = dram_last

    end = max(issued_until, mem_port_free, dram.free_at)
    return _replay_result(
        kernel, partition, scheduler, banks, cache, dram, mshr, spawned,
        end, {},
    )


def _replay_result(
    kernel, partition, scheduler, banks, cache, dram, mshr, spawned,
    end, stall_cycles,
) -> SimResult:
    """Merge spawn-time static totals and assemble the ``SimResult``.

    Shared epilogue of the uninstrumented and instrumented replay
    loops; model counters must already be written back (the inlined
    cache/DRAM locals in :func:`replay_simulate`, ``state()`` in the
    instrumented path).
    """
    totals = (
        [sum(col) for col in zip(*spawned)] if spawned else [0] * N_TOTALS
    )
    (instructions, conflict_cycles, arb_total,
     h0, h1, h2, h3, h4,
     mrf_r, mrf_w, orf_r, orf_w, lrf_r, lrf_w,
     sh_rr, sh_rw, c_rr, c_rw, tags) = totals
    h = banks.histogram
    h.at_most_1 += h0
    h.exactly_2 += h1
    h.exactly_3 += h2
    h.exactly_4 += h3
    h.over_4 += h4
    if arb_total:
        banks.arbitration_conflicts += arb_total
    counts = EnergyCounts()
    counts.mrf_reads = mrf_r
    counts.mrf_writes = mrf_w
    counts.orf_reads = orf_r
    counts.orf_writes = orf_w
    counts.lrf_reads = lrf_r
    counts.lrf_writes = lrf_w
    counts.shared_row_reads = sh_rr
    counts.shared_row_writes = sh_rw
    counts.cache_row_reads = c_rr
    counts.cache_row_writes = c_rw
    counts.tag_lookups = tags
    counts.dram_bits = dram.bits_transferred

    notes: dict = {}
    if mshr is not None:
        memsys = {"mshr": mshr.stats()}
        if getattr(dram, "row_hits", None) is not None:
            memsys["dram_row_hits"] = dram.row_hits
            memsys["dram_row_misses"] = dram.row_misses
        notes["memsys"] = memsys
    return SimResult(
        kernel=kernel.name,
        partition=partition,
        cycles=end,
        instructions=instructions,
        resident_ctas=scheduler.max_concurrent,
        resident_threads=scheduler.limits.resident_threads,
        regs_per_thread=kernel.regs_per_thread,
        bank_conflict_cycles=conflict_cycles,
        conflict_histogram=banks.histogram,
        cache_stats=cache.stats,
        dram_accesses=dram.accesses,
        dram_bytes=dram.bytes_transferred,
        energy_counts=counts,
        limiting_resource=scheduler.limits.limiting_resource,
        stall_cycles=stall_cycles,
        notes=notes,
    )


def _replay_simulate_obs(
    kernel: CompiledKernel,
    partition: MemoryPartition,
    cfg: SMConfig,
    thread_target,
    dram,
    cta_source,
    obs,
) -> SimResult:
    """Instrumented single-SM replay: collector hooks at event order.

    The CTA choreography (spawn, barrier release, retire) mirrors the
    event loop's hook sequence exactly -- ``cta_launch`` before the
    per-warp ``spawn``/push pairs, ``resume`` for every released warp
    before it is re-keyed, ``complete``/``cta_retire`` at the same
    timestamps -- so collector state, trace event order, and interval
    samples are byte-identical to the event engine's.
    """
    from repro.sm.simulator import SimulationError

    scheduler = CTAScheduler(
        kernel, partition, thread_target, cta_source=cta_source
    )
    banks = make_bank_model(partition, cluster_port=cfg.cluster_port_banks)
    cache = DataCache(
        partition.cache_bytes,
        assoc=cfg.cache_assoc,
        line_bytes=cfg.cache_line_bytes,
        misaligned="floor",
    )
    if dram is None:
        dram = cfg.make_dram_channel(observer=obs.dram_transfer)
    mshr = cfg.make_mshr_file()
    cache_enabled = cache.enabled
    barrier_latency = cfg.barrier_latency

    dram_request = dram.request
    hit_latency = float(cfg.cache_hit_latency)
    line_bytes = cfg.cache_line_bytes
    txn_bytes = cfg.dram_transaction_bytes
    desch_lat = cfg.deschedule_latency
    desch_thr = cfg.deschedule_threshold if desch_lat else float("inf")
    if mshr is not None:
        mshr_outstanding = mshr.outstanding
        mshr_entry_free = mshr.entry_free_at
        mshr_allocate = mshr.allocate

    # Inlined cache probe as in replay_simulate; no fast_dram arm --
    # the collector's transfer observer keeps every request on the
    # model call, which is where DRAM trace slices originate.
    cache_sets = cache._sets
    num_sets = cache.num_sets
    cache_assoc = cache.assoc
    c_rhit = c_rmiss = c_whit = c_wmiss = 0

    # Collector internals, hoisted as in make_warp_runner_obs.  Stall
    # charges go to the warp's ``wstal`` float list, indexed by the
    # CI_* cause indices, and are folded into the collector's dicts
    # once, before ``finish`` -- trace slices (the only consumer that
    # needs cause *names* mid-run) convert through ``CAUSES``.
    sampler = obs.sampler
    trace = obs.trace
    samp_instr = sampler.add_instruction if sampler is not None else None
    samp_cache = sampler.add_cache_access if sampler is not None else None
    trace_slice = trace.slice if trace is not None else None
    # A plain profiling collector (no sampler, no trace) is the common
    # instrumented shape; one hoisted flag folds its per-op hook checks
    # into a single branch.
    lite = samp_instr is None and trace_slice is None
    CAUSES = STALL_CAUSES
    BANK = CAUSE_BANK_CONFLICT
    MSHRF = CAUSE_MSHR_FULL
    PORT = CAUSE_ISSUE_PORT
    DESCH = CAUSE_DESCHEDULE
    iBANK = CI_BANK
    iMSHR = CI_MSHR
    iPORT = CI_PORT
    iDESCH = CI_DESCH

    INF = float("inf")
    # Heap entries carry what EVERY op touches -- (key, seq, warp, pc,
    # rows, comp, cursor, stall accumulator, dep max, dep argmax); the
    # colder obs columns (wconf / wmshr / wcaus, obs rows, warp id,
    # _WarpObs) load from the warp object only on the branches that
    # consume them, so the per-yield tuple build/unpack stays lean.
    #
    # ``cursor`` rides in the entry instead of syncing through the
    # _WarpObs every park/pop: while a warp sits in this heap nothing
    # reads or writes its _WarpObs cursor (``resume`` only ever touches
    # barrier-waiting warps, which left the heap at their arrival
    # break), and a barrier release re-pushes warps with
    # ``cursor == release``, exactly the post-``resume`` value.  The
    # _WarpObs is re-synced at every barrier/retire break, i.e. before
    # anything (resume / complete / finish / conservation) reads it.
    #
    # ``dep max`` / ``dep argmax`` fuse the attribution's producer scan
    # into the scheduling scan: ``deps`` is the first-occurrence dedup,
    # in source-operand order, of the producer list ``Collector.issue``
    # walks, so the first strict maximum over either picks the same
    # producer (duplicates can never win a strict comparison against
    # their own completion) and the maxima are equal.  Producer
    # completions are final by the time either scan runs (in-order
    # replay: every producer pc has issued), so the values computed at
    # scheduling time still hold at issue time.
    heap: list = [(INF, 0, None, 0, (), None, 0.0, (), -1.0, -1)]
    heappush = heapq.heappush
    heappop = heapq.heappop
    heappushpop = heapq.heappushpop
    seq = 0
    warp_serial = 0
    spawned: list = []
    all_warps: list = []
    plans: dict = {}
    sig_rows = _sig_table(kernel, cfg.cache_line_bytes)

    def spawn_cta(now: float) -> bool:
        nonlocal seq, warp_serial
        resident = scheduler.launch_next()
        if resident is None:
            return False
        pkey = (id(sig_rows[resident.index]), resident.shared_base)
        plan = plans.get(pkey)
        if plan is None:
            plan = plans[pkey] = cta_plan(
                kernel, banks, resident.shared_base, cfg, cache_enabled,
                resident.index,
            )
        progs, ctot = plan
        obs.cta_launch(resident.index, now, len(progs))
        for wi, prog in enumerate(progs):
            w = _ColWarp(
                prog, resident, wid=warp_serial,
                obs_rows=sig_obs_rows(prog.sig),
            )
            warp_serial += 1
            obs.spawn(w.wid, resident.index, wi, now)
            w.ws = obs.warps[w.wid]
            all_warps.append(w)
            heappush(
                heap,
                (now, seq, w, 0, w.rows, w.comp, now, w.wstal, -1.0, -1),
            )
            seq += 1
        spawned.append(ctot)
        return True

    live_ctas = 0
    for _ in range(scheduler.max_concurrent):
        if spawn_cta(0.0):
            live_ctas += 1

    issued_until = 0.0
    mem_port_free = 0.0
    while True:
        item = heappop(heap)
        (ready, _, w, pc, rows, comp, cursor, wstal, dep_max,
         dep_best) = item
        if w is None:  # sentinel popped: no runnable warp left
            break
        limit = heap[0][0]
        t = ready if ready > issued_until else issued_until
        kind, a, b, aux, deps = rows[pc]
        # ---- warp run: make_warp_runner_obs's body, inlined into this
        # frame (plain locals instead of closure cells, one
        # heappushpop per yield).  Timing arithmetic is
        # make_warp_runner's; attribution is Collector.issue's, charged
        # against the popped warp's own _WarpObs state.
        while True:
            if kind == 0:  # ALU / SFU / TEX
                issue_done = t + a
                comp[pc] = t + b
            elif kind != 6:  # memory
                # Only memory arms consult the obs columns mid-op (the
                # destination register gating the writeback-class
                # stores); ALU rows skip the lookups entirely.
                dst = w.odst[pc]
                issue_done = t + 1.0
                port_start = (
                    issue_done if issue_done > mem_port_free
                    else mem_port_free
                )
                if kind == 1:  # shared load / store
                    mem_port_free = port_start + a
                    comp[pc] = port_start + b
                    if dst is not None:
                        w.wconf[pc] = (port_start - issue_done) + (a - 1.0)
                else:
                    data_ready = port_start + a
                    mem_port_free = port_start + b
                    if dst is not None:
                        w.wconf[pc] = (port_start - issue_done) + a
                    if kind == 2:  # global/local load through the cache
                        completion = data_ready
                        wb_ci = CI_RAW
                        if mshr is None:  # legacy blocking miss model
                            for li in aux[1]:
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    done = data_ready + hit_latency
                                    if samp_cache is not None:
                                        samp_cache(data_ready, True)
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    done = dram_request(
                                        data_ready, line_bytes
                                    )
                                    wb_ci = CI_MEMORY
                                    if samp_cache is not None:
                                        samp_cache(data_ready, False)
                                if done > completion:
                                    completion = done
                        else:  # non-blocking MSHR arm
                            mshr_wait = 0.0
                            cur = data_ready
                            for seg in aux[0]:
                                li = seg // line_bytes
                                ss = cache_sets[li % num_sets]
                                if li in ss:
                                    ss.move_to_end(li)
                                    c_rhit += 1
                                    hit = True
                                else:
                                    c_rmiss += 1
                                    if len(ss) >= cache_assoc:
                                        ss.popitem(last=False)
                                    ss[li] = None
                                    hit = False
                                if samp_cache is not None:
                                    samp_cache(cur, hit)
                                fill = mshr_outstanding(seg, cur)
                                if fill is not None:
                                    mshr.secondary_merges += 1
                                    wb_ci = CI_MEMORY
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr_entry_free(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        mshr_wait += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr_allocate(seg, done, cur)
                                    wb_ci = CI_MEMORY
                                if done > completion:
                                    completion = done
                            if cur > mem_port_free:
                                mem_port_free = cur
                            if mshr_wait and dst is not None:
                                w.wmshr[pc] = mshr_wait
                        comp[pc] = completion
                        # Writeback arrays start at the static latency
                        # class (RAW, zero shares): store escalations
                        # only.
                        if dst is not None and wb_ci != CI_RAW:
                            w.wcaus[pc] = wb_ci
                    elif kind == 3:  # uncached load: per-sector DRAM
                        completion = data_ready
                        if dst is not None:
                            w.wcaus[pc] = CI_MEMORY
                        for _ in range(aux):
                            done = dram_request(data_ready, txn_bytes)
                            if done > completion:
                                completion = done
                        comp[pc] = completion
                    elif kind == 4:  # cached store: write-through bursts
                        for li in aux[1]:
                            ss = cache_sets[li % num_sets]
                            if li in ss:
                                ss.move_to_end(li)
                                c_whit += 1
                                if samp_cache is not None:
                                    samp_cache(data_ready, True)
                            else:
                                c_wmiss += 1
                                if samp_cache is not None:
                                    samp_cache(data_ready, False)
                        if mshr is None:
                            for nb in aux[2]:
                                dram_request(data_ready, nb)
                        else:
                            for seg, nb in zip(aux[0], aux[2]):
                                dram_request(data_ready, nb, seg)
                        comp[pc] = issue_done
                    else:  # kind == 5, uncached store
                        for _ in range(aux):
                            dram_request(data_ready, txn_bytes)
                        comp[pc] = issue_done
            else:  # BARRIER: attribute the issue, then hand back
                issue_done = t + 1.0

            # ---- Collector.issue, inlined (same expressions/guards) --
            if ready > cursor:
                # Dependency wait: the winning producer and its
                # completion were computed by the scheduling scan that
                # keyed this op (``dep_max`` / ``dep_best``), which
                # walks the dedup of the same producer list, in the
                # same order, that Collector.issue finds in its pending
                # dict -- the strict-maximum tie-break picks the same
                # producer.
                dep_end = dep_max if dep_max < ready else ready
                if dep_end > cursor:
                    # A winning producer exists (dep_end moved), so
                    # ``dep_best`` indexes its writeback latency class.
                    # Carve its wait into bank-conflict, MSHR-full, and
                    # producer-cause shares, each capped by what
                    # remains.
                    conflict = w.wconf[dep_best]
                    mshrw = w.wmshr[dep_best]
                    wait = dep_end - cursor
                    bank = conflict if conflict < wait else wait
                    rest = wait - bank
                    msh = mshrw if mshrw < rest else rest
                    cb = cursor + bank
                    cbm = cb + msh
                    if bank > 0.0 and cb > cursor:
                        wstal[iBANK] += cb - cursor
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, w.wid, BANK, "stall",
                                cursor, cb - cursor,
                            )
                    if msh > 0.0 and cbm > cb:
                        wstal[iMSHR] += cbm - cb
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, w.wid, MSHRF, "stall", cb, cbm - cb
                            )
                    if dep_end > cbm:
                        ci = w.wcaus[dep_best]
                        wstal[ci] += dep_end - cbm
                        if trace_slice is not None:
                            trace_slice(
                                PID_WARPS, w.wid, CAUSES[ci], "stall",
                                cbm, dep_end - cbm,
                            )
                    cursor = dep_end
                if ready > cursor:
                    # Two-level scheduler reactivation latency.
                    wstal[iDESCH] += ready - cursor
                    if trace_slice is not None:
                        trace_slice(
                            PID_WARPS, w.wid, DESCH, "stall",
                            cursor, ready - cursor,
                        )
                    cursor = ready
            if t > cursor:
                wstal[iPORT] += t - cursor
                if trace_slice is not None:
                    trace_slice(
                        PID_WARPS, w.wid, PORT, "stall", cursor, t - cursor
                    )
            t1 = t + 1.0
            if issue_done > t1:
                wstal[iBANK] += issue_done - t1
                if trace_slice is not None:
                    trace_slice(
                        PID_WARPS, w.wid, BANK, "stall", t1, issue_done - t1
                    )
            cursor = issue_done
            if not lite:
                if samp_instr is not None:
                    samp_instr(t)
                if trace_slice is not None:
                    trace_slice(
                        PID_WARPS, w.wid, w.obs_rows[pc][0], "issue",
                        t, issue_done - t,
                    )
            if kind == 6:  # barrier: break out for CTA coordination
                # Re-sync the _WarpObs before CTA coordination reads it
                # (resume / complete charge from its cursor).  Ops
                # issued == pc for an in-order replay, so the
                # collector's issue counter is the resume pc itself --
                # no running counter in the loop.
                w.pc = pc + 1
                issued_until = issue_done
                ws = w.ws
                ws.cursor = cursor
                ws.issue_cycles = pc + 1
                code = 1
                value = t
                break
            pc += 1
            kind, a, b, aux, deps = rows[pc]
            nr = issue_done
            dep_max = -1.0
            dep_best = -1
            if deps:
                # Scheduling scan, fused with the attribution scan: the
                # first strict maximum over the dedup'd producers is
                # the producer Collector.issue would blame.
                for d in deps:
                    c = comp[d]
                    if c > dep_max:
                        dep_max = c
                        dep_best = d
                if dep_max > nr:
                    nr = dep_max
            elif deps is None:  # R_END sentinel: warp retired
                issued_until = issue_done
                ws = w.ws
                ws.cursor = cursor
                ws.issue_cycles = pc
                code = 2
                value = issue_done
                break
            if desch_lat and nr - issue_done > desch_thr:
                nr += desch_lat
            if nr < limit:
                # Run-batched op: the event engine would push the warp
                # keyed ``nr`` and pop it right back, so its ready and
                # grant times both equal ``nr``.
                t = nr
                ready = nr
                continue
            # Yield: park this warp keyed ``nr`` (cursor rides in the
            # entry; nothing reads the _WarpObs of a heap-parked warp)
            # and resume whichever is now earliest -- one heap
            # operation.
            issued_until = issue_done
            item = heappushpop(
                heap,
                (nr, seq, w, pc, rows, comp, cursor, wstal, dep_max,
                 dep_best),
            )
            seq += 1
            (ready, _, w, pc, rows, comp, cursor, wstal, dep_max,
             dep_best) = item
            limit = heap[0][0]
            t = ready if ready > issued_until else issued_until
            kind, a, b, aux, deps = rows[pc]
        # ---- irregular outcomes: retire / barrier --------------------
        if code == 2:  # warp retired at cycle ``value``
            obs.complete(w.wid, value)
            cta = w.cta
            cta.warps_outstanding -= 1
            if cta.warps_outstanding == 0:
                if cta.waiting_warps:
                    raise SimulationError(
                        f"CTA {cta.index} finished with warps still at a "
                        "barrier"
                    )
                scheduler.retire(cta)
                obs.cta_retire(cta.index, value)
                live_ctas -= 1
                if spawn_cta(value):
                    live_ctas += 1
        else:  # barrier arrival at cycle ``value``
            cta = w.cta
            cta.barrier_count += 1
            if cta.barrier_count == cta.warps_outstanding:
                cta.barrier_count = 0
                waiting = cta.waiting_warps
                cta.waiting_warps = []
                release = value + 1 + barrier_latency
                for other in (*waiting, w):
                    obs.resume(other.wid, release, CAUSE_BARRIER)
                    if other.pc < other.n_ops:
                        # _release_key's scan, fused with the dep
                        # argmax the attribution needs at the next pop.
                        comp_o = other.comp
                        dep_max = -1.0
                        dep_best = -1
                        for d in other.rows[other.pc][4]:
                            c = comp_o[d]
                            if c > dep_max:
                                dep_max = c
                                dep_best = d
                        # ``resume`` just set the warp's cursor to
                        # ``release``; the heap entry carries that value.
                        key = release if release > dep_max else dep_max
                        heappush(
                            heap,
                            (key, seq, other, other.pc, other.rows,
                             comp_o, release, other.wstal, dep_max,
                             dep_best),
                        )
                        seq += 1
                    else:
                        # A warp whose last instruction is a barrier.
                        cta.warps_outstanding -= 1
                        obs.complete(other.wid, release)
                if cta.warps_outstanding == 0:
                    scheduler.retire(cta)
                    obs.cta_retire(cta.index, release)
                    live_ctas -= 1
                    if spawn_cta(release):
                        live_ctas += 1
            else:
                cta.waiting_warps.append(w)

    if scheduler.remaining:
        raise SimulationError(f"{scheduler.remaining} CTAs were never launched")
    if live_ctas:
        raise SimulationError(f"{live_ctas} CTAs never finished")

    # ---- write the inlined model counters back ------------------------
    st = cache.stats
    st.read_hits = c_rhit
    st.read_misses = c_rmiss
    st.write_hits = c_whit
    st.write_misses = c_wmiss

    # Fold the per-warp stall accumulators into the collector before
    # ``finish`` (which adds the NOT_RESIDENT charge itself).  Exact:
    # every stall quantity is an integer-valued float, so one deferred
    # add per cause equals the event engine's incremental adds, and
    # nothing serializes per-warp dict insertion order (stall_totals
    # re-keys through STALL_CAUSES, conservation uses fsum).
    for w in all_warps:
        stalls = w.ws.stalls
        for ci, v in enumerate(w.wstal):
            if v:
                cause = CAUSES[ci]
                stalls[cause] = stalls.get(cause, 0.0) + v

    end = max(issued_until, mem_port_free, dram.free_at)
    obs.finish(end)
    return _replay_result(
        kernel, partition, scheduler, banks, cache, dram, mshr, spawned,
        end, obs.stall_totals(),
    )
