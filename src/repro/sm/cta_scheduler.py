"""CTA residency management for the SM simulator.

Determines how many CTAs fit a partition (via
:mod:`repro.core.occupancy`), assigns shared-memory base offsets to
resident CTAs, and feeds pending CTAs onto the SM as resident ones
retire -- the behaviour of the hardware work distributor the paper's
thread-count studies rely on (Sections 3.3 and 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.compiled import CompiledCTA, CompiledKernel
from repro.core.occupancy import occupancy_limits
from repro.core.partition import MemoryPartition
from repro.memory.sharedmem import SharedMemoryFile


class LaunchError(RuntimeError):
    """The kernel cannot place even one CTA under the partition."""


@dataclass(slots=True)
class ResidentCTA:
    """One CTA currently executing on the SM."""

    index: int
    cta: CompiledCTA
    shared_base: int
    warps_outstanding: int
    barrier_count: int = 0
    waiting_warps: list = field(default_factory=list)


class CTAScheduler:
    """Launches CTAs of one kernel under a partition's occupancy limits.

    By default the scheduler owns the whole grid and launches its CTAs
    in index order -- the single-SM methodology of the paper.  A chip
    simulation passes ``cta_source``, an object with a ``next_cta()``
    method returning the next grid index to place on *this* SM (or
    ``None`` when the grid is drained) and a ``remaining`` property, so
    one kernel launch can be distributed over many SMs by a shared
    dispatcher (:class:`repro.chip.CTADispatcher`).  With no source, the
    built-in counter behaves exactly like a source handing out
    ``0, 1, 2, ...``.
    """

    def __init__(
        self,
        kernel: CompiledKernel,
        partition: MemoryPartition,
        thread_target: int | None = None,
        cta_source=None,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self._source = cta_source
        launch = kernel.launch
        limits = occupancy_limits(
            partition,
            regs_per_thread=kernel.regs_per_thread,
            threads_per_cta=launch.threads_per_cta,
            smem_bytes_per_cta=launch.smem_bytes_per_cta,
            thread_target=thread_target if thread_target is not None else 1024,
        )
        self.limits = limits
        if limits.resident_ctas == 0:
            raise LaunchError(
                f"kernel {kernel.name!r} does not fit: one CTA needs "
                f"{4 * kernel.regs_per_thread * launch.threads_per_cta} B of "
                f"registers and {launch.smem_bytes_per_cta} B of shared memory "
                f"under {partition.describe()}"
            )
        self._smem = SharedMemoryFile(partition.smem_bytes)
        self._next_index = 0
        self.max_concurrent = limits.resident_ctas

    @property
    def remaining(self) -> int:
        """CTAs of the grid not yet launched (anywhere, if dispatched)."""
        if self._source is not None:
            return self._source.remaining
        return len(self.kernel.ctas) - self._next_index

    def launch_next(self) -> ResidentCTA | None:
        """Place the next pending CTA, or None when the grid is drained."""
        if self._source is not None:
            index = self._source.next_cta()
            if index is None:
                return None
        else:
            if self._next_index >= len(self.kernel.ctas):
                return None
            index = self._next_index
        smem_bytes = self.kernel.launch.smem_bytes_per_cta
        base = self._smem.alloc(smem_bytes)
        if base is None:
            raise LaunchError(
                f"shared memory exhausted placing CTA {index} "
                f"(occupancy limits said {self.max_concurrent} CTAs fit)"
            )
        cta = self.kernel.ctas[index]
        resident = ResidentCTA(
            index=index,
            cta=cta,
            shared_base=base,
            warps_outstanding=cta.num_warps,
        )
        if self._source is None:
            self._next_index += 1
        return resident

    def retire(self, resident: ResidentCTA) -> None:
        """Release a finished CTA's shared-memory allocation."""
        if self.kernel.launch.smem_bytes_per_cta > 0:
            self._smem.free(resident.shared_base)
