"""Chip-level simulation: N composable SMs behind shared, arbitrated DRAM.

The paper evaluates one SM with a fixed 1/32 slice of chip bandwidth
and scales chip numbers analytically.  This package makes the chip
explicit: the single-SM simulator becomes a component
(:func:`repro.sm.simulate` with injected DRAM port / CTA source /
collector), and :func:`simulate_chip` instantiates ``num_sms`` of them
behind a shared :class:`~repro.memory.dram.DRAMSystem` with a
GigaThread-style :class:`CTADispatcher` spreading the grid across SMs.

``ChipConfig.single_sm()`` -- one SM, private full-slice channel -- is
the degenerate case that reproduces the paper's methodology (and the
golden fixtures) bit for bit; see :doc:`docs/chip`.
"""

from repro.chip.config import ChipConfig, chip_fingerprint
from repro.chip.dispatch import CTADispatcher, DispatchPort
from repro.chip.result import ChipResult
from repro.chip.serialize import (
    CHIP_RESULT_FORMAT_VERSION,
    chip_result_from_dict,
    chip_result_to_dict,
    load_chip_result,
    save_chip_result,
)
from repro.chip.simulator import simulate_chip

__all__ = [
    "ChipConfig",
    "chip_fingerprint",
    "CTADispatcher",
    "DispatchPort",
    "ChipResult",
    "CHIP_RESULT_FORMAT_VERSION",
    "chip_result_to_dict",
    "chip_result_from_dict",
    "save_chip_result",
    "load_chip_result",
    "simulate_chip",
]
