"""ChipResult (de)serialization for the on-disk artifact cache.

A chip artifact embeds one complete per-SM result dict per SM in the
single-SM format of :mod:`repro.sm.serialize` (so per-SM entries stay
loadable with the existing tooling), plus the chip configuration and
chip-level aggregates.  The chip schema is versioned independently of
the per-SM schema: golden single-SM fixtures pin ``"version": 2`` and
must not move when the chip layer evolves.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.chip.config import ChipConfig
from repro.chip.result import ChipResult
from repro.sm.config import SMConfig
from repro.sm.serialize import (
    partition_from_dict,
    partition_to_dict,
    result_from_dict,
    result_to_dict,
)

#: Bump whenever the ChipResult schema changes; cached chip artifacts
#: written under another version are stale and regenerated.
#:
#: v2: the embedded SM config grew the non-blocking memory-system
#: fields (``mshr_entries``, ``dram_banks``, ``dram_row_bytes``,
#: ``dram_row_hit_latency``), so v1 artifacts no longer round-trip.
CHIP_RESULT_FORMAT_VERSION = 2


def chip_config_to_dict(chip: ChipConfig) -> dict:
    """JSON-safe form of a chip configuration (nested SM params inline)."""
    d = {}
    for f in fields(ChipConfig):
        value = getattr(chip, f.name)
        if f.name == "sm":
            # engine is timing-neutral and deliberately left out, so
            # payloads stay comparable across engine defaults.
            value = {
                g.name: getattr(value, g.name)
                for g in fields(SMConfig)
                if g.name != "engine"
            }
        d[f.name] = value
    return d


def chip_config_from_dict(d: dict) -> ChipConfig:
    """Inverse of :func:`chip_config_to_dict`."""
    kwargs = {}
    for f in fields(ChipConfig):
        value = d[f.name]
        if f.name == "sm":
            # Tolerate absent fields so payloads written before a
            # default-valued field (e.g. engine) existed still load.
            value = SMConfig(**{
                g.name: value[g.name]
                for g in fields(SMConfig)
                if g.name in value
            })
        kwargs[f.name] = value
    return ChipConfig(**kwargs)


def chip_result_to_dict(result: ChipResult) -> dict:
    """Encode one chip simulation outcome as a JSON-compatible dict."""
    return {
        "chip_version": CHIP_RESULT_FORMAT_VERSION,
        "kernel": result.kernel,
        "partition": partition_to_dict(result.partition),
        "config": chip_config_to_dict(result.config),
        "cycles": result.cycles,
        "per_sm": [result_to_dict(r) for r in result.per_sm],
        "ctas_per_sm": result.ctas_per_sm,
        "dram_channel_bytes": result.dram_channel_bytes,
        "notes": result.notes,
    }


def chip_result_from_dict(d: dict) -> ChipResult:
    """Decode :func:`chip_result_to_dict` output.

    Raises:
        ValueError: If the dict was written under another chip schema
            version (per-SM entries additionally check their own).
    """
    if d.get("chip_version") != CHIP_RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported ChipResult format version {d.get('chip_version')!r}"
        )
    return ChipResult(
        kernel=d["kernel"],
        partition=partition_from_dict(d["partition"]),
        config=chip_config_from_dict(d["config"]),
        cycles=d["cycles"],
        per_sm=[result_from_dict(r) for r in d["per_sm"]],
        ctas_per_sm=d["ctas_per_sm"],
        dram_channel_bytes=d["dram_channel_bytes"],
        notes=d["notes"],
    )


def save_chip_result(result: ChipResult, path: str | Path) -> None:
    """Write one chip outcome to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(chip_result_to_dict(result)))


def load_chip_result(path: str | Path) -> ChipResult:
    """Read a chip outcome written by :func:`save_chip_result`."""
    return chip_result_from_dict(json.loads(Path(path).read_text()))
