"""Chip-level event-driven simulation: N SMs behind one DRAM system.

One global event heap interleaves the warps of every SM by readiness,
so SMs advance together in simulated time and their DRAM requests reach
the shared :class:`~repro.memory.dram.DRAMSystem` in arrival order --
the contention the paper's fixed 1/32-bandwidth-slice methodology
cannot express.  Each SM keeps its own issue port, memory pipeline
port, bank model, cache, and counters (:class:`_SMCore`); nothing
architectural is shared except the DRAM channels and the CTA
dispatcher.

The per-warp arithmetic is *exactly* the single-SM loop of
:mod:`repro.sm.simulator` with the SM-wide state (``issued_until``,
``mem_port_free``, histograms, energy accumulators) moved onto the
warp's owning core.  That is the refactor's contract: a 1-SM chip with
a private full-slice channel (``ChipConfig.single_sm()``) replays the
identical sequence of heap operations and bus reservations, so its one
:class:`~repro.sm.result.SimResult` is bit-identical to
:func:`repro.sm.simulate` -- pinned against the golden fixtures by
``tests/chip/test_single_sm_identity.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.chip.config import ChipConfig
from repro.chip.dispatch import CTADispatcher
from repro.chip.result import ChipResult
from repro.compiler.columnar import N_TOTALS, cta_plan, sig_obs_rows
from repro.compiler.compiled import CompiledKernel, CompiledOp
from repro.compiler.precompute import (
    K_BARRIER,
    K_GLOBAL_LOAD,
    K_SHARED_LOAD,
    K_SHARED_STORE,
    K_TEX,
    plan_kernel,
)
from repro.core.partition import MemoryPartition
from repro.memory.banks import make_bank_model
from repro.memory.cache import DataCache
from repro.memory.dram import DRAMChannel, DRAMSystem
from repro.obs.collector import (
    CAUSE_BARRIER,
    CAUSE_MEMORY,
    CAUSE_RAW,
)
from repro.sm.cta_scheduler import CTAScheduler
from repro.sm.replay import (
    _ColWarp,
    _release_key,
    make_warp_runner,
    make_warp_runner_obs,
)
from repro.sm.result import EnergyCounts, SimResult
from repro.sm.simulator import SimulationError


@dataclass(slots=True)
class _ChipWarp:
    """A resident warp plus the SM core it executes on.

    Mirrors :class:`repro.sm.simulator._WarpState`; the extra ``core``
    field is how the shared event heap routes a popped warp back to its
    SM's issue port and counters.
    """

    ops: list[CompiledOp]
    plans: list
    cta: object
    core: "_SMCore"
    pc: int = 0
    pending: dict[int, float] = field(default_factory=dict)
    wid: int = 0
    widx: int = 0

    def next_ready(self, now: float) -> float:
        op = self.ops[self.pc]
        ready = now
        pending = self.pending
        if pending:
            for r in op.srcs:
                t = pending.get(r)
                if t is not None and t > ready:
                    ready = t
        return ready


class _SMCore:
    """One SM's private state inside a chip run.

    Everything :func:`repro.sm.simulate` keeps in locals lives here
    instead, because N cores advance through one interleaved loop.
    """

    __slots__ = (
        "index",
        "scheduler",
        "banks",
        "cache",
        "dram",
        "mshr",
        "obs",
        "issued_until",
        "mem_port_free",
        "instructions",
        "conflict_cycles",
        "hist",
        "arb_total",
        "mrf_reads",
        "mrf_writes",
        "orf_reads",
        "orf_writes",
        "lrf_reads",
        "lrf_writes",
        "shared_row_reads",
        "shared_row_writes",
        "cache_row_reads",
        "cache_row_writes",
        "tag_lookups",
        "warp_serial",
        "live_ctas",
    )

    def __init__(self, index, scheduler, banks, cache, dram, obs, mshr=None) -> None:
        self.index = index
        self.scheduler = scheduler
        self.banks = banks
        self.cache = cache
        self.dram = dram
        #: Per-SM MSHR file; None = legacy blocking miss model.
        self.mshr = mshr
        self.obs = obs
        self.issued_until = 0.0
        self.mem_port_free = 0.0
        self.instructions = 0
        self.conflict_cycles = 0
        self.hist = [0, 0, 0, 0, 0]
        self.arb_total = 0
        self.mrf_reads = 0
        self.mrf_writes = 0
        self.orf_reads = 0
        self.orf_writes = 0
        self.lrf_reads = 0
        self.lrf_writes = 0
        self.shared_row_reads = 0
        self.shared_row_writes = 0
        self.cache_row_reads = 0
        self.cache_row_writes = 0
        self.tag_lookups = 0
        self.warp_serial = 0
        self.live_ctas = 0

    def end_cycle(self) -> float:
        """When this SM went idle: issue, memory pipe, and its last DRAM."""
        return max(self.issued_until, self.mem_port_free, self.dram.free_at)


def _tee_channel_observer(sm_hook, chip_hook, channel: int):
    """Fan a private DRAMChannel's observer out to the SM and chip sinks.

    Partitioned DRAM has no :class:`~repro.memory.dram.DRAMSystem` to
    carry a ``channel_observer``, so the chip collector sees SM ``i``'s
    private slice as channel ``i`` through this shim.
    """
    if sm_hook is None:
        def tee(start, end, nbytes):
            chip_hook(channel, start, end, nbytes)
    else:
        def tee(start, end, nbytes):
            sm_hook(start, end, nbytes)
            chip_hook(channel, start, end, nbytes)
    return tee


def _run_chip_event(kernel, sm_cfg, cores, dispatcher, chip_obs) -> None:
    """Interpretive main loop: the single-SM hot loop over N cores.

    This is the original chip event loop, verbatim; `simulate_chip`
    routes here when the SM engine is pinned to ``"event"``
    (instrumented runs replay too, through
    :func:`_run_chip_columnar`'s per-core instrumented runners).
    """
    line_bytes = sm_cfg.cache_line_bytes
    plans_k = plan_kernel(kernel, line_bytes)

    heap: list[tuple[float, int, _ChipWarp]] = []
    seq = 0

    def push(w: _ChipWarp, now: float) -> None:
        nonlocal seq
        heapq.heappush(heap, (w.next_ready(now), seq, w))
        seq += 1

    def spawn_cta(core: _SMCore, now: float) -> bool:
        resident = core.scheduler.launch_next()
        if resident is None:
            return False
        obs = core.obs
        if obs is not None:
            obs.cta_launch(resident.index, now, len(resident.cta.warps))
        if chip_obs is not None:
            chip_obs.cta_dispatch(
                resident.index, core.index, now, dispatcher.remaining
            )
        warp_plans = plans_k[resident.index]
        for wi, cw in enumerate(resident.cta.warps):
            w = _ChipWarp(
                ops=cw.ops,
                plans=warp_plans[wi],
                cta=resident,
                core=core,
                wid=core.warp_serial,
                widx=wi,
            )
            core.warp_serial += 1
            if obs is not None:
                obs.spawn(w.wid, resident.index, wi, now)
            push(w, now)
        return True

    # Breadth-first initial fill: SM 0 gets CTA 0, SM 1 gets CTA 1, ...
    # then around again until every SM is at its residency limit or the
    # grid drains.  With one SM this is exactly the sequential fill of
    # the single-SM simulator (CTA 0, 1, 2, ... up to max_concurrent).
    progress = True
    while progress:
        progress = False
        for core in cores:
            if core.live_ctas < core.scheduler.max_concurrent and spawn_cta(core, 0.0):
                core.live_ctas += 1
                progress = True

    heappush = heapq.heappush
    heappop = heapq.heappop
    lat_by_kind = (sm_cfg.alu_latency, sm_cfg.sfu_latency, sm_cfg.tex_latency)
    shared_latency = sm_cfg.shared_latency
    hit_latency = sm_cfg.cache_hit_latency
    txn_bytes = sm_cfg.dram_transaction_bytes
    desch_lat = sm_cfg.deschedule_latency
    desch_thr = sm_cfg.deschedule_threshold
    barrier_latency = sm_cfg.barrier_latency

    # The loop body below is the single-SM hot loop of
    # repro.sm.simulator with SM-wide locals replaced by fields of the
    # popped warp's core; any timing change here breaks the N=1
    # bit-identity contract.
    while heap:
        ready, _, w = heappop(heap)
        core = w.core
        t = ready if ready > core.issued_until else core.issued_until
        pc = w.pc
        op = w.ops[pc]
        pl = w.plans[pc]
        kind = pl.kind
        core.instructions += 1
        obs = core.obs

        if kind <= K_TEX:
            penalty = pl.reg_penalty
            core.hist[pl.reg_bucket] += 1
            issue_done = t + 1 + penalty
            completion = issue_done + lat_by_kind[kind]
        elif kind == K_BARRIER:
            cta = w.cta
            cta.barrier_count += 1
            w.pc = pc + 1
            core.issued_until = t + 1
            if obs is not None:
                obs.issue(w.wid, "BARRIER", op.srcs, ready, t, t + 1)
            if cta.barrier_count == cta.warps_outstanding:
                cta.barrier_count = 0
                waiting = cta.waiting_warps
                cta.waiting_warps = []
                release = t + 1 + barrier_latency
                for other in (*waiting, w):
                    if obs is not None:
                        obs.resume(other.wid, release, CAUSE_BARRIER)
                    if other.pc < len(other.ops):
                        push(other, release)
                    else:
                        cta.warps_outstanding -= 1
                        if obs is not None:
                            obs.complete(other.wid, release)
                if cta.warps_outstanding == 0:
                    core.scheduler.retire(cta)
                    if obs is not None:
                        obs.cta_retire(cta.index, release)
                    if chip_obs is not None:
                        chip_obs.cta_retire(cta.index, core.index, release)
                    core.live_ctas -= 1
                    if spawn_cta(core, release):
                        core.live_ctas += 1
            else:
                cta.waiting_warps.append(w)
            continue
        else:
            issue_done = t + 1
            wb_cause = CAUSE_RAW
            mshr_wait = 0.0
            if kind <= K_SHARED_STORE:
                penalty, bucket, rows, arb = core.banks.planned_shared(
                    pl, op.addrs, w.cta.shared_base
                )
                core.hist[bucket] += 1
                core.arb_total += arb
                if kind == K_SHARED_LOAD:
                    core.shared_row_reads += rows
                else:
                    core.shared_row_writes += rows
                mem_port_free = core.mem_port_free
                port_start = issue_done if issue_done > mem_port_free else mem_port_free
                data_ready = port_start + penalty
                core.mem_port_free = port_start + 1 + penalty
                completion = data_ready + shared_latency
            else:
                penalty, bucket, rows, arb = core.banks.planned_global(pl)
                core.hist[bucket] += 1
                core.arb_total += arb
                cache = core.cache
                cache_enabled = cache.enabled
                if cache_enabled:
                    core.tag_lookups += pl.n_segments
                mem_port_free = core.mem_port_free
                port_start = issue_done if issue_done > mem_port_free else mem_port_free
                data_ready = port_start + penalty
                core.mem_port_free = port_start + 1 + penalty
                dram_request = core.dram.request
                if kind == K_GLOBAL_LOAD:
                    completion = data_ready
                    if cache_enabled:
                        core.cache_row_reads += rows
                        cache_read = cache.read_line
                        mshr = core.mshr
                        if mshr is not None:
                            # Non-blocking miss handling; mirrors the
                            # single-SM loop (see repro.sm.simulator).
                            cur = data_ready
                            for seg in pl.segments:
                                hit = cache_read(seg)
                                if obs is not None:
                                    obs.cache_access(cur, hit)
                                fill = mshr.outstanding(seg, cur)
                                if fill is not None:
                                    mshr.secondary_merges += 1
                                    wb_cause = CAUSE_MEMORY
                                    done = fill
                                elif hit:
                                    done = cur + hit_latency
                                else:
                                    free = mshr.entry_free_at(cur)
                                    if free > cur:
                                        mshr.full_stalls += 1
                                        mshr.full_stall_cycles += free - cur
                                        mshr_wait += free - cur
                                        cur = free
                                    done = dram_request(cur, line_bytes, seg)
                                    mshr.allocate(seg, done, cur)
                                    wb_cause = CAUSE_MEMORY
                                if done > completion:
                                    completion = done
                            if cur > core.mem_port_free:
                                core.mem_port_free = cur
                        elif obs is None:
                            for seg in pl.segments:
                                if cache_read(seg):
                                    done = data_ready + hit_latency
                                else:
                                    done = dram_request(data_ready, line_bytes)
                                    wb_cause = CAUSE_MEMORY
                                if done > completion:
                                    completion = done
                        else:
                            for seg in pl.segments:
                                if cache_read(seg):
                                    done = data_ready + hit_latency
                                    obs.cache_access(data_ready, True)
                                else:
                                    done = dram_request(data_ready, line_bytes)
                                    wb_cause = CAUSE_MEMORY
                                    obs.cache_access(data_ready, False)
                                if done > completion:
                                    completion = done
                    else:
                        wb_cause = CAUSE_MEMORY
                        ns = pl.n_sectors
                        if ns < 0:
                            ns = pl.sector_info(op.addrs, line_bytes)[0]
                        for _ in range(ns):
                            done = dram_request(data_ready, txn_bytes)
                            if done > completion:
                                completion = done
                else:
                    completion = None
                    if cache_enabled:
                        core.cache_row_writes += rows
                        cache_write = cache.write_line
                        if obs is None:
                            for seg in pl.segments:
                                cache_write(seg)
                        else:
                            for seg in pl.segments:
                                obs.cache_access(data_ready, cache_write(seg))
                        pls = pl.per_line_sectors
                        if pls is None:
                            pls = pl.sector_info(op.addrs, line_bytes)[1]
                        if core.mshr is not None:
                            for seg, nsect in zip(pl.segments, pls):
                                dram_request(data_ready, nsect * txn_bytes, seg)
                        else:
                            for nsect in pls:
                                dram_request(data_ready, nsect * txn_bytes)
                    else:
                        ns = pl.n_sectors
                        if ns < 0:
                            ns = pl.sector_info(op.addrs, line_bytes)[0]
                        for _ in range(ns):
                            dram_request(data_ready, txn_bytes)

        core.mrf_reads += pl.n_mrf_reads
        core.mrf_writes += pl.n_mrf_writes
        core.orf_reads += op.orf_reads
        core.orf_writes += op.orf_writes
        core.lrf_reads += op.lrf_reads
        core.lrf_writes += op.lrf_writes

        core.conflict_cycles += penalty
        core.issued_until = issue_done
        if op.dst is not None:
            if completion is None or completion < issue_done:
                completion = issue_done
            w.pending[op.dst] = completion
        if obs is not None:
            obs.issue(w.wid, op.op.name, op.srcs, ready, t, issue_done)
            if op.dst is not None:
                if kind <= K_TEX:
                    cause = CAUSE_MEMORY if kind == K_TEX else CAUSE_RAW
                    obs.writeback(w.wid, op.dst, completion, cause, 0.0)
                else:
                    wb_conflict = (port_start - issue_done) + penalty
                    obs.writeback(
                        w.wid, op.dst, completion, wb_cause, wb_conflict, mshr_wait
                    )

        pc += 1
        w.pc = pc
        ops_w = w.ops
        if pc < len(ops_w):
            nr = issue_done
            pending = w.pending
            if pending:
                for r in ops_w[pc].srcs:
                    t2 = pending.get(r)
                    if t2 is not None and t2 > nr:
                        nr = t2
            if desch_lat and nr - issue_done > desch_thr:
                heappush(heap, (nr + desch_lat, seq, w))
            else:
                heappush(heap, (nr, seq, w))
            seq += 1
            continue
        if obs is not None:
            obs.complete(w.wid, issue_done)
        cta = w.cta
        cta.warps_outstanding -= 1
        if cta.warps_outstanding == 0:
            if cta.waiting_warps:
                raise SimulationError(
                    f"CTA {cta.index} finished with warps still at a barrier"
                )
            core.scheduler.retire(cta)
            if obs is not None:
                obs.cta_retire(cta.index, issue_done)
            if chip_obs is not None:
                chip_obs.cta_retire(cta.index, core.index, issue_done)
            core.live_ctas -= 1
            if spawn_cta(core, issue_done):
                core.live_ctas += 1


def _run_chip_columnar(kernel, sm_cfg, cores, dispatcher, chip_obs) -> None:
    """Columnar replay main loop: same interleaving, compiled rows.

    One global heap of ``(ready, seq, warp)`` entries keyed exactly as
    the event loop keys them; each popped warp replays on its owning
    core's :func:`repro.sm.replay.make_warp_runner` closure while its
    next ready time stays strictly below the earliest other entry, so
    the chip-wide issue order is unchanged.  Static per-CTA totals are
    folded into the core counters once at the end, and ``state()``
    flushes each runner's inlined cache/DRAM counters back into the
    model objects the shared epilogue reads.

    Observability rides the same loop: a core with a live collector
    gets the instrumented runner
    (:func:`repro.sm.replay.make_warp_runner_obs`), and the CTA
    choreography below fires ``cta_launch`` / ``spawn`` / ``resume`` /
    ``complete`` / ``cta_retire`` plus the chip collector's
    ``cta_dispatch`` / ``cta_retire`` taps in exactly the event loop's
    order; DRAM-window taps fire from the channel observers wired at
    core construction, which the instrumented runner always routes
    requests through.
    """
    heappush = heapq.heappush
    heappop = heapq.heappop
    barrier_latency = sm_cfg.barrier_latency
    runners = []
    states = []
    spawned: list[list] = []
    for core in cores:
        if core.obs is not None:
            run, state = make_warp_runner_obs(
                sm_cfg, core.cache, core.dram, core.mshr, core.obs
            )
        else:
            run, state = make_warp_runner(
                sm_cfg, core.cache, core.dram, core.mshr
            )
        runners.append(run)
        states.append(state)
        spawned.append([])

    heap: list = []
    seq = 0

    def spawn_cta(core, now: float) -> bool:
        nonlocal seq
        resident = core.scheduler.launch_next()
        if resident is None:
            return False
        progs, ctot = cta_plan(
            kernel,
            core.banks,
            resident.shared_base,
            sm_cfg,
            core.cache.enabled,
            resident.index,
        )
        obs = core.obs
        if obs is not None:
            obs.cta_launch(resident.index, now, len(progs))
        if chip_obs is not None:
            chip_obs.cta_dispatch(
                resident.index, core.index, now, dispatcher.remaining
            )
        if obs is not None:
            for wi, prog in enumerate(progs):
                w = _ColWarp(
                    prog, resident, core, wid=core.warp_serial,
                    obs_rows=sig_obs_rows(prog.sig),
                )
                core.warp_serial += 1
                obs.spawn(w.wid, resident.index, wi, now)
                w.ws = obs.warps[w.wid]
                heappush(heap, (now, seq, w))
                seq += 1
        else:
            for prog in progs:
                w = _ColWarp(prog, resident, core)
                heappush(heap, (now, seq, w))
                seq += 1
        spawned[core.index].append(ctot)
        return True

    # Breadth-first initial fill, as in the event loop.
    progress = True
    while progress:
        progress = False
        for core in cores:
            if core.live_ctas < core.scheduler.max_concurrent and spawn_cta(core, 0.0):
                core.live_ctas += 1
                progress = True

    INF = float("inf")
    while heap:
        ready, _, w = heappop(heap)
        core = w.core
        limit = heap[0][0] if heap else INF
        code, value = runners[core.index](w, ready, limit)
        if code == 0:
            # Yield: overtaken by the earliest other warp; re-key.
            heappush(heap, (value, seq, w))
            seq += 1
            continue
        if code == 2:
            # Warp drained at cycle ``value``.
            obs = core.obs
            if obs is not None:
                obs.complete(w.wid, value)
            cta = w.cta
            cta.warps_outstanding -= 1
            if cta.warps_outstanding == 0:
                if cta.waiting_warps:
                    raise SimulationError(
                        f"CTA {cta.index} finished with warps still at a barrier"
                    )
                core.scheduler.retire(cta)
                if obs is not None:
                    obs.cta_retire(cta.index, value)
                if chip_obs is not None:
                    chip_obs.cta_retire(cta.index, core.index, value)
                core.live_ctas -= 1
                if spawn_cta(core, value):
                    core.live_ctas += 1
            continue
        # Barrier arrival at cycle ``value``.
        cta = w.cta
        cta.barrier_count += 1
        if cta.barrier_count == cta.warps_outstanding:
            cta.barrier_count = 0
            waiting = cta.waiting_warps
            cta.waiting_warps = []
            release = value + 1 + barrier_latency
            obs = core.obs
            for other in (*waiting, w):
                if obs is not None:
                    obs.resume(other.wid, release, CAUSE_BARRIER)
                if other.pc < other.n_ops:
                    heappush(heap, (_release_key(other, release), seq, other))
                    seq += 1
                else:
                    cta.warps_outstanding -= 1
                    if obs is not None:
                        obs.complete(other.wid, release)
            if cta.warps_outstanding == 0:
                core.scheduler.retire(cta)
                if obs is not None:
                    obs.cta_retire(cta.index, release)
                if chip_obs is not None:
                    chip_obs.cta_retire(cta.index, core.index, release)
                core.live_ctas -= 1
                if spawn_cta(core, release):
                    core.live_ctas += 1
        else:
            cta.waiting_warps.append(w)

    # Fold the spawn-time static totals into each core's counters and
    # flush runner state so the epilogue reads live model objects.
    for core in cores:
        rows = spawned[core.index]
        if rows:
            totals = [sum(col) for col in zip(*rows)]
        else:
            totals = [0] * N_TOTALS
        (
            core.instructions,
            core.conflict_cycles,
            core.arb_total,
            h0,
            h1,
            h2,
            h3,
            h4,
            core.mrf_reads,
            core.mrf_writes,
            core.orf_reads,
            core.orf_writes,
            core.lrf_reads,
            core.lrf_writes,
            core.shared_row_reads,
            core.shared_row_writes,
            core.cache_row_reads,
            core.cache_row_writes,
            core.tag_lookups,
        ) = totals
        core.hist = [h0, h1, h2, h3, h4]
        core.issued_until, core.mem_port_free = states[core.index]()


def simulate_chip(
    kernel: CompiledKernel,
    partition: MemoryPartition,
    chip: ChipConfig | None = None,
    thread_target: int | None = None,
    collectors=None,
    chip_collector=None,
) -> ChipResult:
    """Run one kernel launch across every SM of a chip.

    CTAs are distributed GigaThread-style by a shared
    :class:`~repro.chip.dispatch.CTADispatcher` (grid order, to whichever
    SM frees a residency slot first); DRAM requests either share the
    chip's arbitrated channels or, when ``chip.dram_partitioned``, go to
    private per-SM slices -- the paper's methodology.

    Args:
        kernel: Compiled kernel; the *whole* grid is one launch, however
            many SMs share it.
        partition: Memory split every SM runs under.
        chip: Chip shape and DRAM model; defaults to the paper's 32-SM,
            256 B/cycle chip with shared channels.
        thread_target: Per-SM resident-thread cap (as in
            :func:`repro.sm.simulate`).
        collectors: Optional list of per-SM observability collectors,
            one per SM (``None`` entries allowed).  Each SM's collector
            sees only that SM's events; all are finished at the chip
            makespan so per-SM stall attribution conserves against chip
            time.
        chip_collector: Optional
            :class:`~repro.obs.chip.ChipCollector`; its per-SM
            collectors become the ``collectors`` list, its DRAM hook
            rides the channel observer, and its dispatcher tap records
            every CTA hand-out and retirement.  Mutually exclusive with
            ``collectors``.

    Returns:
        A :class:`~repro.chip.result.ChipResult` holding one measured
        :class:`~repro.sm.result.SimResult` per SM plus chip aggregates.
    """
    cfg = chip or ChipConfig()
    sm_cfg = cfg.sm
    n = cfg.num_sms
    chip_obs = (
        chip_collector
        if chip_collector is not None and chip_collector.enabled
        else None
    )
    if chip_obs is not None:
        if collectors is not None:
            raise ValueError("pass either collectors or chip_collector, not both")
        if chip_obs.num_sms != n:
            raise ValueError(
                f"chip_collector shaped for {chip_obs.num_sms} SMs, chip has {n}"
            )
        expected_channels = n if cfg.dram_partitioned else cfg.dram_channels
        if chip_obs.num_channels != expected_channels:
            raise ValueError(
                f"chip_collector shaped for {chip_obs.num_channels} DRAM "
                f"channels, chip has {expected_channels}"
            )
        collectors = chip_obs.collectors
    if collectors is None:
        collectors = [None] * n
    if len(collectors) != n:
        raise ValueError(f"need {n} collectors (one per SM), got {len(collectors)}")

    dispatcher = CTADispatcher(len(kernel.ctas), n)
    system = None
    if not cfg.dram_partitioned:
        system = DRAMSystem(
            bytes_per_cycle=cfg.dram_bytes_per_cycle,
            channels=cfg.dram_channels,
            latency=sm_cfg.dram_latency,
            transaction_bytes=sm_cfg.dram_transaction_bytes,
            channel_observer=(
                chip_obs.dram_channel_transfer if chip_obs is not None else None
            ),
            banks=sm_cfg.dram_banks,
            row_bytes=sm_cfg.dram_row_bytes,
            row_hit_latency=sm_cfg.dram_row_hit_latency,
        )

    cores: list[_SMCore] = []
    for i in range(n):
        obs = collectors[i] if collectors[i] is not None and collectors[i].enabled else None
        hook = obs.dram_transfer if obs is not None else None
        if system is not None:
            dram = system.port(i, observer=hook)
        else:
            if chip_obs is not None:
                hook = _tee_channel_observer(hook, chip_obs.dram_channel_transfer, i)
            dram = DRAMChannel(
                bytes_per_cycle=cfg.sm_bandwidth_slice,
                latency=sm_cfg.dram_latency,
                transaction_bytes=sm_cfg.dram_transaction_bytes,
                observer=hook,
                banks=sm_cfg.dram_banks,
                row_bytes=sm_cfg.dram_row_bytes,
                row_hit_latency=sm_cfg.dram_row_hit_latency,
            )
        cores.append(
            _SMCore(
                index=i,
                scheduler=CTAScheduler(
                    kernel, partition, thread_target, cta_source=dispatcher.port(i)
                ),
                banks=make_bank_model(partition, cluster_port=sm_cfg.cluster_port_banks),
                cache=DataCache(
                    partition.cache_bytes,
                    assoc=sm_cfg.cache_assoc,
                    line_bytes=sm_cfg.cache_line_bytes,
                    # Unified-allocator remainders round down explicitly
                    # (slack stays visible on cache.slack_bytes).
                    misaligned="floor",
                ),
                dram=dram,
                mshr=sm_cfg.make_mshr_file(),
                obs=obs,
            )
        )

    if sm_cfg.engine == "columnar":
        # No tiered warm-up at chip scope: one chip simulation runs the
        # kernel on every SM (instrumented or not), so lowering
        # amortises within the run.  Mark the kernel warm so later
        # single-SM sims replay directly.
        kernel._plan_cache[("colwarm", sm_cfg.cache_line_bytes)] = True
        _run_chip_columnar(kernel, sm_cfg, cores, dispatcher, chip_obs)
    else:
        _run_chip_event(kernel, sm_cfg, cores, dispatcher, chip_obs)


    if dispatcher.remaining:
        raise SimulationError(f"{dispatcher.remaining} CTAs were never dispatched")
    for core in cores:
        if core.live_ctas:
            raise SimulationError(
                f"{core.live_ctas} CTAs never finished on SM {core.index}"
            )

    chip_cycles = max(core.end_cycle() for core in cores)

    per_sm: list[SimResult] = []
    for core in cores:
        h = core.banks.histogram
        h.at_most_1 += core.hist[0]
        h.exactly_2 += core.hist[1]
        h.exactly_3 += core.hist[2]
        h.exactly_4 += core.hist[3]
        h.over_4 += core.hist[4]
        if core.arb_total:
            core.banks.arbitration_conflicts += core.arb_total
        counts = EnergyCounts(
            mrf_reads=core.mrf_reads,
            mrf_writes=core.mrf_writes,
            orf_reads=core.orf_reads,
            orf_writes=core.orf_writes,
            lrf_reads=core.lrf_reads,
            lrf_writes=core.lrf_writes,
            shared_row_reads=core.shared_row_reads,
            shared_row_writes=core.shared_row_writes,
            cache_row_reads=core.cache_row_reads,
            cache_row_writes=core.cache_row_writes,
            tag_lookups=core.tag_lookups,
            dram_bits=core.dram.bits_transferred,
        )
        stall_cycles: dict[str, float] = {}
        if core.obs is not None:
            core.obs.finish(chip_cycles)
            stall_cycles = core.obs.stall_totals()
        sm_notes: dict = {}
        if core.mshr is not None:
            memsys = {"mshr": core.mshr.stats()}
            if getattr(core.dram, "row_hits", None) is not None:
                # Partitioned mode: the private channel's row counters.
                memsys["dram_row_hits"] = core.dram.row_hits
                memsys["dram_row_misses"] = core.dram.row_misses
            sm_notes["memsys"] = memsys
        per_sm.append(
            SimResult(
                kernel=kernel.name,
                partition=partition,
                cycles=core.end_cycle(),
                instructions=core.instructions,
                resident_ctas=core.scheduler.max_concurrent,
                resident_threads=core.scheduler.limits.resident_threads,
                regs_per_thread=kernel.regs_per_thread,
                bank_conflict_cycles=core.conflict_cycles,
                conflict_histogram=core.banks.histogram,
                cache_stats=core.cache.stats,
                dram_accesses=core.dram.accesses,
                dram_bytes=core.dram.bytes_transferred,
                energy_counts=counts,
                limiting_resource=core.scheduler.limits.limiting_resource,
                stall_cycles=stall_cycles,
                notes=sm_notes,
            )
        )

    if chip_obs is not None:
        chip_obs.finish(chip_cycles)

    chip_notes: dict = {}
    if sm_cfg.non_blocking:
        memsys = {
            "mshr_entries": sm_cfg.mshr_entries,
            "primary_misses": sum(c.mshr.primary_misses for c in cores),
            "secondary_merges": sum(c.mshr.secondary_merges for c in cores),
            "full_stalls": sum(c.mshr.full_stalls for c in cores),
            "full_stall_cycles": sum(c.mshr.full_stall_cycles for c in cores),
        }
        if system is not None:
            memsys["dram_row_hits"] = system.row_hits
            memsys["dram_row_misses"] = system.row_misses
        else:
            memsys["dram_row_hits"] = sum(c.dram.row_hits for c in cores)
            memsys["dram_row_misses"] = sum(c.dram.row_misses for c in cores)
        chip_notes["memsys"] = memsys

    return ChipResult(
        kernel=kernel.name,
        partition=partition,
        config=cfg,
        cycles=chip_cycles,
        per_sm=per_sm,
        ctas_per_sm=[len(a) for a in dispatcher.assignments],
        dram_channel_bytes=list(system.channel_bytes) if system is not None else [],
        notes=chip_notes,
    )
