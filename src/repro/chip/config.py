"""Chip-level simulation parameters (paper Sections 2 and 5.2).

The paper simulates one SM with a 1/32 slice of chip bandwidth and
scales to a 32-SM, 130 W chip analytically.  :class:`ChipConfig` makes
the chip explicit: how many SMs, how much total off-chip bandwidth, and
whether that bandwidth is hard-partitioned into private per-SM slices
(the paper's methodology) or shared through an arbitrated
:class:`~repro.memory.dram.DRAMSystem` (the contention model the
single-SM methodology cannot express).

The defaults describe the paper's chip: 32 SMs sharing 256 bytes/cycle.
``ChipConfig.single_sm()`` is the degenerate configuration -- one SM
with a private 8 B/cycle channel -- under which
:func:`repro.chip.simulate_chip` reproduces the single-SM simulator
bit for bit (pinned by the golden-fixture tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.sm.config import SMConfig


@dataclass(frozen=True, slots=True)
class ChipConfig:
    """Parameters of a chip built from N composable SMs.

    Attributes:
        num_sms: SMs on the chip (paper Section 2: 32).
        dram_bytes_per_cycle: *Total* off-chip bandwidth shared by all
            SMs (paper: 256 B/cycle).  Note this supersedes the per-SM
            ``SMConfig.dram_bytes_per_cycle`` slice, which only governs
            standalone single-SM runs.
        dram_channels: Channels the shared DRAM system stripes its
            bandwidth over (GDDR-style; ignored when partitioned).
        dram_partitioned: ``True`` gives every SM a private
            ``dram_bytes_per_cycle / num_sms`` channel -- the paper's
            fixed-slice methodology; ``False`` (default) arbitrates the
            shared channels FCFS between SMs.
        sm: Per-SM timing parameters (latencies, cache geometry).  The
            memory-system knobs ride here too: ``sm.mshr_entries``
            enables non-blocking miss handling per SM, and
            ``sm.dram_banks`` / ``sm.dram_row_bytes`` /
            ``sm.dram_row_hit_latency`` give the shared system (or each
            private slice) banked open-page row-buffer timing.
    """

    num_sms: int = 32
    dram_bytes_per_cycle: float = 256.0
    dram_channels: int = 8
    dram_partitioned: bool = False
    sm: SMConfig = field(default_factory=SMConfig)

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.dram_bytes_per_cycle <= 0:
            raise ValueError("dram_bytes_per_cycle must be positive")
        if self.dram_channels < 1:
            raise ValueError("dram_channels must be >= 1")

    @property
    def sm_bandwidth_slice(self) -> float:
        """Bytes/cycle one SM gets under hard partitioning."""
        return self.dram_bytes_per_cycle / self.num_sms

    @classmethod
    def single_sm(cls, sm: SMConfig | None = None) -> "ChipConfig":
        """The paper's methodology as a 1-SM chip.

        One SM behind a private channel carrying exactly the bandwidth
        slice of the given :class:`SMConfig` (default: Table 2's
        8 B/cycle).  ``simulate_chip`` under this configuration is
        bit-identical to :func:`repro.sm.simulate`.
        """
        cfg = sm or SMConfig()
        return cls(
            num_sms=1,
            dram_bytes_per_cycle=cfg.dram_bytes_per_cycle,
            dram_channels=1,
            dram_partitioned=True,
            sm=cfg,
        )


def chip_fingerprint(chip: ChipConfig) -> tuple:
    """Stable, hashable, JSON-compatible rendering of a ChipConfig.

    The nested :class:`SMConfig` is flattened through
    :func:`repro.experiments.runner.config_fingerprint`'s scheme (name/
    value pairs), so two chips differing only in SM timing never share a
    cache key.
    """
    pairs = []
    for f in fields(ChipConfig):
        value = getattr(chip, f.name)
        if f.name == "sm":
            # engine is timing-neutral (bit-identical engines), so it
            # must not perturb the fingerprint.
            value = tuple(
                (g.name, getattr(value, g.name))
                for g in fields(SMConfig)
                if g.name != "engine"
            )
        pairs.append((f.name, value))
    return tuple(pairs)
