"""Chip simulation outputs: per-SM results plus chip-level aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.config import ChipConfig
from repro.core.partition import MemoryPartition
from repro.memory.dram import channel_utilisation
from repro.sm.result import SimResult


@dataclass(slots=True)
class ChipResult:
    """Outcome of simulating one kernel launch across a whole chip.

    The authoritative record is :attr:`per_sm`: one full
    :class:`~repro.sm.result.SimResult` per SM, measured (not scaled)
    under whatever DRAM contention the run saw.  Chip-level numbers are
    aggregations of those -- the makespan, summed traffic and
    instructions -- plus the shared-DRAM channel accounting the per-SM
    view cannot carry.
    """

    kernel: str
    partition: MemoryPartition
    config: ChipConfig
    #: Chip makespan: the cycle the last SM (and the bus) went idle.
    cycles: float
    per_sm: list[SimResult]
    #: CTAs each SM executed (dispatcher assignment counts).
    ctas_per_sm: list[int]
    #: Bytes moved per shared-DRAM channel (empty when partitioned:
    #: per-SM channels are private, see ``per_sm[i].dram_bytes``).
    dram_channel_bytes: list[int] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    @property
    def num_sms(self) -> int:
        return len(self.per_sm)

    @property
    def instructions(self) -> int:
        """Warp instructions issued chip-wide."""
        return sum(r.instructions for r in self.per_sm)

    @property
    def ipc(self) -> float:
        """Chip-wide warp instructions per cycle (sums over SMs)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def dram_accesses(self) -> int:
        return sum(r.dram_accesses for r in self.per_sm)

    @property
    def dram_bytes(self) -> int:
        """Total off-chip traffic; equals the channel totals by invariant."""
        return sum(r.dram_bytes for r in self.per_sm)

    @property
    def dram_utilisation(self) -> float:
        """Fraction of total chip DRAM bandwidth-cycles used."""
        return channel_utilisation(
            self.dram_bytes, self.config.dram_bytes_per_cycle, self.cycles
        )

    @property
    def total_ctas(self) -> int:
        return sum(self.ctas_per_sm)

    def speedup_over(self, baseline: "ChipResult") -> float:
        """Makespan ratio against a baseline run of the same kernel."""
        if self.kernel != baseline.kernel:
            raise ValueError(
                f"cannot compare runs of different kernels: "
                f"{self.kernel!r} vs {baseline.kernel!r}"
            )
        if self.cycles <= 0:
            raise ValueError("run has no cycles")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        """One-line chip digest (for CLI output)."""
        dram_mode = (
            "partitioned"
            if self.config.dram_partitioned
            else f"{self.config.dram_channels}ch shared"
        )
        return (
            f"{self.kernel}: {self.num_sms} SMs, {self.cycles:.0f} cycles, "
            f"chip IPC {self.ipc:.3f}, {self.total_ctas} CTAs, "
            f"{self.dram_bytes} DRAM bytes "
            f"({self.dram_utilisation:.1%} of {dram_mode} "
            f"{self.config.dram_bytes_per_cycle:g} B/cycle) "
            f"[{self.partition.describe()}]"
        )
