"""Chip-level CTA dispatch: one grid distributed over many SMs.

Models the hardware work distributor (NVIDIA's "GigaThread engine"):
CTAs are handed out in grid-index order to whichever SM has a free
residency slot, so faster SMs naturally pull more work.  The initial
fill in :func:`repro.chip.simulate_chip` asks SMs round-robin -- SM 0
gets CTA 0, SM 1 gets CTA 1, ... -- and every later hand-out happens
when a resident CTA retires, which is launch-order FCFS.

With one SM the dispatcher degenerates to the counter inside
:class:`repro.sm.cta_scheduler.CTAScheduler`: indices ``0, 1, 2, ...``
in order, which is what keeps the 1-SM chip bit-identical to the
single-SM simulator.
"""

from __future__ import annotations


class CTADispatcher:
    """Hands out grid CTA indices to requesting SMs in launch order."""

    def __init__(self, num_ctas: int, num_sms: int) -> None:
        if num_ctas < 0:
            raise ValueError("num_ctas must be non-negative")
        if num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        self.num_ctas = num_ctas
        self._next = 0
        #: Grid indices assigned to each SM, in launch order.
        self.assignments: list[list[int]] = [[] for _ in range(num_sms)]

    @property
    def remaining(self) -> int:
        """CTAs of the grid not yet handed to any SM."""
        return self.num_ctas - self._next

    def _check_sm_index(self, sm_index: int) -> None:
        # A negative index would silently append to the wrong SM's
        # assignment list via Python's wraparound indexing.
        if not 0 <= sm_index < len(self.assignments):
            raise ValueError(
                f"sm_index {sm_index} out of range for a "
                f"{len(self.assignments)}-SM dispatcher (expected 0 <= "
                f"sm_index < {len(self.assignments)})"
            )

    def next_cta(self, sm_index: int) -> int | None:
        """The next CTA for ``sm_index``, or None when the grid is drained."""
        self._check_sm_index(sm_index)
        if self._next >= self.num_ctas:
            return None
        index = self._next
        self._next += 1
        self.assignments[sm_index].append(index)
        return index

    def port(self, sm_index: int) -> "DispatchPort":
        """A per-SM view usable as a CTAScheduler ``cta_source``."""
        return DispatchPort(self, sm_index)


class DispatchPort:
    """One SM's handle on the shared dispatcher (the ``cta_source`` shape)."""

    __slots__ = ("dispatcher", "sm_index")

    def __init__(self, dispatcher: CTADispatcher, sm_index: int) -> None:
        dispatcher._check_sm_index(sm_index)
        self.dispatcher = dispatcher
        self.sm_index = sm_index

    @property
    def remaining(self) -> int:
        return self.dispatcher.remaining

    def next_cta(self) -> int | None:
        return self.dispatcher.next_cta(self.sm_index)
