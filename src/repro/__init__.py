"""repro: unified GPU local memory, reproduced.

A from-scratch Python reproduction of *Unifying Primary Cache, Scratch,
and Register File Memories in a Throughput Processor* (Gebhart, Keckler,
Khailany, Krashinsky, Dally -- MICRO 2012): a trace-driven single-SM GPU
simulator with a compile-time register-file hierarchy, banked memory
models for the hard-partitioned and unified designs, the Section 4.5
capacity allocator, an analytic energy model, the 26-benchmark Table 1
workload suite, and experiment drivers that regenerate every table and
figure of the paper's evaluation.

Typical flow::

    from repro import (
        get_benchmark, compile_kernel, simulate,
        partitioned_baseline, allocate_unified, EnergyModel,
    )

    trace = get_benchmark("needle").build("small")
    kernel = compile_kernel(trace)
    base = simulate(kernel, partitioned_baseline())
    alloc = allocate_unified(384 * 1024, kernel.regs_per_thread,
                             trace.launch.threads_per_cta,
                             trace.launch.smem_bytes_per_cta)
    unified = simulate(kernel, alloc.partition)
    print(unified.speedup_over(base))

See ``repro.experiments`` for the per-table/figure drivers.
"""

from repro.compiler import CompiledKernel, compile_kernel, max_live_registers
from repro.core import (
    AllocationError,
    DesignStyle,
    MemoryPartition,
    allocate_unified,
    fermi_like,
    fermi_like_best_split,
    max_resident_threads,
    occupancy_limits,
    partitioned_baseline,
    partitioned_design,
)
from repro.energy import EnergyBreakdown, EnergyModel, EnergyParams, bank_energy
from repro.isa import KernelTrace, LaunchConfig, WarpBuilder
from repro.kernels import (
    BENEFIT_SET,
    NO_BENEFIT_SET,
    all_benchmarks,
    get_benchmark,
)
from repro.sm import SMConfig, SimResult, simulate

# After repro.sm: repro.chip pulls in repro.sm.config, whose import
# chain through repro.core is order-sensitive (core.autotune imports it
# back); entering via repro.sm first keeps the cycle resolved.
from repro.chip import ChipConfig, ChipResult, simulate_chip

__version__ = "1.1.0"

__all__ = [
    "AllocationError",
    "BENEFIT_SET",
    "ChipConfig",
    "ChipResult",
    "CompiledKernel",
    "DesignStyle",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "KernelTrace",
    "LaunchConfig",
    "MemoryPartition",
    "NO_BENEFIT_SET",
    "SMConfig",
    "SimResult",
    "WarpBuilder",
    "all_benchmarks",
    "allocate_unified",
    "bank_energy",
    "compile_kernel",
    "fermi_like",
    "fermi_like_best_split",
    "get_benchmark",
    "max_live_registers",
    "max_resident_threads",
    "occupancy_limits",
    "partitioned_baseline",
    "partitioned_design",
    "simulate",
    "simulate_chip",
    "__version__",
]
