"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The benchmark suite with Table 1 metadata.
``run BENCH``
    Simulate one benchmark under a design (baseline / fermi / unified)
    and print timing, traffic, and energy against the baseline.
``chip BENCH``
    Simulate one benchmark across N SMs sharing arbitrated DRAM
    (``--sms``, ``--total-bw``, ``--channels``, ``--partitioned-dram``)
    and print the per-SM table plus a measured chip energy summary.
``profile BENCH``
    Simulate one benchmark with the observability layer attached and
    print the per-cause stall-cycle attribution (plus optional interval
    metrics / trace JSON).  With ``--sms N`` the run happens at chip
    scope: the roll-up sums every SM, ``--metrics-out`` switches to the
    ``repro.obs.chipmetrics/1`` time series.
``trace BENCH``
    Write a Chrome trace-event file of one simulation, viewable in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  With
    ``--sms N`` the file is the merged chip timeline
    (``repro.obs.trace/2``): a process per SM plus DRAM-channel and
    CTA-dispatcher tracks.  ``trace --compare A B`` instead pivots two
    previously written trace files into one side-by-side timeline.
``compare A B``
    Cross-run diff engine: align two run payloads of the same kind
    (``--metrics-out`` metrics, ``profile`` stall reports, chip
    profiles/metrics/results, traces, manifests) and attribute the
    cycle delta -- stall-cause deltas with the conservation invariant
    re-verified on both sides, per-SM/per-channel deltas, per-CTA
    slowdowns.  Exits 1 if either side's conservation fails.
``experiment ID``
    Regenerate one of the paper's tables/figures (``table1``,
    ``figure2`` ... ``figure11``, ``ablation-cluster-port``,
    ``ablation-no-hierarchy``).
``suite``
    Regenerate every table/figure in one go, with per-experiment
    wall-clock timing.
``autotune BENCH``
    Sweep thread targets under a unified capacity (Section 4.5 remark).
``sweep BENCH``
    Capacity sweep (Table 6 style) for one benchmark.
``bench``
    Performance benchmarks of the simulator hot paths; writes a
    schema-versioned ``BENCH_<date>.json``, and ``--compare OLD NEW``
    flags wall-clock regressions between two payloads.

The ``experiment``, ``suite``, and ``validate`` commands accept
``--jobs N`` (fan independent simulations over N worker processes),
``--cache-dir PATH`` (persist traces and simulation results across runs
in a content-addressed on-disk cache), and ``--metrics-out PATH``
(deterministic simulation-metrics JSON, byte-identical across ``--jobs``
settings).  When a cache dir is armed, every run also writes a
provenance manifest under ``<cache-dir>/manifests/``.

Diagnostics go through :mod:`logging` (logger ``repro``) to stderr;
``-v/--verbose`` and ``-q/--quiet`` adjust the level per command.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

from repro.core.partition import KB

log = logging.getLogger("repro")


def _configure_logging(args: argparse.Namespace) -> None:
    """(Re)bind the ``repro`` logger to the current stderr.

    Recreated on every :func:`main` call so test harnesses that swap
    ``sys.stderr`` between invocations capture the stream they expect.
    """
    verbosity = getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    for handler in list(log.handlers):
        log.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    log.addHandler(handler)
    log.setLevel(level)
    log.propagate = False


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_executor_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes for independent simulations "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="persist traces/results in a content-addressed "
                        "cache reused across runs and workers; also "
                        "writes a run manifest under manifests/")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write deterministic simulation metrics JSON "
                        "(identical for any --jobs value)")
    p.add_argument("--spans", action="store_true",
                   help="record fleet-scope executor spans (submit/queue/"
                        "run per job, worker id, cache disposition); "
                        "summary on stderr, log persisted under "
                        "<cache-dir>/spans/ when a cache dir is armed")
    p.add_argument("--spans-out", default=None, metavar="PATH",
                   help="write the repro.obs.spans/1 span log to PATH "
                        "(implies --spans)")
    p.add_argument("--spans-trace-out", default=None, metavar="PATH",
                   help="write a Perfetto timeline of the whole sweep to "
                        "PATH (implies --spans)")


def _sm_config(args: argparse.Namespace):
    """The SMConfig an invocation's memory-system flags denote.

    Commands without the flag group (``experiment``, ``suite``, ...)
    fall through to the Table 2 defaults, i.e. the blocking model.
    """
    from repro.sm.config import SMConfig

    return SMConfig(
        mshr_entries=getattr(args, "mshr_entries", 0),
        dram_banks=getattr(args, "dram_banks", 1),
        dram_row_bytes=getattr(args, "dram_row_bytes", 2048),
        dram_row_hit_latency=getattr(args, "dram_row_hit_latency", None),
        engine=getattr(args, "engine", "columnar"),
    )


def _make_executor(args: argparse.Namespace):
    from repro.experiments.artifacts import DiskCache
    from repro.experiments.executor import Executor
    from repro.experiments.runner import Runner

    try:
        cache = DiskCache(args.cache_dir) if args.cache_dir else None
    except OSError as e:
        log.error("cannot use cache dir %r: %s", args.cache_dir, e)
        raise SystemExit(2) from e
    runner = Runner(args.scale, _sm_config(args), cache=cache)
    spans = None
    if (
        getattr(args, "spans", False)
        or getattr(args, "spans_out", None)
        or getattr(args, "spans_trace_out", None)
    ):
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder(command=getattr(args, "_cmdline", args.command))
    return Executor(runner, jobs=args.jobs, progress=args.jobs > 1, spans=spans)


def _finish_run(
    args: argparse.Namespace,
    executor,
    experiments: list[dict] | None = None,
    per_experiment: list[dict] | None = None,
    chip_summary: dict | None = None,
) -> None:
    """Post-run observability: ``--metrics-out`` file and run manifest.

    The metrics payload holds only simulation-derived numbers (sorted
    deterministically, no wall-clock), so it is byte-identical between
    ``--jobs 1`` and ``--jobs N``.  Wall-clock and cache statistics live
    in the manifest, which is written only when a cache dir is armed.
    """
    runner = executor.runner
    if getattr(args, "metrics_out", None):
        payload = runner.sim_metrics()
        if per_experiment is not None:
            payload["experiments"] = per_experiment
        Path(args.metrics_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        log.info("wrote metrics to %s", args.metrics_out)
    if runner.cache is not None:
        from repro.obs.manifest import build_run_manifest

        manifest = build_run_manifest(
            command=getattr(args, "_cmdline", args.command),
            scale=args.scale,
            config=runner.config,
            jobs=args.jobs,
            experiments=experiments,
            executor=executor,
            chip=chip_summary,
            engines=runner.engine_summary(),
        )
        path = runner.cache.put_manifest(manifest)
        log.info("wrote run manifest to %s", path)
    spans = getattr(executor, "spans", None)
    if spans is not None and spans.spans:
        log.info("%s", spans.format_summary())
        payload = spans.to_payload()
        if getattr(args, "spans_out", None):
            Path(args.spans_out).write_text(
                json.dumps(payload, indent=2, sort_keys=True)
            )
            log.info("wrote span log to %s", args.spans_out)
        if getattr(args, "spans_trace_out", None):
            from repro.obs import write_trace

            write_trace(spans.trace_payload(), args.spans_trace_out)
            log.info("wrote sweep timeline to %s", args.spans_trace_out)
        if runner.cache is not None:
            path = runner.cache.put_spans(payload)
            log.info("persisted span log to %s", path)


def _build_parser() -> argparse.ArgumentParser:
    # Parent parser: attached to every subcommand so `repro CMD -v`
    # works (defining -v on the top-level parser instead would let the
    # subparser's default clobber an already-parsed value).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on stderr")
    common.add_argument("-q", "--quiet", action="count", default=0,
                        help="warnings and errors only")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified GPU local memory (MICRO 2012), reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite", parents=[common])

    def _add_design_flags(
        p: argparse.ArgumentParser, benchmark_optional: bool = False
    ) -> None:
        if benchmark_optional:
            p.add_argument("benchmark", nargs="?", default=None)
        else:
            p.add_argument("benchmark")
        p.add_argument("--design", choices=("baseline", "fermi", "unified"),
                       default="unified")
        p.add_argument("--capacity", type=int, default=384, metavar="KB",
                       help="unified pool capacity in KB (default 384)")
        p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
        p.add_argument("--threads", type=int, default=None,
                       help="thread target (default: occupancy decides)")
        p.add_argument("--regs", type=int, default=None,
                       help="registers/thread (default: no-spill budget)")

    def _add_memsys_flags(p: argparse.ArgumentParser) -> None:
        """Non-blocking memory-system knobs shared by run/chip/profile."""
        g = p.add_argument_group("memory system")
        g.add_argument("--mshr-entries", type=_nonnegative_int, default=0,
                       metavar="N",
                       help="per-SM MSHR entries: >0 enables non-blocking "
                            "misses with secondary-miss merging (default 0 "
                            "= legacy blocking model)")
        g.add_argument("--dram-banks", type=_positive_int, default=1,
                       metavar="N",
                       help="DRAM banks per channel for open-page "
                            "row-buffer timing (default 1 = flat FCFS)")
        g.add_argument("--dram-row-bytes", type=_positive_int, default=2048,
                       metavar="BYTES",
                       help="row-buffer (DRAM page) size per bank "
                            "(default 2048)")
        g.add_argument("--dram-row-hit-latency", type=_nonnegative_int,
                       default=None, metavar="CYCLES",
                       help="latency of a request hitting a bank's open "
                            "row (default: the full DRAM latency, i.e. "
                            "row buffers never help)")
        _add_engine_flag(p)

    def _add_engine_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", choices=("columnar", "event"),
                       default="columnar",
                       help="warp-step engine: 'columnar' replays "
                            "precompiled plans (default, fastest), "
                            "'event' is the per-op interpreter; results, "
                            "stall attribution, interval metrics, and "
                            "traces are bit-identical either way -- "
                            "instrumented commands (profile/trace, "
                            "--profile) replay columnar too")

    run = sub.add_parser("run", help="simulate one benchmark", parents=[common])
    _add_design_flags(run)
    _add_memsys_flags(run)
    run.add_argument("--show-layout", action="store_true",
                     help="render the design's bank layout (paper Figs 5-6)")
    run.add_argument("--chip", action="store_true",
                     help="scale the result to the 32-SM, 130 W chip (paper 5.2)")

    def _add_chip_flags(p: argparse.ArgumentParser, default_sms=None) -> None:
        """The chip topology group shared by ``chip``/``profile``/``trace``.

        ``chip`` always runs at chip scope (``default_sms=32``);
        ``profile`` and ``trace`` stay single-SM unless ``--sms`` is
        given, and reject the chip-only flags without it (see
        :func:`_chip_mode`).
        """
        g = p.add_argument_group("chip topology")
        if default_sms is None:
            g.add_argument("--sms", type=_positive_int, default=None, metavar="N",
                           help="run at chip scope across N SMs "
                                "(default: single SM)")
        else:
            g.add_argument("--sms", type=_positive_int, default=default_sms,
                           metavar="N",
                           help=f"SMs on the chip (default {default_sms}, "
                                "the paper's)")
        g.add_argument("--total-bw", type=float, default=None, metavar="B_PER_CYC",
                       help="total chip DRAM bandwidth in bytes/cycle "
                            "(default 256, shared by all SMs)")
        g.add_argument("--channels", type=_positive_int, default=None,
                       help="shared DRAM channels (default 8)")
        g.add_argument("--partitioned-dram", action="store_true",
                       help="give each SM a private bandwidth slice (the "
                            "paper's fixed-slice methodology) instead of "
                            "shared arbitrated channels")

    ch = sub.add_parser("chip", parents=[common],
                        help="simulate N SMs sharing arbitrated DRAM")
    _add_design_flags(ch)
    _add_chip_flags(ch, default_sms=32)
    _add_memsys_flags(ch)
    ch.add_argument("--profile", action="store_true",
                    help="attach chip-scope collectors: per-SM top stall "
                         "cause in the table plus the chip roll-up")
    _add_executor_flags(ch)

    prof = sub.add_parser("profile", parents=[common],
                          help="stall-cycle attribution for one benchmark")
    _add_design_flags(prof)
    _add_chip_flags(prof)
    _add_memsys_flags(prof)
    prof.add_argument("--window", type=_positive_int, default=1000, metavar="CYCLES",
                      help="interval-metrics window width (default 1000)")
    prof.add_argument("--metrics-out", default=None, metavar="PATH",
                      help="write interval time-series metrics JSON "
                           "(chipmetrics schema under --sms)")
    prof.add_argument("--trace-out", default=None, metavar="PATH",
                      help="also write a Chrome trace-event file")
    prof.add_argument("--profile-out", default=None, metavar="PATH",
                      help="write the stall-attribution payload "
                           "(repro.obs.profile/1; chip_profile/1 under "
                           "--sms) for use with `repro compare`")

    tr = sub.add_parser("trace", parents=[common],
                        help="write a Perfetto-compatible warp trace")
    _add_design_flags(tr, benchmark_optional=True)
    _add_chip_flags(tr)
    _add_engine_flag(tr)
    tr.add_argument("--out", default=None, metavar="PATH",
                    help="trace file path (default <benchmark>.trace.json)")
    tr.add_argument("--max-events", type=_positive_int, default=1_000_000,
                    help="trace buffer bound (default 1000000)")
    tr.add_argument("--compare", nargs=2, metavar=("A", "B"), default=None,
                    help="pivot two previously written trace files into "
                         "one side-by-side timeline instead of simulating")

    cp = sub.add_parser("compare", parents=[common],
                        help="diff two run payloads and attribute the "
                             "cycle delta")
    cp.add_argument("a", help="baseline payload: metrics/profile/"
                              "chipmetrics/chip/trace/manifest JSON")
    cp.add_argument("b", help="candidate payload (same kind as A)")
    cp.add_argument("--label-a", default=None, metavar="NAME",
                    help="display name for A (default: its path)")
    cp.add_argument("--label-b", default=None, metavar="NAME",
                    help="display name for B (default: its path)")
    cp.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the repro.obs.diff/1 payload")

    exp = sub.add_parser("experiment", help="regenerate a table/figure",
                         parents=[common])
    exp.add_argument("id", help="table1, figure2..figure11, table4..table6, "
                                "gating, memsys, ablation-cluster-port, "
                                "ablation-no-hierarchy")
    exp.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    exp.add_argument("--plot", action="store_true",
                     help="also render ASCII line plots (figure4 / figure11)")
    _add_executor_flags(exp)

    st = sub.add_parser("suite", help="regenerate every table/figure",
                        parents=[common])
    st.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    st.add_argument("--only", default=None, metavar="IDS",
                    help="comma-separated experiment ids (default: all)")
    _add_executor_flags(st)

    at = sub.add_parser("autotune", help="thread-count autotuning",
                        parents=[common])
    at.add_argument("benchmark")
    at.add_argument("--capacity", type=int, default=384, metavar="KB")
    at.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))

    val = sub.add_parser("validate", help="run the reproduction scorecard",
                         parents=[common])
    val.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    _add_executor_flags(val)

    sw = sub.add_parser("sweep", help="capacity sweep for one benchmark",
                        parents=[common])
    sw.add_argument("benchmark")
    sw.add_argument("--capacities", default="128,192,256,320,384,512",
                    help="comma-separated KB values")
    sw.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))

    bn = sub.add_parser("bench", parents=[common],
                        help="performance benchmarks (BENCH_*.json)")
    bn.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    bn.add_argument("--repeats", type=_positive_int, default=None,
                    help="runs per microbenchmark, best kept (default 3; "
                         "5 under --update-baseline)")
    bn.add_argument("--out", default=None, metavar="PATH",
                    help="payload path (default BENCH_<date>.json in cwd)")
    bn.add_argument("--update-baseline", action="store_true",
                    help="bless this run as the committed baseline: write "
                         "BENCH_<date>.json in the cwd with full provenance "
                         "(git sha, interpreter, machine) and higher default "
                         "repeats; incompatible with --out")
    bn.add_argument("--only", default=None, metavar="PREFIXES",
                    help="comma-separated benchmark-id prefixes to run "
                         "(e.g. 'micro.banks,sim'); default: everything")
    bn.add_argument("--no-suite", action="store_true",
                    help="skip the suite-level wall-clock benchmark")
    bn.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                    help="compare two payloads instead of benchmarking; "
                         "exits 1 on regression")
    bn.add_argument("--threshold", type=float, default=1.15, metavar="RATIO",
                    help="max tolerated new/old time ratio for --compare "
                         "(default 1.15)")
    bn.add_argument("--validate", default=None, metavar="FILE",
                    help="validate a payload against the schema and exit")
    return parser


def _cmd_list() -> int:
    from repro.experiments.report import format_table
    from repro.kernels import all_benchmarks

    rows = [
        [
            bm.name,
            bm.category.value,
            bm.paper_regs,
            bm.paper_smem_bytes_per_thread,
            "yes" if bm.benefits else "no",
            bm.description,
        ]
        for bm in all_benchmarks()
    ]
    print(
        format_table(
            ["benchmark", "category", "regs", "smem B/t", "benefits", "description"],
            rows,
            title="Benchmark suite (paper Table 1)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.energy import EnergyModel
    from repro.experiments.runner import Runner

    rn = Runner(args.scale, _sm_config(args))
    base = rn.baseline(args.benchmark, regs=args.regs)
    if args.design == "baseline":
        result = base
    elif args.design == "fermi":
        result = rn.fermi_best(args.benchmark)
    else:
        result, alloc = rn.unified(
            args.benchmark, total_kb=args.capacity, thread_target=args.threads
        )
        print(f"allocation: {alloc.partition.describe()}")
    if args.show_layout:
        from repro.core.diagram import bank_layout

        print(bank_layout(result.partition))
    print(result.summary())
    memsys = result.notes.get("memsys")
    if memsys:
        m = memsys["mshr"]
        line = (f"memsys: {m['entries']} MSHRs, {m['primary_misses']} primary "
                f"misses, {m['secondary_merges']} merged, {m['full_stalls']} "
                f"full-stalls ({m['full_stall_cycles']:.0f} cycles)")
        if "dram_row_hits" in memsys:
            total = memsys["dram_row_hits"] + memsys["dram_row_misses"]
            if total:
                line += (f", row hits {memsys['dram_row_hits']}/{total} "
                         f"({100.0 * memsys['dram_row_hits'] / total:.0f}%)")
        print(line)
    if args.chip:
        from repro.energy.chip import ChipModel

        print(ChipModel().evaluate(result, baseline_cycles=base.cycles).summary())
    if result is not base:
        model = EnergyModel()
        e_base = model.evaluate(base).total_j
        e = model.evaluate(result, baseline_cycles=base.cycles).total_j
        print(
            f"vs baseline: speedup {result.speedup_over(base):.3f}x, "
            f"energy {e / e_base:.3f}x, "
            f"DRAM {result.dram_traffic_ratio(base):.3f}x"
        )
    return 0


def _chip_mode(args: argparse.Namespace) -> bool:
    """Whether this ``profile``/``trace`` invocation runs at chip scope.

    The chip-only flags are meaningless on a single SM, so combining
    them with single-SM mode is a usage error, not a silent ignore.
    """
    if args.sms is not None:
        return True
    offending = [
        flag
        for flag, given in (
            ("--total-bw", args.total_bw is not None),
            ("--channels", args.channels is not None),
            ("--partitioned-dram", args.partitioned_dram),
        )
        if given
    ]
    if offending:
        log.error(
            "%s only apply to chip runs; add --sms N to run at chip "
            "scope, or drop the flag(s) for a single-SM run",
            "/".join(offending),
        )
        raise SystemExit(2)
    return False


def _chip_config(rn, args: argparse.Namespace):
    """The ChipConfig an invocation's chip flags denote."""
    from repro.chip import ChipConfig

    return ChipConfig(
        num_sms=args.sms,
        dram_bytes_per_cycle=args.total_bw if args.total_bw is not None else 256.0,
        dram_channels=args.channels if args.channels is not None else 8,
        dram_partitioned=args.partitioned_dram,
        sm=rn.config,
    )


def _top_stall(stalls: dict) -> str:
    """``cause xx%`` for the dominant attributed cause (table cell)."""
    total = sum(stalls.values())
    if not total:
        return "-"
    cause = max(stalls, key=stalls.get)
    return f"{cause} {100.0 * stalls[cause] / total:.0f}%"


def _print_chip_rollup(cc) -> None:
    """The chip-wide stall roll-up line under the per-SM table."""
    from repro.obs import STALL_CAUSES

    totals = cc.stall_totals()
    warp_cycles = cc.warps * (cc.total_cycles or 1.0)
    issue = cc.issue_cycles
    parts = [f"issue {100.0 * issue / warp_cycles:.1f}%"]
    parts += [
        f"{cause} {100.0 * totals[cause] / warp_cycles:.1f}%"
        for cause in STALL_CAUSES
        if totals[cause]
    ]
    print(
        f"chip stall roll-up ({cc.warps} warps x {cc.total_cycles:.0f} "
        f"cycles): " + ", ".join(parts)
    )


def _cmd_chip(args: argparse.Namespace) -> int:
    from repro.chip import chip_result_to_dict
    from repro.energy.chip import ChipModel
    from repro.experiments.report import format_table
    from repro.memory.dram import channel_utilisation

    executor = _make_executor(args)
    rn = executor.runner
    partition = _resolve_partition(rn, args)
    chip = _chip_config(rn, args)
    cc = None
    if args.profile:
        from repro.obs import ChipCollector

        cc = ChipCollector.for_chip(chip)
    t0 = time.perf_counter()
    cr = rn.simulate_chip(
        args.benchmark,
        partition,
        chip=chip,
        regs=args.regs,
        thread_target=args.threads,
        chip_collector=cc,
    )
    dt = time.perf_counter() - t0
    profiled = any(r.stall_cycles for r in cr.per_sm)
    rows = [
        [
            i,
            cr.ctas_per_sm[i],
            f"{r.cycles:.0f}",
            r.instructions,
            f"{r.ipc:.3f}",
            r.dram_accesses,
            r.dram_bytes,
        ]
        + ([_top_stall(r.stall_cycles)] if profiled else [])
        for i, r in enumerate(cr.per_sm)
    ]
    headers = ["sm", "ctas", "cycles", "instructions", "ipc", "dram acc", "dram B"]
    if profiled:
        headers.append("top stall")
    print(
        format_table(
            headers,
            rows,
            title=f"Per-SM results: {args.benchmark} ({args.design}), "
                  f"{cr.num_sms} SMs",
        )
    )
    print(cr.summary())
    if cc is not None:
        errors = cc.conservation_errors()
        if errors:
            log.error("chip stall attribution lost cycles:\n%s",
                      "\n".join(errors[:5]))
            return 1
        _print_chip_rollup(cc)
    if not chip.dram_partitioned:
        per_ch_bw = chip.dram_bytes_per_cycle / chip.dram_channels
        per_channel = ", ".join(
            # channel_utilisation reports the true (possibly >1.0)
            # ratio; clamp only here, at presentation.
            f"ch{i} {min(1.0, channel_utilisation(b, per_ch_bw, cr.cycles)):.1%}"
            for i, b in enumerate(cr.dram_channel_bytes)
        )
        print(f"channel utilisation: {per_channel}")
    memsys = cr.notes.get("memsys")
    if memsys:
        line = (f"memsys: {memsys['mshr_entries']} MSHRs/SM, "
                f"{memsys['primary_misses']} primary misses, "
                f"{memsys['secondary_merges']} merged, "
                f"{memsys['full_stalls']} full-stalls")
        total = memsys["dram_row_hits"] + memsys["dram_row_misses"]
        if total:
            line += (f", row hits {memsys['dram_row_hits']}/{total} "
                     f"({100.0 * memsys['dram_row_hits'] / total:.0f}%)")
        print(line)
    # Measured pricing: per-SM counters, not the analytic NxSM scale-up.
    summary = ChipModel(num_sms=chip.num_sms).evaluate_chip(cr)
    print("energy (measured per-SM): " + summary.summary())
    log.info("[chip] %s: %.2fs", args.benchmark, dt)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(chip_result_to_dict(cr), indent=2, sort_keys=True)
        )
        log.info("wrote chip metrics to %s", args.metrics_out)
        args.metrics_out = None  # _finish_run owns only the manifest
    _finish_run(
        args,
        executor,
        experiments=[{"id": f"chip-{args.benchmark}", "seconds": dt}],
        chip_summary=(
            {"channels": cc.channel_summary(), "dispatcher": cc.dispatcher_summary()}
            if cc is not None
            else None
        ),
    )
    return 0


def _resolve_partition(rn, args: argparse.Namespace):
    """The partition a ``--design`` choice denotes for one benchmark."""
    from repro.core import partitioned_baseline

    if args.design == "baseline":
        return partitioned_baseline()
    if args.design == "fermi":
        return rn.fermi_best(args.benchmark, regs=args.regs).partition
    alloc = rn.allocation(
        args.benchmark,
        total_kb=args.capacity,
        thread_target=args.threads,
        regs=args.regs,
    )
    log.info("allocation: %s", alloc.partition.describe())
    return alloc.partition


def _instrumented_run(args: argparse.Namespace, window: int, want_trace: bool,
                      max_trace_events: int = 1_000_000):
    """Simulate one benchmark with a Collector attached."""
    from repro.experiments.runner import Runner
    from repro.obs import Collector
    from repro.sm.simulator import simulate

    rn = Runner(args.scale, _sm_config(args))
    partition = _resolve_partition(rn, args)
    ck = rn.compiled(args.benchmark, regs=args.regs)
    col = Collector(metrics_window=window, trace=want_trace,
                    max_trace_events=max_trace_events)
    result = simulate(ck, partition, rn.config,
                      thread_target=args.threads, collector=col)
    return result, col


def _instrumented_chip_run(args: argparse.Namespace, window: int,
                           want_trace: bool,
                           max_trace_events: int = 1_000_000):
    """Simulate one benchmark at chip scope with a ChipCollector attached."""
    from repro.experiments.runner import Runner
    from repro.obs import ChipCollector

    rn = Runner(args.scale, _sm_config(args))
    partition = _resolve_partition(rn, args)
    chip = _chip_config(rn, args)
    cc = ChipCollector.for_chip(chip, metrics_window=window, trace=want_trace,
                                max_trace_events=max_trace_events)
    cr = rn.simulate_chip(args.benchmark, partition, chip=chip,
                          regs=args.regs, thread_target=args.threads,
                          chip_collector=cc)
    return cr, cc


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.obs import STALL_CAUSES, write_trace

    window = args.window if args.metrics_out else 0
    if _chip_mode(args):
        return _cmd_profile_chip(args, window)
    result, col = _instrumented_run(args, window, bool(args.trace_out))
    print(result.summary())
    report = col.report()
    warp_cycles = len(col.warps) * (col.total_cycles or 1.0)
    rows = [["issue", float(report["issue_cycles"]),
             100.0 * report["issue_cycles"] / warp_cycles]]
    rows += [
        [cause, report["stall_cycles"][cause],
         100.0 * report["stall_cycles"][cause] / warp_cycles]
        for cause in STALL_CAUSES
    ]
    print(
        format_table(
            ["cause", "warp-cycles", "% of warp-cycles"],
            rows,
            title=f"Stall attribution: {args.benchmark} ({args.design}), "
                  f"{report['warps']} warps x {result.cycles:.0f} cycles",
        )
    )
    errors = col.conservation_errors()
    if errors:
        log.error("stall attribution lost cycles:\n%s", "\n".join(errors[:5]))
        return 1
    log.info("conservation: issue + stalls == %d warps x %.0f cycles exactly",
             report["warps"], col.total_cycles)
    if args.profile_out:
        Path(args.profile_out).write_text(
            json.dumps(report, indent=2, sort_keys=True)
        )
        log.info("wrote stall profile to %s", args.profile_out)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(col.metrics_payload(), indent=2, sort_keys=True)
        )
        log.info("wrote interval metrics to %s", args.metrics_out)
    if args.trace_out:
        write_trace(col.trace_payload(), args.trace_out)
        log.info("wrote trace to %s", args.trace_out)
    return 0


def _cmd_profile_chip(args: argparse.Namespace, window: int) -> int:
    from repro.experiments.report import format_table
    from repro.obs import STALL_CAUSES, write_trace

    cr, cc = _instrumented_chip_run(args, window, bool(args.trace_out))
    print(cr.summary())
    totals = cc.stall_totals()
    warp_cycles = cc.warps * (cc.total_cycles or 1.0)
    rows = [["issue", float(cc.issue_cycles),
             100.0 * cc.issue_cycles / warp_cycles]]
    rows += [
        [cause, totals[cause], 100.0 * totals[cause] / warp_cycles]
        for cause in STALL_CAUSES
    ]
    print(
        format_table(
            ["cause", "warp-cycles", "% of warp-cycles"],
            rows,
            title=f"Chip stall attribution: {args.benchmark} ({args.design}), "
                  f"{cc.num_sms} SMs, {cc.warps} warps x {cr.cycles:.0f} cycles",
        )
    )
    for i, col in enumerate(cc.collectors):
        print(f"  sm{i}: {len(col.warps)} warps, "
              f"top stall {_top_stall(col.stall_totals())}")
    errors = cc.conservation_errors()
    if errors:
        log.error("chip stall attribution lost cycles:\n%s",
                  "\n".join(errors[:5]))
        return 1
    log.info("conservation: sum_sm(issue + stalls) == %d warps x %.0f "
             "cycles exactly", cc.warps, cc.total_cycles)
    if args.profile_out:
        Path(args.profile_out).write_text(
            json.dumps(cc.report(), indent=2, sort_keys=True)
        )
        log.info("wrote chip stall profile to %s", args.profile_out)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(cc.chipmetrics_payload(), indent=2, sort_keys=True)
        )
        log.info("wrote chip interval metrics to %s", args.metrics_out)
    if args.trace_out:
        write_trace(cc.trace_payload(), args.trace_out)
        log.info("wrote merged chip trace to %s", args.trace_out)
    return 0


def _load_json(path: str) -> dict:
    """Read a JSON payload or exit 2 with a usage-style diagnostic."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        log.error("cannot read %s: %s", path, e)
        raise SystemExit(2) from e
    if not isinstance(payload, dict):
        log.error("%s: expected a JSON object", path)
        raise SystemExit(2)
    return payload


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import validate_trace, write_trace

    if args.compare is not None:
        from repro.obs.compare import pivot_traces

        path_a, path_b = args.compare
        pivot = pivot_traces(
            _load_json(path_a), _load_json(path_b),
            label_a=path_a, label_b=path_b,
        )
        errors = validate_trace(pivot)
        if errors:
            log.error("invalid pivoted trace:\n%s", "\n".join(errors[:5]))
            return 1
        out = args.out or "compare.trace.json"
        write_trace(pivot, out)
        print(f"pivoted {path_a} vs {path_b}: "
              f"{len(pivot['traceEvents'])} trace events -> {out}")
        print("open in https://ui.perfetto.dev or chrome://tracing "
              "(both runs share one clock; A's processes first)")
        return 0
    if args.benchmark is None:
        log.error("trace needs a BENCHMARK to simulate, or --compare A B "
                  "to pivot two existing trace files")
        raise SystemExit(2)
    if _chip_mode(args):
        cr, cc = _instrumented_chip_run(args, 0, True,
                                        max_trace_events=args.max_events)
        payload = cc.trace_payload()
        cycles = cr.cycles
        scope = f" ({cc.num_sms} SMs, {cc.num_channels} DRAM channels)"
    else:
        result, col = _instrumented_run(args, 0, True,
                                        max_trace_events=args.max_events)
        payload = col.trace_payload()
        cycles = result.cycles
        scope = ""
    errors = validate_trace(payload)
    if errors:
        log.error("invalid trace payload:\n%s", "\n".join(errors[:5]))
        return 1
    out = args.out or f"{args.benchmark}.trace.json"
    write_trace(payload, out)
    dropped = payload["otherData"]["droppedEvents"]
    print(f"{args.benchmark}{scope}: {cycles:.0f} cycles, "
          f"{len(payload['traceEvents'])} trace events -> {out}"
          + (f" ({dropped} dropped; raise --max-events)" if dropped else ""))
    print("open in https://ui.perfetto.dev or chrome://tracing "
          "(1 us rendered = 1 SM cycle)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.compare import (
        build_diff,
        conservation_violated,
        format_diff,
        validate_diff,
    )

    a = _load_json(args.a)
    b = _load_json(args.b)
    try:
        diff = build_diff(
            a, b,
            label_a=args.label_a or args.a,
            label_b=args.label_b or args.b,
        )
    except ValueError as e:
        log.error("%s", e)
        return 2
    problems = validate_diff(diff)
    if problems:
        log.error("internal: diff payload failed validation:\n%s",
                  "\n".join(problems[:5]))
        return 2
    print(format_diff(diff))
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(diff, indent=2, sort_keys=True))
        log.info("wrote diff to %s", args.json_out)
    return 1 if conservation_violated(diff) else 0


def _experiment_registry(scale: str) -> dict:
    """Experiment id -> run callable taking an ``executor=`` keyword.

    ``table4`` (analytic, no simulation) and ``irregular`` (own trace
    builders) run serially and simply ignore the executor.
    """
    from repro.experiments import (
        ablations,
        figure2,
        figure3,
        figure4,
        figure7,
        figure8,
        figure9,
        figure10,
        figure11,
        gating,
        memsys,
        table1,
        table4,
        table5,
        table6,
    )

    def _table4(executor=None):
        return table4.run()

    def _irregular(executor=None):
        from repro.experiments import irregular as irr

        return irr.run(scale)

    return {
        "table1": table1.run,
        "figure2": figure2.run,
        "figure3": figure3.run,
        "figure4": figure4.run,
        "table4": _table4,
        "table5": table5.run,
        "figure7": figure7.run,
        "figure8": figure8.run,
        "figure9": figure9.run,
        "figure10": figure10.run,
        "table6": table6.run,
        "figure11": figure11.run,
        "gating": gating.run,
        "memsys": memsys.run,
        "ablation-cluster-port": ablations.run_cluster_port,
        "ablation-no-hierarchy": ablations.run_no_hierarchy,
        "irregular": _irregular,
    }


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry(args.scale)
    if args.id not in registry:
        log.error("unknown experiment %r; choose from: %s",
                  args.id, ", ".join(sorted(registry)))
        return 2
    executor = _make_executor(args)
    before = executor.runner.sim_keys()
    t0 = time.perf_counter()
    result = registry[args.id](executor=executor)
    dt = time.perf_counter() - t0
    delta = executor.runner.sim_keys() - before
    print(result.format())
    if getattr(args, "plot", False):
        from repro.experiments import plots

        if args.id == "figure4":
            for bench in sorted({p.benchmark for p in result.points}):
                print()
                print(plots.plot_figure4(result, bench))
        elif args.id == "figure11":
            print()
            print(plots.plot_figure11(result))
    log.info("%s", executor.summary())
    _finish_run(
        args,
        executor,
        experiments=[{"id": args.id, "seconds": dt}],
        per_experiment=[
            {"id": args.id, **executor.runner.sim_metrics(keys=delta)["totals"]}
        ],
    )
    return 0


# Suite order: cheap single-point experiments first, big sweeps last, so
# the shared runner's memo tables are warm before the grids hit them.
SUITE_ORDER = (
    "table1", "table4", "figure7", "figure8", "figure9", "figure10",
    "table5", "table6", "gating", "figure2", "figure3", "figure4",
    "figure11", "ablation-cluster-port", "ablation-no-hierarchy",
)


def _cmd_suite(args: argparse.Namespace) -> int:
    registry = _experiment_registry(args.scale)
    if args.only is None:
        ids = SUITE_ORDER
    else:
        ids = tuple(tok.strip() for tok in args.only.split(",") if tok.strip())
    unknown = [i for i in ids if i not in registry]
    if unknown:
        log.error("unknown experiment(s): %s", ", ".join(unknown))
        return 2
    if not ids:
        log.error("--only %r selects no experiments; choose from: %s",
                  args.only, ", ".join(sorted(registry)))
        return 2
    executor = _make_executor(args)
    runner = executor.runner
    timings: list[tuple[str, float]] = []
    per_experiment: list[dict] = []
    for exp_id in ids:
        before = runner.sim_keys()
        t0 = time.perf_counter()
        result = registry[exp_id](executor=executor)
        dt = time.perf_counter() - t0
        timings.append((exp_id, dt))
        delta = runner.sim_keys() - before
        per_experiment.append(
            {"id": exp_id, **runner.sim_metrics(keys=delta)["totals"]}
        )
        print(result.format())
        print()
        log.info("[suite] %s: %.2fs", exp_id, dt)
    total = sum(dt for _, dt in timings)
    log.info("[suite] %d experiments in %.2fs (slowest: %s)",
             len(ids), total, max(timings, key=lambda t: t[1])[0])
    log.info("%s", executor.summary())
    _finish_run(
        args,
        executor,
        experiments=[{"id": i, "seconds": dt} for i, dt in timings],
        per_experiment=per_experiment,
    )
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro.core import autotune_threads
    from repro.experiments.runner import Runner

    rn = Runner(args.scale)
    res = autotune_threads(rn.compiled(args.benchmark), args.capacity * KB)
    print(f"{'threads':>8} {'cycles':>10} {'cache KB':>9}")
    for p in sorted(res.points, key=lambda p: p.threads):
        marker = "  <-- best" if p is res.best else ""
        print(
            f"{p.threads:>8} {p.result.cycles:>10.0f} "
            f"{p.allocation.partition.cache_kb:>9.1f}{marker}"
        )
    print(f"gain over max-threads: {res.gain_over_max_threads:.3f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core import AllocationError
    from repro.energy import EnergyModel
    from repro.experiments.runner import Runner

    rn = Runner(args.scale)
    base = rn.baseline(args.benchmark)
    model = EnergyModel()
    e_base = model.evaluate(base).total_j
    print(f"{'KB':>5} {'speedup':>8} {'energy':>7} {'dram':>6}")
    for cap in (int(c) for c in args.capacities.split(",")):
        try:
            result, _ = rn.unified(args.benchmark, total_kb=cap)
        except AllocationError:
            print(f"{cap:>5} {'(does not fit)':>20}")
            continue
        e = model.evaluate(result, baseline_cycles=base.cycles).total_j
        print(
            f"{cap:>5} {result.speedup_over(base):>8.3f} {e / e_base:>7.3f} "
            f"{result.dram_traffic_ratio(base):>6.3f}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import report

    if args.validate is not None:
        try:
            report.load_payload(args.validate)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            log.error("%s", e)
            return 1
        print(f"{args.validate}: valid {report.SCHEMA} payload")
        return 0
    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            old = report.load_payload(old_path)
            new = report.load_payload(new_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            log.error("%s", e)
            return 2
        cmp = report.compare_payloads(old, new, threshold=args.threshold)
        print(cmp.format())
        return 0 if cmp.ok else 1

    from repro.bench.micro import run_micro
    from repro.bench.suite import run_suite

    if args.update_baseline and args.out:
        log.error("--update-baseline writes BENCH_<date>.json; drop --out")
        return 2
    # A blessed baseline is read by every future compare, so it gets
    # more repeats than an ad-hoc run (min-of-N tightens with N).
    repeats = args.repeats or (5 if args.update_baseline else 3)
    prefixes = (
        tuple(p.strip() for p in args.only.split(",") if p.strip())
        if args.only else None
    )

    def selected(bench_id: str) -> bool:
        return prefixes is None or any(bench_id.startswith(p) for p in prefixes)

    entries = [e for e in run_micro(args.scale, repeats) if selected(e.id)]
    run_suite_bench = not args.no_suite and (
        prefixes is None or any(p.startswith("suite") for p in prefixes)
    )
    if run_suite_bench:
        log.info("running suite benchmark at scale %r (cold, single job)...",
                 args.scale)
        entries += [e for e in run_suite(args.scale) if selected(e.id)]
    if not entries:
        log.error("--only %r selects no benchmarks", args.only)
        return 2
    payload = report.make_payload(entries, scale=args.scale, repeats=repeats)
    out = report.write_payload(payload, args.out or report.default_path())
    for e in sorted(entries, key=lambda e: e.id):
        print(f"{e.id:<34} {e.seconds:>10.4f} s")
    print(f"wrote {len(entries)} benchmarks to {out}")
    if args.update_baseline:
        prov = payload["provenance"]
        print(f"new baseline: {out} "
              f"(git {prov.get('git_sha', 'unknown')[:12]}, "
              f"python {prov['python']}, repeats {repeats}) -- commit it and "
              "point CI/--compare at it")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import validate

    executor = _make_executor(args)
    card = validate.run(executor=executor)
    print(card.format())
    log.info("%s", executor.summary())
    _finish_run(args, executor)
    return 0 if card.passed else 1


def main(argv: list[str] | None = None) -> int:
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    args = _build_parser().parse_args(raw)
    args._cmdline = "repro " + " ".join(raw)
    _configure_logging(args)
    dispatch = {
        "list": lambda: _cmd_list(),
        "run": lambda: _cmd_run(args),
        "chip": lambda: _cmd_chip(args),
        "profile": lambda: _cmd_profile(args),
        "trace": lambda: _cmd_trace(args),
        "compare": lambda: _cmd_compare(args),
        "experiment": lambda: _cmd_experiment(args),
        "suite": lambda: _cmd_suite(args),
        "autotune": lambda: _cmd_autotune(args),
        "sweep": lambda: _cmd_sweep(args),
        "bench": lambda: _cmd_bench(args),
        "validate": lambda: _cmd_validate(args),
    }
    try:
        return dispatch[args.command]()
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
