"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The benchmark suite with Table 1 metadata.
``run BENCH``
    Simulate one benchmark under a design (baseline / fermi / unified)
    and print timing, traffic, and energy against the baseline.
``experiment ID``
    Regenerate one of the paper's tables/figures (``table1``,
    ``figure2`` ... ``figure11``, ``ablation-cluster-port``,
    ``ablation-no-hierarchy``).
``suite``
    Regenerate every table/figure in one go, with per-experiment
    wall-clock timing.
``autotune BENCH``
    Sweep thread targets under a unified capacity (Section 4.5 remark).
``sweep BENCH``
    Capacity sweep (Table 6 style) for one benchmark.

The ``experiment``, ``suite``, and ``validate`` commands accept
``--jobs N`` (fan independent simulations over N worker processes) and
``--cache-dir PATH`` (persist traces and simulation results across runs
in a content-addressed on-disk cache); a timing/cache summary is printed
to stderr after the results.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.partition import KB


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_executor_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes for independent simulations "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="persist traces/results in a content-addressed "
                        "cache reused across runs and workers")


def _make_executor(args: argparse.Namespace):
    from repro.experiments.artifacts import DiskCache
    from repro.experiments.executor import Executor
    from repro.experiments.runner import Runner

    try:
        cache = DiskCache(args.cache_dir) if args.cache_dir else None
    except OSError as e:
        print(f"cannot use cache dir {args.cache_dir!r}: {e}", file=sys.stderr)
        raise SystemExit(2) from e
    runner = Runner(args.scale, cache=cache)
    return Executor(runner, jobs=args.jobs, progress=args.jobs > 1)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified GPU local memory (MICRO 2012), reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark")
    run.add_argument("--design", choices=("baseline", "fermi", "unified"),
                     default="unified")
    run.add_argument("--capacity", type=int, default=384, metavar="KB",
                     help="unified pool capacity in KB (default 384)")
    run.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    run.add_argument("--threads", type=int, default=None,
                     help="thread target (default: occupancy decides)")
    run.add_argument("--regs", type=int, default=None,
                     help="registers/thread (default: no-spill budget)")
    run.add_argument("--show-layout", action="store_true",
                     help="render the design's bank layout (paper Figs 5-6)")
    run.add_argument("--chip", action="store_true",
                     help="scale the result to the 32-SM, 130 W chip (paper 5.2)")

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument("id", help="table1, figure2..figure11, table4..table6, "
                                "gating, ablation-cluster-port, "
                                "ablation-no-hierarchy")
    exp.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    exp.add_argument("--plot", action="store_true",
                     help="also render ASCII line plots (figure4 / figure11)")
    _add_executor_flags(exp)

    st = sub.add_parser("suite", help="regenerate every table/figure")
    st.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    st.add_argument("--only", default=None, metavar="IDS",
                    help="comma-separated experiment ids (default: all)")
    _add_executor_flags(st)

    at = sub.add_parser("autotune", help="thread-count autotuning")
    at.add_argument("benchmark")
    at.add_argument("--capacity", type=int, default=384, metavar="KB")
    at.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))

    val = sub.add_parser("validate", help="run the reproduction scorecard")
    val.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    _add_executor_flags(val)

    sw = sub.add_parser("sweep", help="capacity sweep for one benchmark")
    sw.add_argument("benchmark")
    sw.add_argument("--capacities", default="128,192,256,320,384,512",
                    help="comma-separated KB values")
    sw.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    return parser


def _cmd_list() -> int:
    from repro.experiments.report import format_table
    from repro.kernels import all_benchmarks

    rows = [
        [
            bm.name,
            bm.category.value,
            bm.paper_regs,
            bm.paper_smem_bytes_per_thread,
            "yes" if bm.benefits else "no",
            bm.description,
        ]
        for bm in all_benchmarks()
    ]
    print(
        format_table(
            ["benchmark", "category", "regs", "smem B/t", "benefits", "description"],
            rows,
            title="Benchmark suite (paper Table 1)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.energy import EnergyModel
    from repro.experiments.runner import Runner

    rn = Runner(args.scale)
    base = rn.baseline(args.benchmark, regs=args.regs)
    if args.design == "baseline":
        result = base
    elif args.design == "fermi":
        result = rn.fermi_best(args.benchmark)
    else:
        result, alloc = rn.unified(
            args.benchmark, total_kb=args.capacity, thread_target=args.threads
        )
        print(f"allocation: {alloc.partition.describe()}")
    if args.show_layout:
        from repro.core.diagram import bank_layout

        print(bank_layout(result.partition))
    print(result.summary())
    if args.chip:
        from repro.energy.chip import ChipModel

        print(ChipModel().evaluate(result, baseline_cycles=base.cycles).summary())
    if result is not base:
        model = EnergyModel()
        e_base = model.evaluate(base).total_j
        e = model.evaluate(result, baseline_cycles=base.cycles).total_j
        print(
            f"vs baseline: speedup {result.speedup_over(base):.3f}x, "
            f"energy {e / e_base:.3f}x, "
            f"DRAM {result.dram_traffic_ratio(base):.3f}x"
        )
    return 0


def _experiment_registry(scale: str) -> dict:
    """Experiment id -> run callable taking an ``executor=`` keyword.

    ``table4`` (analytic, no simulation) and ``irregular`` (own trace
    builders) run serially and simply ignore the executor.
    """
    from repro.experiments import (
        ablations,
        figure2,
        figure3,
        figure4,
        figure7,
        figure8,
        figure9,
        figure10,
        figure11,
        gating,
        table1,
        table4,
        table5,
        table6,
    )

    def _table4(executor=None):
        return table4.run()

    def _irregular(executor=None):
        from repro.experiments import irregular as irr

        return irr.run(scale)

    return {
        "table1": table1.run,
        "figure2": figure2.run,
        "figure3": figure3.run,
        "figure4": figure4.run,
        "table4": _table4,
        "table5": table5.run,
        "figure7": figure7.run,
        "figure8": figure8.run,
        "figure9": figure9.run,
        "figure10": figure10.run,
        "table6": table6.run,
        "figure11": figure11.run,
        "gating": gating.run,
        "ablation-cluster-port": ablations.run_cluster_port,
        "ablation-no-hierarchy": ablations.run_no_hierarchy,
        "irregular": _irregular,
    }


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry(args.scale)
    if args.id not in registry:
        print(f"unknown experiment {args.id!r}; choose from: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    executor = _make_executor(args)
    result = registry[args.id](executor=executor)
    print(result.format())
    if getattr(args, "plot", False):
        from repro.experiments import plots

        if args.id == "figure4":
            for bench in sorted({p.benchmark for p in result.points}):
                print()
                print(plots.plot_figure4(result, bench))
        elif args.id == "figure11":
            print()
            print(plots.plot_figure11(result))
    print(executor.summary(), file=sys.stderr)
    return 0


# Suite order: cheap single-point experiments first, big sweeps last, so
# the shared runner's memo tables are warm before the grids hit them.
SUITE_ORDER = (
    "table1", "table4", "figure7", "figure8", "figure9", "figure10",
    "table5", "table6", "gating", "figure2", "figure3", "figure4",
    "figure11", "ablation-cluster-port", "ablation-no-hierarchy",
)


def _cmd_suite(args: argparse.Namespace) -> int:
    registry = _experiment_registry(args.scale)
    ids = SUITE_ORDER if args.only is None else tuple(args.only.split(","))
    unknown = [i for i in ids if i not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    executor = _make_executor(args)
    timings: list[tuple[str, float]] = []
    for exp_id in ids:
        t0 = time.perf_counter()
        result = registry[exp_id](executor=executor)
        dt = time.perf_counter() - t0
        timings.append((exp_id, dt))
        print(result.format())
        print()
        print(f"[suite] {exp_id}: {dt:.2f}s", file=sys.stderr)
    total = sum(dt for _, dt in timings)
    print(f"[suite] {len(ids)} experiments in {total:.2f}s "
          f"(slowest: {max(timings, key=lambda t: t[1])[0]})", file=sys.stderr)
    print(executor.summary(), file=sys.stderr)
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro.core import autotune_threads
    from repro.experiments.runner import Runner

    rn = Runner(args.scale)
    res = autotune_threads(rn.compiled(args.benchmark), args.capacity * KB)
    print(f"{'threads':>8} {'cycles':>10} {'cache KB':>9}")
    for p in sorted(res.points, key=lambda p: p.threads):
        marker = "  <-- best" if p is res.best else ""
        print(
            f"{p.threads:>8} {p.result.cycles:>10.0f} "
            f"{p.allocation.partition.cache_kb:>9.1f}{marker}"
        )
    print(f"gain over max-threads: {res.gain_over_max_threads:.3f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core import AllocationError
    from repro.energy import EnergyModel
    from repro.experiments.runner import Runner

    rn = Runner(args.scale)
    base = rn.baseline(args.benchmark)
    model = EnergyModel()
    e_base = model.evaluate(base).total_j
    print(f"{'KB':>5} {'speedup':>8} {'energy':>7} {'dram':>6}")
    for cap in (int(c) for c in args.capacities.split(",")):
        try:
            result, _ = rn.unified(args.benchmark, total_kb=cap)
        except AllocationError:
            print(f"{cap:>5} {'(does not fit)':>20}")
            continue
        e = model.evaluate(result, baseline_cycles=base.cycles).total_j
        print(
            f"{cap:>5} {result.speedup_over(base):>8.3f} {e / e_base:>7.3f} "
            f"{result.dram_traffic_ratio(base):>6.3f}"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import validate

    executor = _make_executor(args)
    card = validate.run(executor=executor)
    print(card.format())
    print(executor.summary(), file=sys.stderr)
    return 0 if card.passed else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    dispatch = {
        "list": lambda: _cmd_list(),
        "run": lambda: _cmd_run(args),
        "experiment": lambda: _cmd_experiment(args),
        "suite": lambda: _cmd_suite(args),
        "autotune": lambda: _cmd_autotune(args),
        "sweep": lambda: _cmd_sweep(args),
        "validate": lambda: _cmd_validate(args),
    }
    try:
        return dispatch[args.command]()
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
