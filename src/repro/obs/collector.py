"""Per-warp stall attribution for the event-driven SM simulator.

Every cycle of the run, for every warp, is charged to exactly one of:

========================  ==================================================
``issue``                 the warp held the issue port (1 cycle/instruction)
:data:`CAUSE_RAW`         waiting on an in-core producer: ALU/SFU result,
                          shared-memory or cache-hit load latency
:data:`CAUSE_BANK_CONFLICT`  serialisation on banked storage: register-bank
                          operand conflicts (issue-side) and shared/cache
                          bank conflicts plus the LSU port they drain
                          through (memory-side)
:data:`CAUSE_MEMORY`      waiting on DRAM: a cache miss, an uncached
                          access, or a texture fetch
:data:`CAUSE_MSHR_FULL`   structural stall of the non-blocking memory
                          system: the LSU could not allocate an MSHR
                          entry for a primary miss until an outstanding
                          fill retired (non-zero only when
                          ``mshr_entries > 0``)
:data:`CAUSE_ISSUE_PORT`  operands ready, but another warp held the single
                          issue port
:data:`CAUSE_BARRIER`     waiting at a CTA-wide barrier
:data:`CAUSE_DESCHEDULE`  two-level-scheduler reactivation latency
                          (non-zero only when ``deschedule_latency`` is)
:data:`CAUSE_NOT_RESIDENT`  before the warp's CTA launched / after the
                          warp completed
========================  ==================================================

The attribution is *conservative by construction*: each warp's timeline
is a chain of half-open segments whose endpoints the simulator hands to
the collector, so ``issue_cycles + sum(stalls) == total_cycles`` holds
per warp (:meth:`Collector.conservation_errors` verifies it, and the
test suite enforces it across kernels and partitions).  When a wait is
caused by a producer whose latency included bank-conflict serialisation,
the conflicted cycles are charged to :data:`CAUSE_BANK_CONFLICT` and
only the remainder to the producer's class, so conflict cycles are never
laundered as RAW or DRAM time.  Likewise, cycles a load spent waiting
for a free MSHR entry are carved out of its wait and charged to
:data:`CAUSE_MSHR_FULL`, never to :data:`CAUSE_MEMORY`.

All times are the simulator's dyadic-rational cycle stamps, so the
segment sums are exact in IEEE-754 -- conservation is checked with
equality, not a tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.metrics import IntervalSampler
from repro.obs.trace import PID_CTAS, PID_DRAM, PID_WARPS, TraceBuffer

CAUSE_RAW = "raw"
CAUSE_BANK_CONFLICT = "bank_conflict"
CAUSE_MEMORY = "memory"
CAUSE_MSHR_FULL = "mshr_full"
CAUSE_ISSUE_PORT = "issue_port"
CAUSE_BARRIER = "barrier"
CAUSE_DESCHEDULE = "deschedule"
CAUSE_NOT_RESIDENT = "not_resident"

#: Every cause a non-issuing cycle can be charged to.
STALL_CAUSES = (
    CAUSE_RAW,
    CAUSE_BANK_CONFLICT,
    CAUSE_MEMORY,
    CAUSE_MSHR_FULL,
    CAUSE_ISSUE_PORT,
    CAUSE_BARRIER,
    CAUSE_DESCHEDULE,
    CAUSE_NOT_RESIDENT,
)


class NullCollector:
    """Disabled sink: the default for uninstrumented simulation.

    The simulator reduces any collector with ``enabled == False`` to a
    local ``None`` before the hot loop, so the only per-instruction cost
    of having instrumentation *available* is an ``is not None`` check.
    """

    enabled = False


NULL_COLLECTOR = NullCollector()


@dataclass(slots=True)
class _WarpObs:
    """Attribution state of one warp instance."""

    wid: int
    cta: int
    widx: int
    cursor: float = 0.0
    issue_cycles: int = 0
    stalls: dict = field(default_factory=dict)
    #: reg -> (completion cycle, producer cause, conflict cycles inside
    #: it, mshr-full wait cycles inside it)
    pending: dict = field(default_factory=dict)


class Collector:
    """Active observability sink wired into :func:`repro.sm.simulate`.

    Args:
        metrics_window: Cycle width of interval samples; 0 disables the
            time series.
        trace: Record Chrome trace events (see :mod:`repro.obs.trace`).
        max_trace_events: Bound on buffered trace events.
    """

    enabled = True

    def __init__(
        self,
        metrics_window: int = 0,
        trace: bool = False,
        max_trace_events: int = 1_000_000,
    ) -> None:
        self.warps: dict[int, _WarpObs] = {}
        self.sampler = IntervalSampler(metrics_window) if metrics_window else None
        self.trace = TraceBuffer(max_trace_events) if trace else None
        self.total_cycles: float | None = None
        self.ctas_launched = 0
        self._cta_start: dict[int, float] = {}
        self._occ_events: list[tuple[float, int]] = []
        if self.trace is not None:
            self.trace.process_name(PID_WARPS, "SM warps")
            self.trace.process_name(PID_CTAS, "CTAs")
            self.trace.process_name(PID_DRAM, "DRAM")
            self.trace.thread_name(PID_DRAM, 0, "channel")

    # -- charging ---------------------------------------------------------
    def _charge(self, ws: _WarpObs, cause: str, start: float, end: float) -> None:
        if end <= start:
            return
        stalls = ws.stalls
        stalls[cause] = stalls.get(cause, 0.0) + (end - start)
        if self.trace is not None and cause is not CAUSE_NOT_RESIDENT:
            self.trace.slice(PID_WARPS, ws.wid, cause, "stall", start, end - start)

    # -- simulator hooks --------------------------------------------------
    def cta_launch(self, index: int, time: float, n_warps: int) -> None:
        self.ctas_launched += 1
        if self.trace is not None:
            self._cta_start[index] = time

    def cta_retire(self, index: int, time: float) -> None:
        if self.trace is not None:
            start = self._cta_start.pop(index, 0.0)
            self.trace.slice(PID_CTAS, index, f"cta{index}", "cta", start, time - start)

    def spawn(self, wid: int, cta_index: int, warp_index: int, time: float) -> None:
        """A warp became resident; everything before is NOT_RESIDENT."""
        ws = _WarpObs(wid=wid, cta=cta_index, widx=warp_index)
        self.warps[wid] = ws
        self._charge(ws, CAUSE_NOT_RESIDENT, 0.0, time)
        ws.cursor = time
        self._occ_events.append((time, 1))
        if self.trace is not None:
            self.trace.thread_name(PID_WARPS, wid, f"cta{cta_index} w{warp_index}")

    def resume(self, wid: int, time: float, cause: str) -> None:
        """Charge [cursor, time) to ``cause`` (barrier releases)."""
        ws = self.warps[wid]
        self._charge(ws, cause, ws.cursor, time)
        if time > ws.cursor:
            ws.cursor = time

    def writeback(
        self,
        wid: int,
        reg: int,
        completion: float,
        cause: str,
        conflict: float,
        mshr: float = 0.0,
    ) -> None:
        """Register a pending write's completion time and its latency class.

        ``mshr`` is the portion of the producer's latency spent waiting
        for a free MSHR entry (non-blocking mode only); like
        ``conflict`` it is carved out of a dependent's wait and charged
        to its own cause.
        """
        self.warps[wid].pending[reg] = (completion, cause, conflict, mshr)

    def issue(
        self,
        wid: int,
        name: str,
        srcs: tuple[int, ...],
        ready: float,
        t: float,
        issue_done: float,
    ) -> None:
        """One instruction issued: attribute the wait leading up to it.

        ``ready`` is the heap key the warp was popped with (when it
        became schedulable), ``t`` the cycle it won the issue port,
        ``issue_done`` when the port was released (``t + 1`` plus any
        register-bank serialisation).
        """
        ws = self.warps[wid]
        cursor = ws.cursor
        if ready > cursor:
            # Dependency wait: the pending source with the latest
            # completion is the one that determined readiness.
            dep_end = cursor
            cause = CAUSE_RAW
            conflict = 0.0
            mshrw = 0.0
            pending = ws.pending
            if pending:
                for r in srcs:
                    e = pending.get(r)
                    if e is not None and e[0] > dep_end:
                        dep_end, cause, conflict, mshrw = e
            if dep_end > ready:
                dep_end = ready
            if dep_end > cursor:
                # Carve the wait into conflict serialisation, MSHR
                # allocation stalls, and the producer's own cause, in
                # that order; each share is capped by what remains.
                wait = dep_end - cursor
                bank = conflict if conflict < wait else wait
                rest = wait - bank
                msh = mshrw if mshrw < rest else rest
                if bank > 0.0:
                    self._charge(ws, CAUSE_BANK_CONFLICT, cursor, cursor + bank)
                if msh > 0.0:
                    self._charge(ws, CAUSE_MSHR_FULL, cursor + bank, cursor + bank + msh)
                self._charge(ws, cause, cursor + bank + msh, dep_end)
                cursor = dep_end
            if ready > cursor:
                # Only the two-level scheduler's reactivation latency
                # can delay a warp past its dependence resolution.
                self._charge(ws, CAUSE_DESCHEDULE, cursor, ready)
                cursor = ready
        if t > cursor:
            self._charge(ws, CAUSE_ISSUE_PORT, cursor, t)
        ws.issue_cycles += 1
        if issue_done > t + 1.0:
            self._charge(ws, CAUSE_BANK_CONFLICT, t + 1.0, issue_done)
        ws.cursor = issue_done
        if self.sampler is not None:
            self.sampler.add_instruction(t)
        if self.trace is not None:
            self.trace.slice(PID_WARPS, wid, name, "issue", t, issue_done - t)

    def complete(self, wid: int, time: float) -> None:
        """The warp issued its last instruction (or cleared its last barrier)."""
        self._occ_events.append((time, -1))
        if self.trace is not None:
            self.trace.instant(PID_WARPS, wid, "complete", "warp", time)

    def cache_access(self, time: float, hit: bool) -> None:
        if self.sampler is not None:
            self.sampler.add_cache_access(time, hit)

    def dram_transfer(self, start: float, end: float, nbytes: int) -> None:
        """Observer for :class:`repro.memory.dram.DRAMChannel`."""
        if self.sampler is not None:
            self.sampler.add_dram_transfer(start, end, nbytes)
        if self.trace is not None:
            self.trace.slice(PID_DRAM, 0, f"{nbytes}B", "dram", start, end - start)

    def finish(self, total_cycles: float) -> None:
        """Close every warp's timeline out to the end of the run."""
        self.total_cycles = total_cycles
        for ws in self.warps.values():
            self._charge(ws, CAUSE_NOT_RESIDENT, ws.cursor, total_cycles)
            ws.cursor = total_cycles
        if self.sampler is not None:
            # Occupancy changes arrive out of order (a barrier release
            # spawns CTAs at a future cycle while earlier warps are
            # still being popped), so integrate once, sorted, at the end.
            occ, last_t = 0, 0.0
            for time, delta in sorted(self._occ_events):
                self.sampler.add_occupancy(last_t, min(time, total_cycles), occ)
                occ += delta
                last_t = time
            self.sampler.add_occupancy(last_t, total_cycles, occ)

    # -- reports ----------------------------------------------------------
    def stall_totals(self) -> dict[str, float]:
        """Aggregate attributed cycles per cause across all warps."""
        totals = dict.fromkeys(STALL_CAUSES, 0.0)
        for ws in self.warps.values():
            for cause, cycles in ws.stalls.items():
                totals[cause] += cycles
        return totals

    @property
    def issue_cycles(self) -> int:
        return sum(ws.issue_cycles for ws in self.warps.values())

    def conservation_errors(self) -> list[str]:
        """Violations of attributed + issue == total, per warp (empty = ok)."""
        if self.total_cycles is None:
            return ["finish() was never called"]
        errors = []
        for ws in self.warps.values():
            total = ws.issue_cycles + math.fsum(ws.stalls.values())
            if total != self.total_cycles:
                errors.append(
                    f"warp {ws.wid} (cta{ws.cta} w{ws.widx}): attributed "
                    f"{total} != {self.total_cycles} cycles"
                )
        return errors

    def report(self) -> dict:
        """JSON-compatible profile summary (the ``profile`` command payload)."""
        totals = self.stall_totals()
        return {
            "schema": "repro.obs.profile/1",
            "total_cycles": self.total_cycles,
            "warps": len(self.warps),
            "ctas": self.ctas_launched,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": totals,
            "conservation_ok": not self.conservation_errors(),
        }

    def metrics_payload(self) -> dict | None:
        if self.sampler is None or self.total_cycles is None:
            return None
        return self.sampler.to_payload(self.total_cycles)

    def trace_payload(self) -> dict | None:
        return self.trace.to_payload() if self.trace is not None else None
