"""Interval time-series sampling of simulator activity.

The simulator is event-driven, so there is no cycle loop to sample
from; instead every activity event (instruction issue, cache access,
DRAM transfer, occupancy change) is bucketed into fixed-width cycle
windows as it happens.  Quantities with duration (DRAM busy time,
warp-occupancy integrals) are spread across the windows they overlap,
so a transfer straddling a window boundary contributes to both windows
proportionally.

The output schema (see :meth:`IntervalSampler.to_payload`)::

    {
      "schema": "repro.obs.metrics/1",
      "window": 1000,              # cycles per sample
      "total_cycles": 52340.0,
      "samples": [
        {"index": 0, "start": 0.0, "end": 1000.0,
         "instructions": 812, "ipc": 0.812,
         "occupancy": 14.2,        # mean resident warps
         "cache_accesses": 96, "cache_hit_rate": 0.83,
         "dram_bytes": 4096.0, "dram_utilisation": 0.51},
        ...
      ]
    }
"""

from __future__ import annotations

import math
from dataclasses import dataclass

METRICS_SCHEMA = "repro.obs.metrics/1"


@dataclass(slots=True)
class _Bucket:
    instructions: int = 0
    occupancy_integral: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    dram_busy: float = 0.0
    dram_bytes: float = 0.0


class IntervalSampler:
    """Buckets simulator events into fixed-width cycle windows."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window must be a positive cycle count")
        self.window = window
        self._buckets: dict[int, _Bucket] = {}

    def _bucket(self, t: float) -> _Bucket:
        i = int(t // self.window)
        b = self._buckets.get(i)
        if b is None:
            b = self._buckets[i] = _Bucket()
        return b

    # -- point events -----------------------------------------------------
    def add_instruction(self, t: float) -> None:
        self._bucket(t).instructions += 1

    def add_cache_access(self, t: float, hit: bool) -> None:
        b = self._bucket(t)
        if hit:
            b.cache_hits += 1
        else:
            b.cache_misses += 1

    # -- events with duration ---------------------------------------------
    def _segments(self, start: float, end: float):
        """Yield (bucket, overlap_cycles) for each window [start, end) spans."""
        w = self.window
        i = int(start // w)
        while start < end:
            edge = (i + 1) * w
            stop = end if end < edge else edge
            b = self._buckets.get(i)
            if b is None:
                b = self._buckets[i] = _Bucket()
            yield b, stop - start
            start = stop
            i += 1

    def add_dram_transfer(self, start: float, end: float, nbytes: int) -> None:
        dur = end - start
        if dur <= 0:
            self._bucket(start).dram_bytes += nbytes
            return
        for b, seg in self._segments(start, end):
            b.dram_busy += seg
            b.dram_bytes += nbytes * (seg / dur)

    def add_occupancy(self, start: float, end: float, warps: int) -> None:
        if warps <= 0 or end <= start:
            return
        for b, seg in self._segments(start, end):
            b.occupancy_integral += warps * seg

    # -- export -----------------------------------------------------------
    def samples(self, total_cycles: float) -> list[dict]:
        """One record per window from cycle 0 through ``total_cycles``."""
        if total_cycles <= 0:
            return []
        w = self.window
        n = max(int(math.ceil(total_cycles / w)), 1)
        empty = _Bucket()
        out = []
        for i in range(n):
            b = self._buckets.get(i, empty)
            start = float(i * w)
            end = min(float((i + 1) * w), total_cycles)
            span = end - start
            accesses = b.cache_hits + b.cache_misses
            out.append(
                {
                    "index": i,
                    "start": start,
                    "end": end,
                    "instructions": b.instructions,
                    "ipc": b.instructions / span if span else 0.0,
                    "occupancy": b.occupancy_integral / span if span else 0.0,
                    "cache_accesses": accesses,
                    "cache_hit_rate": b.cache_hits / accesses if accesses else 0.0,
                    "dram_bytes": b.dram_bytes,
                    "dram_utilisation": min(b.dram_busy / span, 1.0) if span else 0.0,
                }
            )
        return out

    def to_payload(self, total_cycles: float) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "window": self.window,
            "total_cycles": total_cycles,
            "samples": self.samples(total_cycles),
        }
