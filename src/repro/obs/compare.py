"""Cross-run diff engine: align two runs and attribute the cycle delta.

Every claim in the paper's evaluation is comparative -- "unified vs
baseline on the same workload" -- and the repo's other observability
layers explain a *single* run.  This module explains the *difference*
between two: given two runs as payload dicts (``--metrics-out`` run
metrics, ``profile`` stall reports, chip profiles, chip interval
metrics, chip results, Perfetto traces, or run manifests), it aligns
them and emits one schema-versioned diff (:data:`DIFF_SCHEMA`,
``repro.obs.diff/1``) whose sections attribute where the cycles went:

* ``cycles`` -- totals on both sides, exact delta, and the speedup of
  B over A (``cycles_a / cycles_b``: above 1.0 means B is faster);
* ``conservation`` -- for stall reports, the invariant
  ``issue + stalls == warps x cycles`` *re-verified on both inputs*
  with exact ``fsum`` equality before any delta is trusted;
* ``stalls`` / ``attribution`` -- per-cause stall-cycle deltas, ranked
  by magnitude, so "B is 1.2x slower" comes with "and 90% of the extra
  cycles are ``mshr_full``";
* ``per_sm`` / ``channels`` -- per-SM issue/IPC and per-channel
  utilisation deltas for chip-scope payloads;
* ``simulations`` -- for run-metrics payloads, the per-simulation
  alignment (tiered: config digest, then partition, then kernel
  identity) with unmatched runs reported rather than dropped;
* ``ctas`` -- per-CTA slowdowns matched by name from the
  ``repro.obs.trace/2`` dispatch->retire Gantt slices.

:func:`diff_results` offers the same arithmetic over in-memory
:class:`~repro.sm.result.SimResult` pairs -- the experiment drivers
(``memsys``, ``figure7``) route their speedup columns through it so
every printed ratio shares one definition.  :func:`pivot_traces`
merges two Perfetto timelines side by side (``repro trace --compare``).

A run diffed against itself is exactly zero everywhere: all inputs are
finite JSON numbers, deltas are computed with ``-`` on identical
values, and the conservation re-check is equality, not tolerance.
"""

from __future__ import annotations

import json
import math

from repro.obs.chip import CHIP_PROFILE_SCHEMA, CHIPMETRICS_SCHEMA
from repro.obs.collector import STALL_CAUSES
from repro.obs.manifest import MANIFEST_SCHEMA

DIFF_SCHEMA = "repro.obs.diff/1"

PROFILE_SCHEMA = "repro.obs.profile/1"
RUN_METRICS_SCHEMA = "repro.obs.run_metrics/1"

#: Schema of the side-by-side timeline emitted by :func:`pivot_traces`.
TRACE_PIVOT_SCHEMA = "repro.obs.trace.pivot/1"

#: Payload kinds :func:`build_diff` understands.
DIFF_KINDS = (
    "run_metrics",
    "profile",
    "chip_profile",
    "chipmetrics",
    "chip_result",
    "trace",
    "manifest",
)


def payload_kind(payload: dict) -> str:
    """Classify a run payload by its schema (raises ValueError if unknown)."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    schema = payload.get("schema")
    if schema == RUN_METRICS_SCHEMA:
        return "run_metrics"
    if schema == PROFILE_SCHEMA:
        return "profile"
    if schema == CHIP_PROFILE_SCHEMA:
        return "chip_profile"
    if schema == CHIPMETRICS_SCHEMA:
        return "chipmetrics"
    if schema == MANIFEST_SCHEMA:
        return "manifest"
    if "traceEvents" in payload:
        return "trace"
    if "chip_version" in payload:
        return "chip_result"
    raise ValueError(
        f"unrecognised run payload (schema {schema!r}); expected one of: "
        f"{RUN_METRICS_SCHEMA}, {PROFILE_SCHEMA}, {CHIP_PROFILE_SCHEMA}, "
        f"{CHIPMETRICS_SCHEMA}, {MANIFEST_SCHEMA}, a Chrome trace, or a "
        f"chip result"
    )


def _pair(a: float, b: float) -> dict:
    return {"a": a, "b": b, "delta": b - a}


def _cycles_pair(a: float, b: float) -> dict:
    d = _pair(a, b)
    d["speedup"] = a / b if b else (1.0 if not a else None)
    return d


def _stall_delta(stalls_a: dict, stalls_b: dict) -> dict:
    causes = [c for c in STALL_CAUSES if c in stalls_a or c in stalls_b]
    causes += sorted((set(stalls_a) | set(stalls_b)) - set(causes))
    return {
        c: _pair(stalls_a.get(c, 0.0), stalls_b.get(c, 0.0)) for c in causes
    }


def _attribution(stalls: dict) -> list[dict]:
    """Per-cause deltas ranked by magnitude, with share of the total shift."""
    total = math.fsum(abs(d["delta"]) for d in stalls.values())
    rows = [
        {
            "cause": cause,
            "delta": d["delta"],
            "share": abs(d["delta"]) / total if total else 0.0,
        }
        for cause, d in stalls.items()
    ]
    rows.sort(key=lambda r: (-abs(r["delta"]), r["cause"]))
    return rows


# -- SimResult pairs (the drivers' entry point) ---------------------------
def diff_results(a, b) -> dict:
    """Diff two in-memory :class:`~repro.sm.result.SimResult` runs.

    Both runs must execute the same kernel (same total work), so the
    cycle ratio is the speedup -- the same contract as
    :meth:`SimResult.speedup_over`, which this generalises with counter
    and stall-cause deltas.
    """
    if a.kernel != b.kernel:
        raise ValueError(
            f"cannot compare runs of different kernels: "
            f"{a.kernel!r} vs {b.kernel!r}"
        )
    if a.cycles <= 0 or b.cycles <= 0:
        raise ValueError("run has no cycles")
    diff = {
        "kernel": a.kernel,
        "cycles": _cycles_pair(a.cycles, b.cycles),
        "instructions": _pair(a.instructions, b.instructions),
        "dram_accesses": _pair(a.dram_accesses, b.dram_accesses),
        "dram_bytes": _pair(a.dram_bytes, b.dram_bytes),
        "bank_conflict_cycles": _pair(
            a.bank_conflict_cycles, b.bank_conflict_cycles
        ),
    }
    if a.stall_cycles or b.stall_cycles:
        stalls = _stall_delta(a.stall_cycles, b.stall_cycles)
        diff["stalls"] = stalls
        diff["attribution"] = _attribution(stalls)
    return diff


# -- stall-report conservation re-check -----------------------------------
def _check_report(tag: str, rep: dict, problems: list[str]) -> int:
    """Re-verify ``issue + stalls == warps x cycles`` for one report."""
    total = rep.get("total_cycles")
    warps = rep.get("warps")
    if total is None or warps is None:
        problems.append(f"{tag}: report carries no warps/total_cycles")
        return 0
    attributed = math.fsum(
        [float(rep.get("issue_cycles", 0))]
        + [float(v) for v in rep.get("stall_cycles", {}).values()]
    )
    expected = warps * total
    if attributed != expected:
        problems.append(
            f"{tag}: attributed {attributed} != {expected} "
            f"== {warps} warps x {total} cycles"
        )
    return 1


def recheck_conservation(payload: dict) -> dict:
    """Re-run the stall-conservation invariant on a stall-report payload.

    Trusts nothing: the identity is recomputed from the payload's own
    numbers with ``fsum`` and exact equality, chip-wide *and* per SM
    for chip profiles.  Returns ``{"checked", "ok", "violations"}``;
    payload kinds that carry no stall report check 0 identities.
    """
    kind = payload_kind(payload)
    problems: list[str] = []
    checked = 0
    if kind == "profile":
        checked += _check_report("run", payload, problems)
    elif kind == "chip_profile":
        checked += _check_report("chip", payload, problems)
        for i, rep in enumerate(payload.get("per_sm", [])):
            checked += _check_report(f"sm{i}", rep, problems)
    return {"checked": checked, "ok": not problems, "violations": problems}


def _diff_profiles(a: dict, b: dict) -> dict:
    stalls = _stall_delta(a.get("stall_cycles", {}), b.get("stall_cycles", {}))
    sections = {
        "cycles": _cycles_pair(a.get("total_cycles", 0), b.get("total_cycles", 0)),
        "warps": _pair(a.get("warps", 0), b.get("warps", 0)),
        "issue": _pair(a.get("issue_cycles", 0), b.get("issue_cycles", 0)),
        "stalls": stalls,
        "attribution": _attribution(stalls),
        "conservation": {
            "a": recheck_conservation(a),
            "b": recheck_conservation(b),
        },
    }
    per_sm_a, per_sm_b = a.get("per_sm"), b.get("per_sm")
    if per_sm_a and per_sm_b:
        rows = []
        for i in range(min(len(per_sm_a), len(per_sm_b))):
            sm_stalls = _stall_delta(
                per_sm_a[i].get("stall_cycles", {}),
                per_sm_b[i].get("stall_cycles", {}),
            )
            shifted = _attribution(sm_stalls)
            rows.append(
                {
                    "sm": i,
                    "issue": _pair(
                        per_sm_a[i].get("issue_cycles", 0),
                        per_sm_b[i].get("issue_cycles", 0),
                    ),
                    "top_shift": shifted[0] if shifted else None,
                }
            )
        sections["per_sm"] = rows
    ch_a = (a.get("channels") or {}).get("utilisation")
    ch_b = (b.get("channels") or {}).get("utilisation")
    if ch_a is not None and ch_b is not None and len(ch_a) == len(ch_b):
        sections["channels"] = [
            {"channel": i, **_pair(ua, ub)}
            for i, (ua, ub) in enumerate(zip(ch_a, ch_b))
        ]
    return sections


# -- run metrics (--metrics-out payloads) ---------------------------------
def _sim_label(rec: dict) -> str:
    bits = [rec.get("kernel", "?")]
    if rec.get("regs") is not None:
        bits.append(f"regs={rec['regs']}")
    if rec.get("thread_target") is not None:
        bits.append(f"threads={rec['thread_target']}")
    digest = rec.get("config_digest")
    if digest:
        bits.append(f"cfg={digest[:8]}")
    return " ".join(bits)


def _sim_key(rec: dict, level: int) -> tuple:
    """Alignment key at one tier (0 strictest .. 2 loosest)."""
    base = (rec.get("kernel"), rec.get("regs"), rec.get("thread_target"))
    if level >= 2:
        return base
    base += (json.dumps(rec.get("partition"), sort_keys=True),)
    if level >= 1:
        return base
    return base + (rec.get("config_digest"),)


_ALIGNMENTS = (
    "kernel+regs+threads+partition+config",
    "kernel+regs+threads+partition",
    "kernel+regs+threads",
)


def _align_sims(recs_a: list, recs_b: list) -> tuple[list, list, list, str]:
    """Tiered alignment: strictest key that matches anything wins.

    Within one key, duplicates pair positionally (both sides are sorted
    deterministically by the metrics writer).  Cross-config compares
    (e.g. blocking vs non-blocking metrics files) fall through to the
    looser tiers instead of reporting everything unmatched.
    """
    for level, name in enumerate(_ALIGNMENTS):
        buckets_a: dict[tuple, list] = {}
        for rec in recs_a:
            buckets_a.setdefault(_sim_key(rec, level), []).append(rec)
        buckets_b: dict[tuple, list] = {}
        for rec in recs_b:
            buckets_b.setdefault(_sim_key(rec, level), []).append(rec)
        pairs, only_a, only_b = [], [], []
        for key, group_a in buckets_a.items():
            group_b = buckets_b.get(key, [])
            pairs.extend(zip(group_a, group_b))
            only_a.extend(group_a[len(group_b):])
        for key, group_b in buckets_b.items():
            group_a = buckets_a.get(key, [])
            only_b.extend(group_b[len(group_a):])
        if pairs:
            return pairs, only_a, only_b, name
    return [], list(recs_a), list(recs_b), _ALIGNMENTS[-1]


def _engines_of(recs: list) -> list[str]:
    """Distinct warp-step engines the records claim, sorted."""
    return sorted({r.get("engine") for r in recs if r.get("engine")})


def _diff_run_metrics(a: dict, b: dict) -> dict:
    recs_a = a.get("simulations", [])
    recs_b = b.get("simulations", [])
    pairs, only_a, only_b, alignment = _align_sims(recs_a, recs_b)
    per_sim = []
    stall_totals_a: dict[str, float] = {}
    stall_totals_b: dict[str, float] = {}
    cycles_a = cycles_b = 0.0
    for ra, rb in pairs:
        cycles_a += ra.get("cycles", 0.0)
        cycles_b += rb.get("cycles", 0.0)
        row = {
            "label": _sim_label(ra),
            "kernel": ra.get("kernel"),
            "cycles": _cycles_pair(ra.get("cycles", 0.0), rb.get("cycles", 0.0)),
            "instructions": _pair(
                ra.get("instructions", 0), rb.get("instructions", 0)
            ),
            "dram_accesses": _pair(
                ra.get("dram_accesses", 0), rb.get("dram_accesses", 0)
            ),
        }
        sa, sb = ra.get("stall_cycles") or {}, rb.get("stall_cycles") or {}
        if sa or sb:
            row["stalls"] = _stall_delta(sa, sb)
            for cause, v in sa.items():
                stall_totals_a[cause] = stall_totals_a.get(cause, 0.0) + v
            for cause, v in sb.items():
                stall_totals_b[cause] = stall_totals_b.get(cause, 0.0) + v
        per_sim.append(row)
    per_sim.sort(key=lambda r: (-abs(r["cycles"]["delta"]), r["label"]))
    sections = {
        "cycles": _cycles_pair(cycles_a, cycles_b),
        "simulations": {
            "matched": len(pairs),
            "alignment": alignment,
            "only_a": sorted(_sim_label(r) for r in only_a),
            "only_b": sorted(_sim_label(r) for r in only_b),
            "per_sim": per_sim,
        },
        "conservation": {
            "a": recheck_conservation(a),
            "b": recheck_conservation(b),
        },
    }
    eng_a, eng_b = _engines_of(recs_a), _engines_of(recs_b)
    if eng_a or eng_b:
        # Engines are bit-identical by contract, so a mixed diff should
        # show zero deltas -- but if it does not, the header must say
        # which knob differed before anyone chases a phantom regression.
        sections["engines"] = {
            "a": eng_a,
            "b": eng_b,
            "mixed": eng_a != eng_b or len(eng_a) > 1 or len(eng_b) > 1,
        }
    if stall_totals_a or stall_totals_b:
        stalls = _stall_delta(stall_totals_a, stall_totals_b)
        sections["stalls"] = stalls
        sections["attribution"] = _attribution(stalls)
    return sections


# -- chip interval metrics ------------------------------------------------
def _weighted_mean(samples: list, pick) -> float:
    num = math.fsum(pick(s) * (s["end"] - s["start"]) for s in samples)
    den = math.fsum(s["end"] - s["start"] for s in samples)
    return num / den if den else 0.0


def _diff_chipmetrics(a: dict, b: dict) -> dict:
    sections = {
        "cycles": _cycles_pair(a.get("total_cycles", 0), b.get("total_cycles", 0)),
    }
    sams_a, sams_b = a.get("samples", []), b.get("samples", [])
    n_sms = min(a.get("num_sms", 0), b.get("num_sms", 0))
    sections["per_sm"] = [
        {
            "sm": i,
            **_pair(
                _weighted_mean(sams_a, lambda s, i=i: s["per_sm_ipc"][i]),
                _weighted_mean(sams_b, lambda s, i=i: s["per_sm_ipc"][i]),
            ),
        }
        for i in range(n_sms)
    ]
    n_ch = min(a.get("dram_channels", 0), b.get("dram_channels", 0))
    sections["channels"] = [
        {
            "channel": c,
            **_pair(
                _weighted_mean(sams_a, lambda s, c=c: s["channel_utilisation"][c]),
                _weighted_mean(sams_b, lambda s, c=c: s["channel_utilisation"][c]),
            ),
        }
        for c in range(n_ch)
    ]
    return sections


# -- serialized chip results ----------------------------------------------
def _diff_chip_results(a: dict, b: dict) -> dict:
    sections = {
        "cycles": _cycles_pair(a.get("cycles", 0), b.get("cycles", 0)),
        "ctas_per_sm": {"a": a.get("ctas_per_sm"), "b": b.get("ctas_per_sm")},
    }
    per_a, per_b = a.get("per_sm", []), b.get("per_sm", [])
    sections["per_sm"] = [
        {
            "sm": i,
            "cycles": _cycles_pair(sa.get("cycles", 0), sb.get("cycles", 0)),
            "instructions": _pair(
                sa.get("instructions", 0), sb.get("instructions", 0)
            ),
        }
        for i, (sa, sb) in enumerate(zip(per_a, per_b))
    ]
    ch_a, ch_b = a.get("dram_channel_bytes"), b.get("dram_channel_bytes")
    if ch_a is not None and ch_b is not None and len(ch_a) == len(ch_b):
        sections["channels"] = [
            {"channel": i, **_pair(ba, bb)}
            for i, (ba, bb) in enumerate(zip(ch_a, ch_b))
        ]
    return sections


# -- traces ---------------------------------------------------------------
def _cta_gantt(trace: dict) -> dict[str, dict]:
    out = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") == "X" and ev.get("cat") == "cta":
            out[ev["name"]] = {
                "sm": ev.get("tid"),
                "start": ev.get("ts", 0.0),
                "cycles": ev.get("dur", 0.0),
            }
    return out


def cta_slowdowns(trace_a: dict, trace_b: dict) -> dict:
    """Per-CTA slowdown of B over A from dispatch->retire Gantt slices.

    Matches CTA slices by name across two ``repro.obs.trace/1`` or
    ``/2`` payloads (trace time is 1 us per simulated cycle, so slice
    durations *are* cycle counts).  The ranked result is the
    explainability hook the ROADMAP's allocation-policy autotuner
    needs: "which CTAs paid for this policy change, and on which SM?"
    """
    ga, gb = _cta_gantt(trace_a), _cta_gantt(trace_b)
    rows = []
    for name in ga.keys() & gb.keys():
        ca, cb = ga[name], gb[name]
        rows.append(
            {
                "cta": name,
                "sm_a": ca["sm"],
                "sm_b": cb["sm"],
                "cycles": _cycles_pair(ca["cycles"], cb["cycles"]),
                "slowdown": (
                    cb["cycles"] / ca["cycles"] if ca["cycles"] else None
                ),
            }
        )
    rows.sort(key=lambda r: (-abs(r["cycles"]["delta"]), r["cta"]))
    return {
        "matched": len(rows),
        "only_a": sorted(ga.keys() - gb.keys()),
        "only_b": sorted(gb.keys() - ga.keys()),
        "slowdowns": rows,
    }


def _trace_makespan(trace: dict) -> float:
    return max(
        (
            ev.get("ts", 0.0) + ev.get("dur", 0.0)
            for ev in trace.get("traceEvents", [])
            if ev.get("ph") == "X"
        ),
        default=0.0,
    )


def _diff_traces(a: dict, b: dict) -> dict:
    return {
        "cycles": _cycles_pair(_trace_makespan(a), _trace_makespan(b)),
        "ctas": cta_slowdowns(a, b),
    }


def pivot_traces(
    trace_a: dict, trace_b: dict, label_a: str = "A", label_b: str = "B"
) -> dict:
    """Merge two Perfetto timelines side by side in one payload.

    B's process ids are offset past A's so the two runs stack as
    separate process groups, each prefixed with its label -- the
    ``repro trace --compare`` output.  Timestamps are untouched, so
    vertically aligned slices happened at the same simulated cycle.
    """
    events_a = trace_a.get("traceEvents", [])
    events_b = trace_b.get("traceEvents", [])
    offset = max((ev.get("pid", 0) for ev in events_a), default=0) + 1

    def relabel(ev: dict, label: str, pid_offset: int) -> dict:
        out = dict(ev)
        out["pid"] = ev.get("pid", 0) + pid_offset
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            out["args"] = {"name": f"{label}: {ev.get('args', {}).get('name', '')}"}
        return out

    events = [relabel(ev, label_a, 0) for ev in events_a]
    events += [relabel(ev, label_b, offset) for ev in events_b]
    dropped = sum(
        t.get("otherData", {}).get("droppedEvents", 0) for t in (trace_a, trace_b)
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_PIVOT_SCHEMA,
            "clock": "1 simulated cycle = 1 us of trace time",
            "droppedEvents": dropped,
            "a": {"label": label_a,
                  "schema": trace_a.get("otherData", {}).get("schema")},
            "b": {"label": label_b,
                  "schema": trace_b.get("otherData", {}).get("schema")},
            "pid_offset_b": offset,
        },
    }


# -- manifests ------------------------------------------------------------
def _diff_manifests(a: dict, b: dict) -> dict:
    versions = {}
    for key in sorted(set(a.get("versions", {})) | set(b.get("versions", {}))):
        va, vb = a.get("versions", {}).get(key), b.get("versions", {}).get(key)
        if va != vb:
            versions[key] = {"a": va, "b": vb}
    wall_a = math.fsum(p.get("wall_seconds", 0.0) for p in a.get("phases", []))
    wall_b = math.fsum(p.get("wall_seconds", 0.0) for p in b.get("phases", []))
    eng_a, eng_b = a.get("engines"), b.get("engines")
    engines = None
    if eng_a or eng_b:
        resolved_a = (eng_a or {}).get("resolved") or {}
        resolved_b = (eng_b or {}).get("resolved") or {}
        engines = {
            "a": eng_a,
            "b": eng_b,
            "mixed": (
                sorted(resolved_a) != sorted(resolved_b)
                or (eng_a or {}).get("configured")
                != (eng_b or {}).get("configured")
            ),
        }
    return {
        "same_config": a.get("sm_config_digest") == b.get("sm_config_digest"),
        "config_digest": {
            "a": a.get("sm_config_digest"),
            "b": b.get("sm_config_digest"),
        },
        "scale": {"a": a.get("scale"), "b": b.get("scale")},
        "versions_changed": versions,
        "wall_seconds": _pair(wall_a, wall_b),
        **({"engines": engines} if engines is not None else {}),
    }


# -- the envelope ---------------------------------------------------------
_SECTION_BUILDERS = {
    "run_metrics": _diff_run_metrics,
    "profile": _diff_profiles,
    "chip_profile": _diff_profiles,
    "chipmetrics": _diff_chipmetrics,
    "chip_result": _diff_chip_results,
    "trace": _diff_traces,
    "manifest": _diff_manifests,
}


def build_diff(
    a: dict, b: dict, *, label_a: str = "A", label_b: str = "B"
) -> dict:
    """Diff two run payloads of the same kind into one ``diff/1`` record.

    Raises ValueError when the payloads are unrecognised or of
    different kinds (a profile cannot diff against a trace).
    """
    kind_a, kind_b = payload_kind(a), payload_kind(b)
    if kind_a != kind_b:
        raise ValueError(f"cannot diff {kind_a} payload against {kind_b} payload")
    diff = {
        "schema": DIFF_SCHEMA,
        "kind": kind_a,
        "a": {"label": label_a, "schema": a.get("schema")},
        "b": {"label": label_b, "schema": b.get("schema")},
    }
    diff.update(_SECTION_BUILDERS[kind_a](a, b))
    return diff


def validate_diff(payload: dict) -> list[str]:
    """Structural checks for a ``repro.obs.diff/1`` payload.

    Returns a list of problems (empty = valid).  Beyond shape, the
    arithmetic is re-verified: every ``{a, b, delta}`` triple anywhere
    in the payload must satisfy ``delta == b - a`` exactly.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    if payload.get("schema") != DIFF_SCHEMA:
        problems.append(f"schema must be {DIFF_SCHEMA!r}")
    if payload.get("kind") not in DIFF_KINDS:
        problems.append(f"kind must be one of {DIFF_KINDS}")
    for side in ("a", "b"):
        meta = payload.get(side)
        if not isinstance(meta, dict) or not isinstance(meta.get("label"), str):
            problems.append(f"{side} must be an object with a label")

    def walk(node, path):
        if len(problems) >= 20:
            return
        if isinstance(node, dict):
            if (
                isinstance(node.get("a"), (int, float))
                and isinstance(node.get("b"), (int, float))
                and "delta" in node
            ):
                if node["delta"] != node["b"] - node["a"]:
                    problems.append(
                        f"{path}: delta {node['delta']} != "
                        f"{node['b']} - {node['a']}"
                    )
            for key, value in node.items():
                walk(value, f"{path}.{key}")
        elif isinstance(node, list):
            for i, value in enumerate(node):
                walk(value, f"{path}[{i}]")

    walk({k: v for k, v in payload.items() if k not in ("a", "b")}, "diff")
    cons = payload.get("conservation")
    if cons is not None:
        for side in ("a", "b"):
            entry = cons.get(side)
            if not isinstance(entry, dict) or not {
                "checked", "ok", "violations"
            } <= set(entry):
                problems.append(f"conservation.{side} malformed")
    if len(problems) >= 20:
        problems.append("... (further problems suppressed)")
    return problems


def format_diff(payload: dict) -> str:
    """Human-readable rendering of a diff (the ``repro compare`` output)."""
    la = payload["a"]["label"]
    lb = payload["b"]["label"]
    lines = [f"diff ({payload['kind']}): A = {la}  vs  B = {lb}"]
    engines = payload.get("engines")
    if isinstance(engines, dict):

        def _engine_label(side) -> str:
            if isinstance(side, dict):  # manifest engine summary
                resolved = side.get("resolved") or {}
                counts = ", ".join(
                    f"{k} x{v}" for k, v in sorted(resolved.items())
                )
                return f"{side.get('configured', '?')}" + (
                    f" (ran {counts})" if counts else ""
                )
            if isinstance(side, list):  # run-metrics engine sets
                return "+".join(side) if side else "?"
            return str(side)

        line = (
            f"engines: A = {_engine_label(engines.get('a'))}  "
            f"vs  B = {_engine_label(engines.get('b'))}"
        )
        if engines.get("mixed"):
            line += "  [engine-mixed diff]"
        lines.append(line)
    cycles = payload.get("cycles")
    if cycles is not None:
        speedup = cycles.get("speedup")
        lines.append(
            f"cycles: {cycles['a']:.0f} -> {cycles['b']:.0f} "
            f"(delta {cycles['delta']:+.0f}"
            + (f", B speedup {speedup:.3f}x" if speedup is not None else "")
            + ")"
        )
    cons = payload.get("conservation")
    if cons is not None:
        for side, label in (("a", la), ("b", lb)):
            entry = cons[side]
            if not entry["checked"]:
                lines.append(f"conservation [{label}]: no stall report to check")
            elif entry["ok"]:
                lines.append(
                    f"conservation [{label}]: ok "
                    f"({entry['checked']} identities re-verified exactly)"
                )
            else:
                lines.append(f"conservation [{label}]: VIOLATED")
                lines.extend(f"  {v}" for v in entry["violations"][:5])
    attribution = payload.get("attribution")
    if attribution:
        shifted = [r for r in attribution if r["delta"]]
        if shifted:
            lines.append("stall-cycle delta by cause (warp-cycles, B - A):")
            lines.extend(
                f"  {r['cause']:<14} {r['delta']:+14.1f}  ({r['share']:.0%})"
                for r in shifted[:8]
            )
        else:
            lines.append("stall-cycle delta by cause: none (identical)")
    sims = payload.get("simulations")
    if isinstance(sims, dict):
        lines.append(
            f"simulations: {sims['matched']} matched "
            f"(by {sims['alignment']}), "
            f"{len(sims['only_a'])} only in A, {len(sims['only_b'])} only in B"
        )
        moved = [r for r in sims["per_sim"] if r["cycles"]["delta"]]
        for r in moved[:5]:
            lines.append(
                f"  {r['label']:<40} {r['cycles']['a']:>12.0f} -> "
                f"{r['cycles']['b']:>12.0f}  ({r['cycles']['delta']:+.0f})"
            )
        for label in sims["only_a"][:3]:
            lines.append(f"  only in A: {label}")
        for label in sims["only_b"][:3]:
            lines.append(f"  only in B: {label}")
    per_sm = payload.get("per_sm")
    if per_sm and payload["kind"] == "chipmetrics":
        lines.append("per-SM mean IPC delta:")
        lines.extend(
            f"  sm{r['sm']}: {r['a']:.3f} -> {r['b']:.3f} ({r['delta']:+.3f})"
            for r in per_sm
        )
    channels = payload.get("channels")
    if channels and isinstance(channels, list):
        moved = [c for c in channels if c.get("delta")]
        if moved:
            lines.append("channel deltas:")
            lines.extend(
                f"  ch{c['channel']}: {c['a']:.4g} -> {c['b']:.4g} "
                f"({c['delta']:+.4g})"
                for c in moved[:8]
            )
    ctas = payload.get("ctas")
    if isinstance(ctas, dict):
        lines.append(
            f"ctas: {ctas['matched']} matched, "
            f"{len(ctas['only_a'])} only in A, {len(ctas['only_b'])} only in B"
        )
        moved = [r for r in ctas["slowdowns"] if r["cycles"]["delta"]]
        if moved:
            lines.append("top CTA slowdowns (B / A):")
            for r in moved[:10]:
                slowdown = r["slowdown"]
                lines.append(
                    f"  {r['cta']:<8} sm{r['sm_a']}->sm{r['sm_b']}  "
                    f"{r['cycles']['a']:.0f} -> {r['cycles']['b']:.0f} cycles"
                    + (f"  ({slowdown:.3f}x)" if slowdown is not None else "")
                )
        else:
            lines.append("per-CTA lifetimes identical")
    if payload["kind"] == "manifest":
        lines.append(
            "sm config: "
            + ("identical" if payload["same_config"] else "DIFFERENT")
        )
        for key, v in payload.get("versions_changed", {}).items():
            lines.append(f"  version {key}: {v['a']} -> {v['b']}")
        wall = payload["wall_seconds"]
        lines.append(
            f"wall-clock: {wall['a']:.2f}s -> {wall['b']:.2f}s "
            f"({wall['delta']:+.2f}s)"
        )
    return "\n".join(lines)


def conservation_violated(payload: dict) -> bool:
    """True when either side's re-checked invariant failed (CLI exit 1)."""
    cons = payload.get("conservation")
    if not isinstance(cons, dict):
        return False
    return any(
        isinstance(cons.get(side), dict) and not cons[side].get("ok", True)
        for side in ("a", "b")
    )
