"""Executor span tracing: fleet-scope observability for experiment sweeps.

The first two observability layers answer "where did the cycles go?"
inside one simulation (:mod:`repro.obs.collector`) and one chip
(:mod:`repro.obs.chip`).  This module adds the third scope -- the
*experiment fleet*: every job the
:class:`~repro.experiments.executor.Executor` runs emits a structured
span covering its whole life (submit -> queued -> running -> done /
expected-error / cache-hit), stamped with wall-clock, worker process,
SMConfig digest, the job's disk-cache disposition, and the journal
adoption that shipped its artefacts back to the parent.

Timing uses ``time.perf_counter()`` on both sides of the fork: the
executor's workers are forked children, so parent and child share one
``CLOCK_MONOTONIC`` base and their stamps are directly comparable.  All
recorded times are seconds relative to the recorder's epoch.

Three exports come out of one recorded sweep:

* :meth:`SpanRecorder.to_payload` -- the schema-versioned span log
  (:data:`SPANS_SCHEMA`, ``repro.obs.spans/1``), persisted next to the
  run manifests by :meth:`~repro.experiments.artifacts.DiskCache.put_spans`;
* :meth:`SpanRecorder.summary` / :meth:`SpanRecorder.format_summary` --
  per-phase critical path, worker utilisation, and the cumulative cache
  hit-rate timeline the ``suite`` command logs;
* :meth:`SpanRecorder.trace_payload` -- a Chrome-trace timeline of the
  whole sweep (phases + one track per worker), so a multi-experiment
  run opens in Perfetto exactly like a single chip run (1 us of trace
  time = 1 us of wall-clock).

Recording is strictly opt-in (``--spans`` and friends) and observes
only wall-clock the executor already measures plus cache-statistics
snapshots -- it never touches simulation state, so spans cannot change
a simulated cycle (pinned by the fleet neutrality tests).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from repro.obs.trace import TraceBuffer

SPANS_SCHEMA = "repro.obs.spans/1"

#: Schema of the sweep timeline emitted by
#: :meth:`SpanRecorder.trace_payload`: a "sweep phases" process with
#: phase and journal-adoption tracks, plus a "workers" process with one
#: job track per worker process.
SPANS_TRACE_SCHEMA = "repro.obs.trace.spans/1"

#: Terminal states a job span can report.
JOB_STATUSES = ("done", "expected-error", "cache-hit")

#: Trace process ids of the sweep timeline.
PID_PHASES = 0
PID_WORKERS = 1


@dataclass(slots=True)
class JobSpan:
    """One executor job's lifetime, in seconds since the recorder epoch.

    ``submit <= start <= end``: the gap ``start - submit`` is queueing
    (waiting for a pool slot), ``end - start`` is execution.  ``cache``
    is the per-job :class:`~repro.experiments.artifacts.DiskCacheStats`
    delta (None when no disk cache is armed); ``adopted`` counts the
    journal entries the parent merged for this job and
    ``adopt_seconds`` the wall-clock that merge took (both 0 on the
    serial path, where no shipping happens).
    """

    phase: str
    index: int
    job: str
    kind: str
    benchmark: str
    submit: float
    start: float
    end: float
    worker: int
    status: str
    error: str | None = None
    config_digest: str | None = None
    cache: dict | None = None
    adopted: int = 0
    adopt_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return self.end - self.start

    @property
    def queued_seconds(self) -> float:
        return self.start - self.submit

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "index": self.index,
            "job": self.job,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "submit": self.submit,
            "start": self.start,
            "end": self.end,
            "queued_seconds": self.queued_seconds,
            "seconds": self.seconds,
            "worker": self.worker,
            "status": self.status,
            "error": self.error,
            "config_digest": self.config_digest,
            "cache": self.cache,
            "adopted": self.adopted,
            "adopt_seconds": self.adopt_seconds,
        }


def _cache_disposition(cache: dict | None) -> tuple[int, int]:
    """(hits, misses) of one job's disk-cache stats delta."""
    if not cache:
        return 0, 0
    hits = sum(v for k, v in cache.items() if k.endswith("_hits"))
    misses = sum(v for k, v in cache.items() if k.endswith("_misses"))
    return hits, misses


class SpanRecorder:
    """Collects :class:`JobSpan` records across an executor's phases.

    One recorder spans one CLI invocation: each
    :meth:`~repro.experiments.executor.Executor.prime` call opens a
    phase (named by the driver: ``figure7``, ``memsys``, ...), records
    a span per job, and closes the phase.  The recorder only ever
    *receives* absolute ``perf_counter()`` stamps and normalises them
    to its epoch, so worker-side and parent-side times line up.
    """

    enabled = True

    def __init__(self, command: str | None = None) -> None:
        self.command = command
        self.created_unix = time.time()
        self.epoch = time.perf_counter()
        self.spans: list[JobSpan] = []
        self.phases: list[dict] = []
        self._phase: dict | None = None

    def _rel(self, t_abs: float) -> float:
        return t_abs - self.epoch

    # -- executor hooks ----------------------------------------------------
    def phase_start(self, label: str, workers: int) -> float:
        """Open a phase; returns the submit stamp its jobs share.

        Every job of a phase is enqueued when ``prime`` starts, so one
        stamp is the honest submit time for all of them -- per-job
        queueing is then visible as ``start - submit``.
        """
        now = time.perf_counter()
        self._phase = {
            "label": label,
            "workers": workers,
            "jobs": 0,
            "start": self._rel(now),
            "end": self._rel(now),
        }
        self.phases.append(self._phase)
        return now

    def phase_end(self) -> None:
        if self._phase is not None:
            self._phase["end"] = self._rel(time.perf_counter())
            self._phase = None

    def record_job(
        self,
        *,
        job,
        index: int,
        submit: float,
        start: float,
        end: float,
        worker: int,
        error: str | None = None,
        cache: dict | None = None,
        adopted: int = 0,
        adopt_seconds: float = 0.0,
        config_digest: str | None = None,
    ) -> JobSpan:
        """Record one finished job (absolute ``perf_counter`` stamps)."""
        status = "expected-error" if error is not None else "done"
        if error is None:
            hits, misses = _cache_disposition(cache)
            if hits and not misses:
                status = "cache-hit"
        if self._phase is not None:
            self._phase["jobs"] += 1
        span = JobSpan(
            phase=self._phase["label"] if self._phase is not None else "",
            index=index,
            job=job.describe(),
            kind=job.kind,
            benchmark=job.benchmark,
            submit=self._rel(submit),
            start=self._rel(start),
            end=self._rel(end),
            worker=worker,
            status=status,
            error=error,
            config_digest=config_digest,
            cache=dict(cache) if cache else None,
            adopted=adopted,
            adopt_seconds=adopt_seconds,
        )
        self.spans.append(span)
        return span

    # -- exports -----------------------------------------------------------
    def to_payload(self) -> dict:
        """The ``repro.obs.spans/1`` span log (JSON-compatible)."""
        return {
            "schema": SPANS_SCHEMA,
            "created_unix": self.created_unix,
            "command": self.command,
            "jobs": len(self.spans),
            "phases": [dict(p) for p in self.phases],
            "spans": [s.to_dict() for s in self.spans],
        }

    def summary(self) -> dict:
        """Roll-up statistics: critical paths, utilisation, hit rate.

        For a phase of independent jobs the critical path is its
        longest job -- the lower bound no worker count can beat; the
        utilisation is busy worker-seconds over the phase's
        ``workers x wall`` budget.
        """
        per_phase = []
        for phase in self.phases:
            spans = [s for s in self.spans if s.phase == phase["label"]]
            wall = phase["end"] - phase["start"]
            busy = sum(s.seconds for s in spans)
            critical = max(spans, key=lambda s: s.seconds, default=None)
            per_phase.append(
                {
                    "label": phase["label"],
                    "workers": phase["workers"],
                    "jobs": len(spans),
                    "wall_seconds": wall,
                    "busy_seconds": busy,
                    "utilisation": (
                        busy / (phase["workers"] * wall) if wall > 0 else 0.0
                    ),
                    "critical_job": critical.job if critical is not None else None,
                    "critical_seconds": (
                        critical.seconds if critical is not None else 0.0
                    ),
                }
            )
        workers: dict[int, dict] = {}
        for s in self.spans:
            w = workers.setdefault(s.worker, {"worker": s.worker, "jobs": 0,
                                              "busy_seconds": 0.0})
            w["jobs"] += 1
            w["busy_seconds"] += s.seconds
        statuses = dict.fromkeys(JOB_STATUSES, 0)
        for s in self.spans:
            statuses[s.status] = statuses.get(s.status, 0) + 1
        # Cumulative disk-cache hit rate in completion order: the
        # "does the cache warm up over the sweep?" timeline.
        timeline = []
        hits = accesses = 0
        for s in sorted(self.spans, key=lambda s: s.end):
            h, m = _cache_disposition(s.cache)
            if h + m == 0:
                continue
            hits += h
            accesses += h + m
            timeline.append({"end": s.end, "hit_rate": hits / accesses})
        return {
            "jobs": len(self.spans),
            "statuses": statuses,
            "phases": per_phase,
            "workers": sorted(workers.values(), key=lambda w: w["worker"]),
            "cache_hit_timeline": timeline,
        }

    def format_summary(self) -> str:
        """Human-readable roll-up (the ``suite`` command's span lines)."""
        s = self.summary()
        n_workers = len(s["workers"])
        lines = [
            f"[spans] {s['jobs']} jobs over {len(s['phases'])} phase(s) on "
            f"{n_workers} worker process(es): "
            + ", ".join(f"{v} {k}" for k, v in s["statuses"].items() if v)
        ]
        for p in s["phases"]:
            lines.append(
                f"  {p['label']}: {p['jobs']} jobs, {p['wall_seconds']:.2f}s "
                f"wall, {p['busy_seconds']:.2f}s busy "
                f"({p['utilisation']:.0%} of {p['workers']} worker(s)); "
                f"critical path {p['critical_seconds']:.2f}s"
                + (f" [{p['critical_job']}]" if p["critical_job"] else "")
            )
        timeline = s["cache_hit_timeline"]
        if timeline:
            lines.append(
                f"  cache hit rate over the sweep: "
                f"{timeline[0]['hit_rate']:.0%} -> {timeline[-1]['hit_rate']:.0%}"
            )
        return "\n".join(lines)

    def trace_payload(self) -> dict:
        """Chrome-trace timeline of the sweep (1 us = 1 us wall-clock)."""
        buf = TraceBuffer(max_events=max(1, 4 * len(self.spans) + 64))
        buf.process_name(PID_PHASES, "sweep phases")
        buf.thread_name(PID_PHASES, 0, "phases")
        buf.thread_name(PID_PHASES, 1, "journal adoption")
        buf.process_name(PID_WORKERS, "workers")
        scale = 1e6  # seconds -> microseconds
        tids: dict[int, int] = {}
        for s in self.spans:
            if s.worker not in tids:
                tids[s.worker] = len(tids)
                buf.thread_name(PID_WORKERS, tids[s.worker], f"worker {s.worker}")
        for phase in self.phases:
            buf.slice(
                PID_PHASES, 0, phase["label"], "phase",
                phase["start"] * scale,
                (phase["end"] - phase["start"]) * scale,
                args={"jobs": phase["jobs"], "workers": phase["workers"]},
            )
        for s in self.spans:
            buf.slice(
                PID_WORKERS, tids[s.worker], f"{s.kind} {s.benchmark}", "job",
                s.start * scale, s.seconds * scale,
                args={"status": s.status, "index": s.index, "job": s.job,
                      "queued_ms": s.queued_seconds * 1e3},
            )
            if s.adopted:
                buf.slice(
                    PID_PHASES, 1, f"adopt {s.benchmark}", "adopt",
                    s.end * scale, s.adopt_seconds * scale,
                    args={"entries": s.adopted},
                )
        payload = buf.to_payload()
        payload["otherData"] = {
            "schema": SPANS_TRACE_SCHEMA,
            "clock": "1 us of trace time = 1 us of wall-clock",
            "droppedEvents": buf.dropped,
            "command": self.command,
            "jobs": len(self.spans),
        }
        return payload


def validate_spans(payload: dict) -> list[str]:
    """Structural checks for a ``repro.obs.spans/1`` payload.

    Returns a list of problems (empty = valid).  Used by the test suite
    and CI to validate persisted span logs.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    if payload.get("schema") != SPANS_SCHEMA:
        problems.append(f"schema must be {SPANS_SCHEMA!r}")
    if not isinstance(payload.get("created_unix"), (int, float)):
        problems.append("created_unix must be a number")
    phases = payload.get("phases")
    if not isinstance(phases, list):
        problems.append("phases must be a JSON array")
        phases = []
    labels = set()
    for i, p in enumerate(phases):
        if not isinstance(p, dict):
            problems.append(f"phase {i}: not an object")
            continue
        if not isinstance(p.get("label"), str):
            problems.append(f"phase {i}: missing label")
        else:
            labels.add(p["label"])
        if not isinstance(p.get("workers"), int) or p.get("workers", 0) < 1:
            problems.append(f"phase {i}: workers must be a positive integer")
        for key in ("start", "end"):
            if not isinstance(p.get(key), (int, float)):
                problems.append(f"phase {i}: missing numeric {key}")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return problems + ["spans must be a JSON array"]
    if payload.get("jobs") != len(spans):
        problems.append("jobs must equal len(spans)")
    for i, s in enumerate(spans):
        if not isinstance(s, dict):
            problems.append(f"span {i}: not an object")
            continue
        for key in ("job", "kind", "benchmark", "phase"):
            if not isinstance(s.get(key), str):
                problems.append(f"span {i}: missing string {key}")
        if s.get("phase") and labels and s["phase"] not in labels:
            problems.append(f"span {i}: unknown phase {s['phase']!r}")
        for key in ("submit", "start", "end"):
            if not isinstance(s.get(key), (int, float)):
                problems.append(f"span {i}: missing numeric {key}")
        if all(isinstance(s.get(k), (int, float)) for k in ("submit", "start", "end")):
            if not s["submit"] <= s["start"] <= s["end"]:
                problems.append(
                    f"span {i}: times not ordered "
                    f"(submit {s['submit']} <= start {s['start']} "
                    f"<= end {s['end']})"
                )
        if not isinstance(s.get("worker"), int):
            problems.append(f"span {i}: missing integer worker")
        if s.get("status") not in JOB_STATUSES:
            problems.append(f"span {i}: unknown status {s.get('status')!r}")
        if s.get("status") == "expected-error" and not s.get("error"):
            problems.append(f"span {i}: expected-error without an error message")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems


def default_spans_name(payload: dict) -> str:
    """A collision-resistant file name for a span log."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(payload["created_unix"]))
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()[:8]
    return f"spans-{stamp}-{digest}.json"
