"""Run manifests: provenance records for experiment runs.

A manifest answers "what exactly produced these artifacts?" months
later: the SMConfig fingerprint (and its digest, which is what
simulation cache keys embed), every on-disk format version, the
package version, per-experiment wall-clock, and the disk-cache hit
statistics of the run.  The CLI writes one next to the
:class:`~repro.experiments.artifacts.DiskCache` artifacts after every
``experiment`` / ``suite`` / ``validate`` invocation that uses a cache
directory.

Manifests carry wall-clock timings and timestamps, so they are *not*
byte-reproducible between runs -- the deterministic counterpart is the
``--metrics-out`` file, which holds only simulation-derived numbers.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from pathlib import Path

import repro
from repro.isa.io import FORMAT_VERSION as TRACE_FORMAT_VERSION
from repro.sm.config import SMConfig
from repro.sm.serialize import RESULT_FORMAT_VERSION

MANIFEST_SCHEMA = "repro.obs.manifest/1"


def sm_config_digest(config: SMConfig) -> str:
    """SHA-256 over the config fingerprint (stable across processes)."""
    from repro.experiments.runner import config_fingerprint

    blob = json.dumps(config_fingerprint(config), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def build_run_manifest(
    command: str,
    scale: str,
    config: SMConfig,
    jobs: int = 1,
    experiments: list[dict] | None = None,
    executor=None,
    chip: dict | None = None,
    engines: dict | None = None,
) -> dict:
    """Assemble the provenance record of one CLI run.

    Args:
        command: The invoked command line (for reproduction).
        scale: Workload scale the run used.
        config: The SMConfig simulations ran under.
        jobs: Worker process count.
        experiments: Per-experiment records, each at least
            ``{"id": ..., "seconds": ...}``.
        executor: Optional :class:`~repro.experiments.executor.Executor`
            whose phase reports and cache statistics to embed.
        chip: Optional chip-scope observability summary (the
            ``channels`` / ``dispatcher`` dicts of
            :meth:`repro.obs.chip.ChipCollector.report`), recorded when
            an instrumented chip run wrote this manifest.
        engines: Optional engine-resolution summary
            (:meth:`repro.experiments.runner.Runner.engine_summary`):
            the configured warp-step engine, counts of what each live
            simulation actually executed (tiered warm-up included), and
            a ``mixed`` flag.  The ``repro compare`` manifest diff
            surfaces it so engine-mixed comparisons are never silent.
    """
    from repro.experiments.runner import config_fingerprint

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "command": command,
        "scale": scale,
        "jobs": jobs,
        "versions": {
            "repro": repro.__version__,
            "python": platform.python_version(),
            "result_format": RESULT_FORMAT_VERSION,
            "trace_format": TRACE_FORMAT_VERSION,
        },
        "sm_config": [list(pair) for pair in config_fingerprint(config)],
        "sm_config_digest": sm_config_digest(config),
        "experiments": experiments or [],
    }
    if chip is not None:
        manifest["chip"] = chip
    if engines is not None:
        manifest["engines"] = engines
    if executor is not None:
        manifest["phases"] = [
            {
                "label": r.label,
                "workers": r.workers,
                "jobs": len(r.outcomes),
                "wall_seconds": r.wall_seconds,
                "job_seconds": r.job_seconds,
                "expected_errors": len(r.errors),
            }
            for r in executor.reports
        ]
        cache = executor.runner.cache
        if cache is not None:
            from dataclasses import fields

            manifest["cache"] = {
                "stats": {f.name: getattr(cache.stats, f.name) for f in fields(cache.stats)},
                "entries": cache.entry_count(),
            }
    return manifest


def write_manifest(manifest: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def default_manifest_name(manifest: dict) -> str:
    """A collision-resistant file name for a manifest."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(manifest["created_unix"]))
    digest = hashlib.sha256(
        json.dumps(manifest, sort_keys=True, default=str).encode()
    ).hexdigest()[:8]
    return f"run-{stamp}-{digest}.json"
