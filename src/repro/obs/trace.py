"""Chrome trace-event export: open a simulation in Perfetto.

Events follow the Trace Event Format consumed by ``chrome://tracing``
and https://ui.perfetto.dev: a JSON object whose ``traceEvents`` array
holds complete slices (``ph: "X"``), instants (``ph: "i"``), and
metadata records (``ph: "M"``) naming the tracks.  One simulated cycle
maps to one microsecond of trace time, so Perfetto's time axis reads
directly in kilocycles.

Track layout:

* pid 0 ("SM warps"): one thread per warp, slices for every issued
  instruction (category ``issue``) and every attributed stall segment
  (category ``stall``, named by cause), an instant at warp completion;
* pid 1 ("CTAs"): one slice per CTA from launch to retire;
* pid 2 ("DRAM"): one slice per DRAM transfer (its bus-busy interval).

The buffer is bounded: past ``max_events`` further events are counted
as dropped rather than recorded, so tracing a paper-scale run degrades
instead of exhausting memory.
"""

from __future__ import annotations

import json
from pathlib import Path

TRACE_SCHEMA = "repro.obs.trace/1"

#: Schema of the merged chip-scope timeline emitted by
#: :meth:`repro.obs.chip.ChipCollector.trace_payload`: one process per
#: SM (warp tracks), one process of DRAM-channel bus-busy tracks, and a
#: dispatcher process with a CTA-Gantt track per SM.
TRACE_CHIP_SCHEMA = "repro.obs.trace/2"

#: Perfetto process ids used by the collector's track layout.
PID_WARPS = 0
PID_CTAS = 1
PID_DRAM = 2

_KNOWN_PHASES = frozenset({"X", "i", "M"})


class TraceBuffer:
    """Bounded in-memory buffer of Chrome trace events."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0

    def _add(self, ev: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ev)

    # -- event constructors ----------------------------------------------
    def slice(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        args: dict | None = None,
    ) -> None:
        ev = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self._add(ev)

    def instant(self, pid: int, tid: int, name: str, cat: str, ts: float) -> None:
        self._add({"name": name, "cat": cat, "ph": "i", "ts": ts, "s": "t",
                   "pid": pid, "tid": tid})

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self._add({"name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
                   "tid": tid, "args": {"name": name}})

    def process_name(self, pid: int, name: str) -> None:
        self._add({"name": "process_name", "ph": "M", "ts": 0, "pid": pid,
                   "tid": 0, "args": {"name": name}})

    # -- export -----------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "clock": "1 simulated cycle = 1 us of trace time",
                "droppedEvents": self.dropped,
            },
        }


def write_trace(payload: dict | TraceBuffer, path: str | Path) -> None:
    """Write a trace payload (or buffer) as Chrome trace-event JSON."""
    if isinstance(payload, TraceBuffer):
        payload = payload.to_payload()
    Path(path).write_text(json.dumps(payload))


def validate_trace(payload: dict) -> list[str]:
    """Structural checks against the Chrome trace-event format.

    Returns a list of problems (empty = valid).  Used by the test suite
    and by ``repro trace`` to guarantee emitted files load in Perfetto.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a JSON array"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i}: missing integer {key}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as e:
        problems.append(f"payload not JSON-serialisable: {e}")
    return problems
