"""Chip-scope observability: merged timelines, chip metrics, CTA lifetimes.

The per-SM :class:`~repro.obs.collector.Collector` sees one SM at a
time, but the phenomena a chip run exists to expose -- DRAM-channel
contention between SMs, dispatcher imbalance, whole-chip IPC dips --
only show up *across* components.  :class:`ChipCollector` owns one
per-SM collector per SM plus instrumentation for the two shared seams:

* a per-channel DRAM window sampler riding the
  ``observer(busy_start, busy_end, nbytes)`` hook (for shared DRAM via
  :attr:`~repro.memory.dram.DRAMSystem.channel_observer`, which adds
  the channel index; for partitioned DRAM each SM's private channel is
  channel ``i``), and
* a :class:`~repro.chip.dispatch.CTADispatcher` tap recording every
  CTA's dispatch -> retire lifetime, the dispatch queue depth, and
  per-SM resident-CTA occupancy over time.

Three exports come out of one instrumented run:

* :meth:`ChipCollector.trace_payload` -- one merged Chrome-trace /
  Perfetto timeline (schema :data:`~repro.obs.trace.TRACE_CHIP_SCHEMA`,
  ``repro.obs.trace/2``): a process per SM with its warp tracks, a
  "DRAM channels" process with one bus-busy track per channel, and a
  "CTA dispatcher" process with a CTA-Gantt track per SM.  The bounded
  buffer of the single-SM tracer is preserved chip-wide: the event
  budget is split into one share per SM plus one share for the chip
  tracks, so the merged payload never exceeds ``max_trace_events``.
* :meth:`ChipCollector.chipmetrics_payload` -- chip interval metrics
  (schema :data:`CHIPMETRICS_SCHEMA`, ``repro.obs.chipmetrics/1``):
  aggregate and per-SM IPC, per-channel utilisation and bytes,
  resident-CTA occupancy, and dispatch queue depth per window.
* :meth:`ChipCollector.report` -- the chip-wide stall-attribution
  roll-up, extending the single-SM conservation invariant to the chip:
  ``sum_sm(issue + stalls) == sum_sm(warps) x chip_cycles`` with exact
  (dyadic-rational / ``fsum``) equality, verified by
  :meth:`ChipCollector.conservation_errors`.

Like the single-SM collector, everything here only *observes* event
times the simulator already computed -- attaching a ``ChipCollector``
never changes a cycle count (asserted by the chip neutrality test).
"""

from __future__ import annotations

import math

from repro.obs.collector import STALL_CAUSES, Collector
from repro.obs.metrics import IntervalSampler
from repro.obs.trace import PID_WARPS, TRACE_CHIP_SCHEMA, TraceBuffer

CHIPMETRICS_SCHEMA = "repro.obs.chipmetrics/1"
CHIP_PROFILE_SCHEMA = "repro.obs.chip_profile/1"


class ChipCollector:
    """Chip-wide observability sink for :func:`repro.chip.simulate_chip`.

    Args:
        num_sms: SMs on the instrumented chip (one per-SM
            :class:`~repro.obs.collector.Collector` is created).
        num_channels: DRAM channels to track.  Shared DRAM: the
            system's channel count; partitioned DRAM: ``num_sms``
            (channel ``i`` is SM ``i``'s private slice).
        metrics_window: Cycle width of interval samples; 0 disables the
            chip metrics time series (and the per-SM ones).
        trace: Record the merged Chrome-trace timeline.
        max_trace_events: Chip-wide bound on buffered trace events,
            split into ``num_sms + 1`` equal shares.
        dram_partitioned: Recorded in payloads so a reader knows what
            the channels mean.
    """

    enabled = True

    def __init__(
        self,
        num_sms: int,
        num_channels: int,
        *,
        metrics_window: int = 0,
        trace: bool = False,
        max_trace_events: int = 1_000_000,
        dram_partitioned: bool = False,
    ) -> None:
        if num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.num_sms = num_sms
        self.num_channels = num_channels
        self.metrics_window = metrics_window
        self.dram_partitioned = dram_partitioned
        self.total_cycles: float | None = None
        #: Merged-trace process ids: pids 0..num_sms-1 are the SMs.
        self.pid_channels = num_sms
        self.pid_dispatcher = num_sms + 1
        share = max(1, max_trace_events // (num_sms + 1))
        self.collectors = [
            Collector(
                metrics_window=metrics_window,
                trace=trace,
                max_trace_events=share,
            )
            for _ in range(num_sms)
        ]
        self._trace = TraceBuffer(share) if trace else None
        if self._trace is not None:
            self._trace.process_name(self.pid_channels, "DRAM channels")
            for c in range(num_channels):
                self._trace.thread_name(self.pid_channels, c, f"ch{c}")
            self._trace.process_name(self.pid_dispatcher, "CTA dispatcher")
            for i in range(num_sms):
                self._trace.thread_name(self.pid_dispatcher, i, f"SM {i}")
        # -- per-channel window sampling + whole-run totals
        self._channel_samplers = (
            [IntervalSampler(metrics_window) for _ in range(num_channels)]
            if metrics_window
            else None
        )
        self.channel_bytes = [0] * num_channels
        self.channel_busy = [0.0] * num_channels
        self.channel_accesses = [0] * num_channels
        # -- dispatcher tap
        #: cta index -> {"sm", "dispatch", "retire"} (retire None while live).
        self.cta_lifetimes: dict[int, dict] = {}
        self._grid_size: int | None = None
        self._dispatch_times: list[float] = []
        self._cta_events: list[list[tuple[float, int]]] = [[] for _ in range(num_sms)]
        self._cta_samplers: list[IntervalSampler] | None = None
        self._queue_sampler: IntervalSampler | None = None

    # -- simulator hooks --------------------------------------------------
    def dram_channel_transfer(
        self, channel: int, start: float, end: float, nbytes: int
    ) -> None:
        """Observer for one DRAM channel's bus-busy interval.

        Shared DRAM wires this as
        :attr:`~repro.memory.dram.DRAMSystem.channel_observer`;
        partitioned DRAM calls it with ``channel == sm_index`` alongside
        the per-SM collector's own hook.
        """
        self.channel_bytes[channel] += nbytes
        self.channel_busy[channel] += end - start
        self.channel_accesses[channel] += 1
        if self._channel_samplers is not None:
            self._channel_samplers[channel].add_dram_transfer(start, end, nbytes)
        if self._trace is not None:
            self._trace.slice(
                self.pid_channels, channel, f"{nbytes}B", "dram", start, end - start
            )

    def cta_dispatch(
        self, cta_index: int, sm_index: int, time: float, remaining: int
    ) -> None:
        """The dispatcher handed ``cta_index`` to SM ``sm_index``.

        In this model dispatch and launch coincide (the scheduler pulls
        a CTA exactly when a residency slot frees); ``remaining`` is the
        grid's undispatched count after this hand-out.
        """
        if self._grid_size is None:
            self._grid_size = remaining + 1
        self.cta_lifetimes[cta_index] = {
            "sm": sm_index,
            "dispatch": time,
            "retire": None,
        }
        self._dispatch_times.append(time)
        self._cta_events[sm_index].append((time, 1))

    def cta_retire(self, cta_index: int, sm_index: int, time: float) -> None:
        """SM ``sm_index`` retired ``cta_index``; closes its Gantt slice."""
        self._cta_events[sm_index].append((time, -1))
        rec = self.cta_lifetimes.get(cta_index)
        if rec is None:
            return
        rec["retire"] = time
        if self._trace is not None:
            self._trace.slice(
                self.pid_dispatcher,
                sm_index,
                f"cta{cta_index}",
                "cta",
                rec["dispatch"],
                time - rec["dispatch"],
            )

    def finish(self, total_cycles: float) -> None:
        """Close every timeline at the chip makespan.

        Per-SM collectors are usually finished by ``simulate_chip``
        already (each at the same chip makespan); any that were not are
        finished here, never twice.
        """
        self.total_cycles = total_cycles
        for col in self.collectors:
            if col.total_cycles is None:
                col.finish(total_cycles)
        if not self.metrics_window:
            return
        # Dispatch/retire events arrive out of time order (a barrier
        # release retires a CTA at a future cycle while earlier events
        # are still being popped), so integrate once, sorted, at the end
        # -- the same strategy as the per-SM occupancy integral.
        self._cta_samplers = []
        for events in self._cta_events:
            sampler = IntervalSampler(self.metrics_window)
            occ, last_t = 0, 0.0
            for time, delta in sorted(events):
                sampler.add_occupancy(last_t, min(time, total_cycles), occ)
                occ += delta
                last_t = time
            sampler.add_occupancy(last_t, total_cycles, occ)
            self._cta_samplers.append(sampler)
        # Queue depth is monotone by construction: the grid starts full
        # and each dispatch removes one CTA at its dispatch time.
        self._queue_sampler = IntervalSampler(self.metrics_window)
        depth = self._grid_size or 0
        last_t = 0.0
        for time in sorted(self._dispatch_times):
            self._queue_sampler.add_occupancy(last_t, min(time, total_cycles), depth)
            depth -= 1
            last_t = time
        self._queue_sampler.add_occupancy(last_t, total_cycles, depth)

    # -- stall-attribution roll-up ----------------------------------------
    @property
    def warps(self) -> int:
        """Warp instances observed chip-wide."""
        return sum(len(col.warps) for col in self.collectors)

    @property
    def issue_cycles(self) -> int:
        return sum(col.issue_cycles for col in self.collectors)

    @property
    def ctas_launched(self) -> int:
        return sum(col.ctas_launched for col in self.collectors)

    def stall_totals(self) -> dict[str, float]:
        """Attributed cycles per cause, summed over every SM's warps."""
        totals = dict.fromkeys(STALL_CAUSES, 0.0)
        for col in self.collectors:
            for cause, cycles in col.stall_totals().items():
                totals[cause] += cycles
        return totals

    def conservation_errors(self) -> list[str]:
        """Violations of the chip conservation invariant (empty = ok).

        Checks every SM's per-warp identity, then the chip roll-up:
        ``sum_sm(issue + stalls) == sum_sm(warps) x chip_cycles``.  All
        quantities are dyadic-rational cycle stamps summed with
        ``fsum``, so both sides are exact and compared with ``==``.
        """
        if self.total_cycles is None:
            return ["finish() was never called"]
        errors = []
        for i, col in enumerate(self.collectors):
            errors.extend(f"sm{i}: {e}" for e in col.conservation_errors())
        attributed = math.fsum(
            [float(self.issue_cycles)]
            + [
                math.fsum(ws.stalls.values())
                for col in self.collectors
                for ws in col.warps.values()
            ]
        )
        expected = self.warps * self.total_cycles
        if attributed != expected:
            errors.append(
                f"chip: attributed {attributed} != {expected} "
                f"== {self.warps} warps x {self.total_cycles} cycles"
            )
        return errors

    # -- dispatcher / channel summaries -----------------------------------
    def dispatcher_summary(self) -> dict:
        """CTA-lifetime and assignment statistics (run-manifest shape)."""
        lifetimes = [
            rec["retire"] - rec["dispatch"]
            for rec in self.cta_lifetimes.values()
            if rec["retire"] is not None
        ]
        ctas_per_sm = [0] * self.num_sms
        for rec in self.cta_lifetimes.values():
            ctas_per_sm[rec["sm"]] += 1
        return {
            "ctas_dispatched": len(self.cta_lifetimes),
            "ctas_retired": len(lifetimes),
            "ctas_per_sm": ctas_per_sm,
            "mean_lifetime_cycles": (
                math.fsum(lifetimes) / len(lifetimes) if lifetimes else 0.0
            ),
            "max_lifetime_cycles": max(lifetimes, default=0.0),
        }

    def channel_summary(self) -> dict:
        """Per-channel traffic and utilisation (run-manifest shape)."""
        total = self.total_cycles
        return {
            "partitioned": self.dram_partitioned,
            "bytes": list(self.channel_bytes),
            "busy_cycles": list(self.channel_busy),
            "accesses": list(self.channel_accesses),
            "utilisation": [
                min(busy / total, 1.0) if total else 0.0
                for busy in self.channel_busy
            ],
        }

    def report(self) -> dict:
        """JSON-compatible chip profile (the chip ``profile`` payload)."""
        return {
            "schema": CHIP_PROFILE_SCHEMA,
            "num_sms": self.num_sms,
            "total_cycles": self.total_cycles,
            "warps": self.warps,
            "ctas": self.ctas_launched,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": self.stall_totals(),
            "per_sm": [col.report() for col in self.collectors],
            "channels": self.channel_summary(),
            "dispatcher": self.dispatcher_summary(),
            "conservation_ok": not self.conservation_errors(),
        }

    # -- chip interval metrics --------------------------------------------
    def chipmetrics_payload(self) -> dict | None:
        """The ``repro.obs.chipmetrics/1`` time series, or None.

        Requires ``metrics_window`` and a finished run.  Every array
        field is positional: ``per_sm_*`` lists have ``num_sms``
        entries, ``channel_*`` lists ``num_channels``.
        """
        if not self.metrics_window or self.total_cycles is None:
            return None
        total = self.total_cycles
        per_sm = [col.sampler.samples(total) for col in self.collectors]
        channels = [s.samples(total) for s in self._channel_samplers]
        ctas = [s.samples(total) for s in self._cta_samplers]
        queue = self._queue_sampler.samples(total)
        samples = []
        for j, q in enumerate(queue):
            span = q["end"] - q["start"]
            instructions = sum(p[j]["instructions"] for p in per_sm)
            samples.append(
                {
                    "index": j,
                    "start": q["start"],
                    "end": q["end"],
                    "instructions": instructions,
                    "ipc": instructions / span if span else 0.0,
                    "per_sm_ipc": [p[j]["ipc"] for p in per_sm],
                    "resident_ctas": math.fsum(c[j]["occupancy"] for c in ctas),
                    "per_sm_resident_ctas": [c[j]["occupancy"] for c in ctas],
                    "queue_depth": q["occupancy"],
                    "channel_utilisation": [
                        c[j]["dram_utilisation"] for c in channels
                    ],
                    "channel_bytes": [c[j]["dram_bytes"] for c in channels],
                    "dram_bytes": math.fsum(c[j]["dram_bytes"] for c in channels),
                }
            )
        return {
            "schema": CHIPMETRICS_SCHEMA,
            "window": self.metrics_window,
            "total_cycles": total,
            "num_sms": self.num_sms,
            "dram_channels": self.num_channels,
            "dram_partitioned": self.dram_partitioned,
            "samples": samples,
        }

    # -- merged trace ------------------------------------------------------
    def trace_payload(self) -> dict | None:
        """The merged ``repro.obs.trace/2`` timeline, or None.

        Per-SM warp events are remapped to process ``i`` (their SM); the
        single-SM collectors' private CTA and DRAM tracks are dropped in
        favour of the chip-level dispatcher-Gantt and channel tracks,
        which carry the same information with chip-wide identity.
        """
        if self._trace is None:
            return None
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": i,
                "tid": 0,
                "args": {"name": f"SM {i} warps"},
            }
            for i in range(self.num_sms)
        ]
        dropped = self._trace.dropped
        for i, col in enumerate(self.collectors):
            buf = col.trace
            dropped += buf.dropped
            for ev in buf.events:
                if ev["pid"] != PID_WARPS:
                    continue
                if ev["ph"] == "M" and ev["name"] == "process_name":
                    continue
                remapped = dict(ev)
                remapped["pid"] = i
                events.append(remapped)
        events.extend(self._trace.events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_CHIP_SCHEMA,
                "clock": "1 simulated cycle = 1 us of trace time",
                "droppedEvents": dropped,
                "num_sms": self.num_sms,
                "dram_channels": self.num_channels,
                "dram_partitioned": self.dram_partitioned,
            },
        }

    # -- construction helpers ----------------------------------------------
    @classmethod
    def for_chip(
        cls,
        chip,
        *,
        metrics_window: int = 0,
        trace: bool = False,
        max_trace_events: int = 1_000_000,
    ) -> "ChipCollector":
        """A collector shaped for one :class:`~repro.chip.ChipConfig`.

        Partitioned DRAM has one private channel per SM, so the channel
        axis is ``num_sms``; shared DRAM uses the system's channel
        count.
        """
        channels = chip.num_sms if chip.dram_partitioned else chip.dram_channels
        return cls(
            chip.num_sms,
            channels,
            metrics_window=metrics_window,
            trace=trace,
            max_trace_events=max_trace_events,
            dram_partitioned=chip.dram_partitioned,
        )


def validate_chipmetrics(payload: dict) -> list[str]:
    """Structural checks for a ``repro.obs.chipmetrics/1`` payload.

    Returns a list of problems (empty = valid).  Used by the test suite
    and by CI's chip-smoke job to validate emitted artifacts.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    if payload.get("schema") != CHIPMETRICS_SCHEMA:
        problems.append(f"schema must be {CHIPMETRICS_SCHEMA!r}")
    num_sms = payload.get("num_sms")
    channels = payload.get("dram_channels")
    if not isinstance(num_sms, int) or num_sms < 1:
        problems.append("num_sms must be a positive integer")
    if not isinstance(channels, int) or channels < 1:
        problems.append("dram_channels must be a positive integer")
    window = payload.get("window")
    if not isinstance(window, int) or window <= 0:
        problems.append("window must be a positive cycle count")
    samples = payload.get("samples")
    if not isinstance(samples, list):
        return problems + ["samples must be a JSON array"]
    per_sm_fields = ("per_sm_ipc", "per_sm_resident_ctas")
    channel_fields = ("channel_utilisation", "channel_bytes")
    scalar_fields = (
        "index", "start", "end", "instructions", "ipc",
        "resident_ctas", "queue_depth", "dram_bytes",
    )
    for j, s in enumerate(samples):
        if not isinstance(s, dict):
            problems.append(f"sample {j}: not an object")
            continue
        for key in scalar_fields:
            if not isinstance(s.get(key), (int, float)):
                problems.append(f"sample {j}: missing numeric {key}")
        for key, n in (
            *((f, num_sms) for f in per_sm_fields),
            *((f, channels) for f in channel_fields),
        ):
            value = s.get(key)
            if not isinstance(value, list) or (
                isinstance(n, int) and len(value) != n
            ):
                problems.append(f"sample {j}: {key} must be a list of length {n}")
        for u in s.get("channel_utilisation") or []:
            if not isinstance(u, (int, float)) or not 0.0 <= u <= 1.0:
                problems.append(f"sample {j}: channel utilisation {u!r} out of range")
                break
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems
