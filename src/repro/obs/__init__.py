"""Simulator observability: stall attribution, interval metrics, tracing.

The timing simulator (:mod:`repro.sm.simulator`) normally emits only
end-of-run aggregates.  This package adds the lens the paper's own
analysis uses -- *where do the cycles go?* -- without perturbing the
model:

* :class:`~repro.obs.collector.Collector` charges every cycle a warp is
  not issuing to exactly one stall cause (RAW hazard, bank conflict,
  DRAM latency, issue-port contention, barrier, deschedule,
  not-resident), with a conservation invariant: per-warp attributed
  cycles + issue cycles == total simulated cycles.
* :class:`~repro.obs.metrics.IntervalSampler` produces a windowed time
  series of IPC, occupancy, cache hit rate, and DRAM utilisation.
* :class:`~repro.obs.trace.TraceBuffer` records warp/CTA events in
  Chrome trace-event JSON, so a run opens directly in Perfetto or
  ``chrome://tracing``.
* :class:`~repro.obs.chip.ChipCollector` lifts all of the above to chip
  scope: per-SM collectors merged into one Perfetto timeline, DRAM
  channels and the CTA dispatcher sampled as first-class tracks, and
  the conservation invariant rolled up across SMs.
* :mod:`repro.obs.manifest` builds run manifests (config fingerprint,
  format versions, cache statistics, per-phase wall-clock) for the
  experiment layer.
* :class:`~repro.obs.spans.SpanRecorder` lifts observability to fleet
  scope: every executor job emits a submit -> queued -> running ->
  done/cache-hit span with worker id, config fingerprint, and cache
  disposition, summarised per suite and exportable as a Perfetto
  timeline of the whole sweep.
* :mod:`repro.obs.compare` is the cross-run diff engine: align two
  runs (metrics, profiles, chip payloads, traces, manifests) and
  attribute the cycle delta by stall cause, SM, channel, and CTA --
  with the conservation invariant re-verified on both sides.

Instrumentation is strictly opt-in: ``simulate(...)`` defaults to the
:data:`NULL_COLLECTOR`, and the hot loop guards every hook behind a
single ``is not None`` check, so uninstrumented runs pay near-zero cost.
"""

from repro.obs.collector import (
    CAUSE_BANK_CONFLICT,
    CAUSE_BARRIER,
    CAUSE_DESCHEDULE,
    CAUSE_ISSUE_PORT,
    CAUSE_MEMORY,
    CAUSE_MSHR_FULL,
    CAUSE_NOT_RESIDENT,
    CAUSE_RAW,
    NULL_COLLECTOR,
    STALL_CAUSES,
    Collector,
    NullCollector,
)
from repro.obs.chip import (
    CHIP_PROFILE_SCHEMA,
    CHIPMETRICS_SCHEMA,
    ChipCollector,
    validate_chipmetrics,
)
from repro.obs.compare import (
    DIFF_SCHEMA,
    TRACE_PIVOT_SCHEMA,
    build_diff,
    cta_slowdowns,
    diff_results,
    format_diff,
    pivot_traces,
    recheck_conservation,
    validate_diff,
)
from repro.obs.metrics import METRICS_SCHEMA, IntervalSampler
from repro.obs.spans import (
    SPANS_SCHEMA,
    SPANS_TRACE_SCHEMA,
    JobSpan,
    SpanRecorder,
    validate_spans,
)
from repro.obs.trace import (
    TRACE_CHIP_SCHEMA,
    TRACE_SCHEMA,
    TraceBuffer,
    validate_trace,
    write_trace,
)

__all__ = [
    "CAUSE_BANK_CONFLICT",
    "CAUSE_BARRIER",
    "CAUSE_DESCHEDULE",
    "CAUSE_ISSUE_PORT",
    "CAUSE_MEMORY",
    "CAUSE_MSHR_FULL",
    "CAUSE_NOT_RESIDENT",
    "CAUSE_RAW",
    "CHIP_PROFILE_SCHEMA",
    "CHIPMETRICS_SCHEMA",
    "DIFF_SCHEMA",
    "METRICS_SCHEMA",
    "NULL_COLLECTOR",
    "SPANS_SCHEMA",
    "SPANS_TRACE_SCHEMA",
    "STALL_CAUSES",
    "TRACE_CHIP_SCHEMA",
    "TRACE_PIVOT_SCHEMA",
    "TRACE_SCHEMA",
    "ChipCollector",
    "Collector",
    "IntervalSampler",
    "JobSpan",
    "NullCollector",
    "SpanRecorder",
    "TraceBuffer",
    "build_diff",
    "cta_slowdowns",
    "diff_results",
    "format_diff",
    "pivot_traces",
    "recheck_conservation",
    "validate_chipmetrics",
    "validate_diff",
    "validate_spans",
    "validate_trace",
    "write_trace",
]
