"""Suite-level wall-clock benchmark.

Runs the same experiment sequence as ``python -m repro suite`` -- single
job, no disk cache, one fresh in-memory :class:`Runner` -- and times
each experiment plus the total.  This is the number the acceptance
criterion "suite wall-clock, single job, cache cold" refers to, and the
headline entry (``suite.<scale>``) of a ``BENCH_*.json`` payload.
"""

from __future__ import annotations

import time

from repro.bench.report import BenchEntry


def run_suite(scale: str, only: tuple[str, ...] | None = None) -> list[BenchEntry]:
    """Time every suite experiment at ``scale`` with a cold runner.

    Args:
        scale: Workload scale ("tiny", "small", "paper").
        only: Optional subset of experiment ids (default: the full
            ``SUITE_ORDER`` of :mod:`repro.cli`).

    Returns:
        One ``suite.exp.<id>`` entry per experiment (run once; suite
        experiments are too slow to repeat) and one aggregate
        ``suite.<scale>`` entry whose time is the sum.
    """
    from repro.cli import SUITE_ORDER, _experiment_registry
    from repro.experiments.executor import Executor
    from repro.experiments.runner import Runner

    registry = _experiment_registry(scale)
    ids = tuple(only) if only else SUITE_ORDER
    unknown = [i for i in ids if i not in registry]
    if unknown:
        raise ValueError(f"unknown suite experiment(s): {', '.join(unknown)}")
    runner = Runner(scale)
    executor = Executor(runner, jobs=1, progress=False)
    entries: list[BenchEntry] = []
    total = 0.0
    for exp_id in ids:
        t0 = time.perf_counter()
        registry[exp_id](executor=executor)
        dt = time.perf_counter() - t0
        total += dt
        entries.append(
            BenchEntry(id=f"suite.exp.{exp_id}", seconds=dt, runs=[dt])
        )
    entries.append(
        BenchEntry(
            id=f"suite.{scale}",
            seconds=total,
            runs=[total],
            meta={
                "experiments": len(ids),
                "simulations": len(runner.sim_keys()),
            },
        )
    )
    return entries
