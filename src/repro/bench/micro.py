"""Deterministic microbenchmarks of the simulator's component models.

Each benchmark exercises one hot path -- the bank-conflict models, the
coalescer, the data cache, or a full :func:`repro.sm.simulate` call --
on a fixed synthetic or compiled workload, so timing differences between
two revisions reflect code changes, not input drift.  The returned
metadata pins deterministic facts (op counts, simulated cycles) that
must agree between payloads of behaviour-identical revisions.
"""

from __future__ import annotations

from repro.bench.report import BenchEntry, timed

#: Kernels covered by the per-kernel ``sim.*`` benchmarks: one regular
#: compute kernel, one shared-memory-heavy, one spill-heavy at its paper
#: budget, and one irregular/divergent.
SIM_KERNELS = ("vectoradd", "matrixmul", "needle", "bfs")

#: Iterations chosen so each micro entry runs for tens of milliseconds.
_BANK_ROUNDS = 20
_COALESCE_ROUNDS = 200
_CACHE_ROUNDS = 5


def _bank_workload(scale: str):
    """A mixed compiled-op stream plus per-op line segments.

    Built from the matrixmul kernel (ALU + shared + global mix); the
    compile is deterministic, so every revision benches the same ops.
    """
    from repro.experiments.runner import Runner
    from repro.memory.coalescer import coalesce_lines

    ck = Runner(scale).compiled("matrixmul")
    ops = [op for cta in ck.ctas[:2] for warp in cta.warps for op in warp.ops]
    segments = [
        coalesce_lines(op.addrs, 128) if (op.op.is_memory and op.addrs) else None
        for op in ops
    ]
    return ops, segments


def bench_banks(scale: str, repeats: int) -> list[BenchEntry]:
    """Time the partitioned and unified bank-conflict models."""
    from repro.core import partitioned_baseline
    from repro.core.allocator import allocate_unified
    from repro.core.partition import KB
    from repro.isa.opcodes import MemSpace
    from repro.memory.banks import make_bank_model

    ops, segments = _bank_workload(scale)
    part = partitioned_baseline()
    uni = allocate_unified(
        384 * KB, regs_per_thread=21, threads_per_cta=256, smem_bytes_per_cta=2048
    ).partition

    def run(partition):
        def body():
            banks = make_bank_model(partition)
            for _ in range(_BANK_ROUNDS):
                for op, segs in zip(ops, segments):
                    if op.op.space is MemSpace.SHARED:
                        banks.access(op, shared_base=0)
                    elif op.op.is_memory:
                        banks.access(op, segments=segs)
                    else:
                        banks.access(op)
            return {"accesses": _BANK_ROUNDS * len(ops),
                    "conflict_total": banks.histogram.total}

        return body

    return [
        timed("micro.banks.partitioned", run(part), repeats),
        timed("micro.banks.unified", run(uni), repeats),
    ]


def bench_coalescer(scale: str, repeats: int) -> list[BenchEntry]:
    """Time line/sector coalescing over synthetic warp address patterns."""
    from repro.memory.coalescer import coalesce_lines, coalesce_sectors

    # Unit-stride, strided, and scattered warps -- the three shapes the
    # suite's kernels produce.
    patterns = [
        tuple(4096 + 4 * lane for lane in range(32)),
        tuple(4096 + 64 * lane for lane in range(32)),
        tuple((4096 + 977 * lane * lane) % (1 << 20) for lane in range(32)),
    ]

    def lines():
        n = 0
        for _ in range(_COALESCE_ROUNDS):
            for addrs in patterns:
                n += len(coalesce_lines(addrs))
        return {"segments": n}

    def sectors():
        n = 0
        for _ in range(_COALESCE_ROUNDS):
            for addrs in patterns:
                n += len(coalesce_sectors(addrs))
        return {"sectors": n}

    return [
        timed("micro.coalescer.lines", lines, repeats),
        timed("micro.coalescer.sectors", sectors, repeats),
    ]


def bench_cache(scale: str, repeats: int) -> list[BenchEntry]:
    """Time the data cache on a mixed hit/miss/evict line stream."""
    from repro.memory.cache import DataCache

    # 4 of 5 accesses hit a 256-line hot set (fits the 512-line cache);
    # the rest scan cold lines, forcing misses and LRU evictions.
    lines = [
        (i % 256) * 128 if i % 5 else ((i * 977) % 4096 + 4096) * 128
        for i in range(8192)
    ]

    def body():
        cache = DataCache(64 * 1024)
        hits = 0
        for _ in range(_CACHE_ROUNDS):
            for la in lines:
                if cache.read_line(la):
                    hits += 1
            for la in lines[::7]:
                cache.write_line(la)
        return {"reads": _CACHE_ROUNDS * len(lines), "read_hits": hits}

    return [timed("micro.cache.readwrite", body, repeats)]


def bench_simulate(scale: str, repeats: int) -> list[BenchEntry]:
    """Time full ``simulate()`` calls per kernel under two designs.

    Each entry's first run is cold (pays any per-kernel precomputation);
    subsequent runs re-simulate the same :class:`CompiledKernel`, which
    is the common case inside a capacity sweep.  ``seconds`` is the
    best run; the ``runs`` list keeps the cold time visible.
    """
    from dataclasses import replace

    from repro.core import partitioned_baseline
    from repro.experiments.runner import Runner
    from repro.sm.simulator import simulate

    rn = Runner(scale)
    baseline = partitioned_baseline()
    # The un-suffixed entries run whatever engine the default SMConfig
    # selects (columnar since the replay engine landed); the explicit
    # ``.columnar`` / ``.event`` pair pins each engine so the replayer's
    # advantage -- and any event-loop regression -- stays measured even
    # if the default moves again.
    col_cfg = replace(rn.config, engine="columnar")
    ev_cfg = replace(rn.config, engine="event")
    entries: list[BenchEntry] = []
    for name in SIM_KERNELS:
        ck = rn.compiled(name)
        # Defeat the tiered warm-up: the seam routes a kernel's first
        # uninstrumented sim to the event core, and the ``.columnar``
        # entry must time the replayer even at --repeats 1.
        ck._plan_cache[("colwarm", col_cfg.cache_line_bytes)] = True

        def run_base(ck=ck):
            r = simulate(ck, baseline, rn.config)
            return {"cycles": r.cycles, "instructions": r.instructions}

        entries.append(timed(f"sim.{name}.baseline", run_base, repeats))

        def run_col(ck=ck):
            r = simulate(ck, baseline, col_cfg)
            return {"cycles": r.cycles, "instructions": r.instructions}

        entries.append(timed(f"sim.{name}.columnar", run_col, repeats))

        def run_ev(ck=ck):
            r = simulate(ck, baseline, ev_cfg)
            return {"cycles": r.cycles, "instructions": r.instructions}

        entries.append(timed(f"sim.{name}.event", run_ev, repeats))
        try:
            uni = rn.allocation(name).partition
        except Exception:
            continue

        def run_uni(ck=ck, uni=uni):
            r = simulate(ck, uni, rn.config)
            return {"cycles": r.cycles, "instructions": r.instructions}

        entries.append(timed(f"sim.{name}.unified384", run_uni, repeats))

    # One non-blocking point: the MSHR + banked-DRAM hot-loop arm has its
    # own cost profile (per-segment MSHR lookups, row decode), so time it
    # separately from the blocking baseline it must not slow down.
    nb_cfg = replace(
        rn.config, mshr_entries=16, dram_banks=8, dram_row_hit_latency=160
    )
    ck = rn.compiled("matrixmul")

    def run_nonblocking(ck=ck):
        r = simulate(ck, baseline, nb_cfg)
        return {"cycles": r.cycles, "instructions": r.instructions}

    entries.append(timed("sim.matrixmul.nonblocking", run_nonblocking, repeats))

    # Instrumented per-engine pair: the replay path drives the full
    # observability stack (collector + stall attribution), so its
    # speedup over the instrumented event engine -- the number
    # docs/performance.md quotes -- stays measured.  Non-blocking
    # banked config: the hardest attribution arm (bank/MSHR splitting).
    def run_profiled(cfg):
        def body():
            from repro.obs import Collector

            col = Collector()
            r = simulate(ck, baseline, cfg, collector=col)
            assert col.conservation_errors() == []
            return {"cycles": r.cycles, "instructions": r.instructions,
                    "warps": len(col.warps)}

        return body

    nb_col = replace(nb_cfg, engine="columnar")
    nb_ev = replace(nb_cfg, engine="event")
    entries.append(
        timed("sim.matrixmul.columnar.profiled", run_profiled(nb_col), repeats)
    )
    entries.append(
        timed("sim.matrixmul.event.profiled", run_profiled(nb_ev), repeats)
    )
    return entries


def run_micro(scale: str, repeats: int) -> list[BenchEntry]:
    """Run every microbenchmark group at ``scale``."""
    entries: list[BenchEntry] = []
    entries += bench_coalescer(scale, repeats)
    entries += bench_cache(scale, repeats)
    entries += bench_banks(scale, repeats)
    entries += bench_simulate(scale, repeats)
    return entries
