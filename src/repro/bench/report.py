"""``BENCH_*.json`` payloads: schema, validation, and comparison.

One payload records one benchmark run of this working tree: a list of
``(id, seconds, runs, meta)`` entries under the ``repro.bench/1``
schema.  Comparison pairs two payloads by benchmark id and flags every
entry whose best time regressed past a multiplicative threshold -- the
contract the CI ``bench-smoke`` job and the committed before/after pair
at the repo root rely on (see ``docs/performance.md``).
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path

import repro

#: Payload schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.bench/1"

#: Fields every benchmark entry must carry.
_ENTRY_REQUIRED = ("id", "seconds", "runs")


@dataclass(slots=True)
class BenchEntry:
    """One timed benchmark.

    Attributes:
        id: Stable dotted identifier (e.g. ``micro.banks.partitioned``,
            ``sim.matrixmul.baseline``, ``suite.small``).
        seconds: Best (minimum) wall-clock time across ``runs``.
        runs: Every individual run time, in execution order.  The first
            run of a ``sim.*`` entry is the cold one (it pays plan
            precomputation); later runs are warm.
        meta: Deterministic facts about the workload (op counts,
            simulated cycles) -- machine-independent, so two payloads
            for the same revision must agree on them.
    """

    id: str
    seconds: float
    runs: list[float]
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "seconds": self.seconds,
            "runs": self.runs,
            "meta": self.meta,
        }


def timed(bench_id: str, fn, repeats: int = 3, meta: dict | None = None) -> BenchEntry:
    """Run ``fn()`` ``repeats`` times and keep the best wall-clock time.

    Args:
        bench_id: Entry identifier.
        fn: Zero-argument callable; its return value, if a dict, is
            merged into the entry metadata (last run wins), letting a
            benchmark report deterministic facts such as cycle counts.
        repeats: How many times to run ``fn`` (minimum 1).
        meta: Extra metadata stored on the entry.

    Returns:
        The timed entry with ``seconds = min(runs)``.
    """
    import gc
    import time

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    merged = dict(meta or {})
    runs: list[float] = []
    # Collector pauses land on whichever run they please, so they are
    # pure noise for a min-of-N estimator; park the collector while the
    # clock runs (standard pyperf practice) and sweep between runs.
    was_enabled = gc.isenabled()
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            out = fn()
            runs.append(time.perf_counter() - t0)
        finally:
            if was_enabled:
                gc.enable()
        if isinstance(out, dict):
            merged.update(out)
    return BenchEntry(id=bench_id, seconds=min(runs), runs=runs, meta=merged)


def _git_sha() -> str | None:
    """The working tree's HEAD commit, or None outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def provenance() -> dict:
    """Self-describing origin facts for a committed ``BENCH_*.json``.

    A baseline checked into the repo outlives the checkout that wrote
    it; this block records which revision and machine produced the
    numbers so a future regression hunt can trust (or discount) them.
    """
    prov = {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    sha = _git_sha()
    if sha is not None:
        prov["git_sha"] = sha
    return prov


def make_payload(entries: list[BenchEntry], scale: str, repeats: int) -> dict:
    """Assemble the schema-versioned payload for a list of entries."""
    return {
        "schema": SCHEMA,
        "version": repro.__version__,
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "provenance": provenance(),
        "scale": scale,
        "repeats": repeats,
        "benchmarks": [e.to_dict() for e in sorted(entries, key=lambda e: e.id)],
    }


def validate_payload(payload: object) -> list[str]:
    """Structural check of a ``repro.bench/1`` payload.

    Returns:
        Human-readable problems; empty means the payload is valid.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    for key in ("scale", "python", "date"):
        if not isinstance(payload.get(key), str):
            errors.append(f"{key!r} must be a string")
    # Optional: payloads written before the provenance block exist and
    # must stay valid, but when present it must be well-formed.
    prov = payload.get("provenance")
    if prov is not None:
        if not isinstance(prov, dict):
            errors.append("'provenance' must be an object")
        else:
            for key in ("repro_version", "python", "platform"):
                if not isinstance(prov.get(key), str):
                    errors.append(f"provenance.{key!r} must be a string")
            sha = prov.get("git_sha")
            if sha is not None and (
                not isinstance(sha, str) or len(sha) != 40
            ):
                errors.append("provenance.'git_sha' must be a 40-char hex string")
    benches = payload.get("benchmarks")
    if not isinstance(benches, list):
        return errors + ["'benchmarks' must be a list"]
    seen: set[str] = set()
    for i, entry in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in _ENTRY_REQUIRED:
            if key not in entry:
                errors.append(f"{where} missing {key!r}")
        bench_id = entry.get("id")
        if isinstance(bench_id, str):
            if bench_id in seen:
                errors.append(f"{where}: duplicate id {bench_id!r}")
            seen.add(bench_id)
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            errors.append(f"{where}: 'seconds' must be a non-negative number")
        runs = entry.get("runs")
        if not isinstance(runs, list) or not runs or not all(
            isinstance(r, (int, float)) and r >= 0 for r in runs
        ):
            errors.append(f"{where}: 'runs' must be a non-empty list of numbers")
        elif isinstance(seconds, (int, float)) and abs(seconds - min(runs)) > 1e-12:
            errors.append(f"{where}: 'seconds' must equal min(runs)")
    return errors


def write_payload(payload: dict, path: str | Path) -> Path:
    """Validate and write a payload; raises ``ValueError`` if invalid."""
    errors = validate_payload(payload)
    if errors:
        raise ValueError("invalid bench payload: " + "; ".join(errors))
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: str | Path) -> dict:
    """Read and validate a payload; raises ``ValueError`` if invalid."""
    payload = json.loads(Path(path).read_text())
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"invalid bench payload {path}: " + "; ".join(errors))
    return payload


def default_path(root: str | Path = ".") -> Path:
    """The conventional output path: ``<root>/BENCH_<YYYY-MM-DD>.json``."""
    return Path(root) / f"BENCH_{datetime.date.today().isoformat()}.json"


@dataclass(slots=True)
class CompareRow:
    """One benchmark id matched across two payloads."""

    id: str
    old_seconds: float
    new_seconds: float

    @property
    def ratio(self) -> float:
        """``new / old``; > 1 means the benchmark got slower."""
        if self.old_seconds <= 0:
            return float("inf") if self.new_seconds > 0 else 1.0
        return self.new_seconds / self.old_seconds


#: Entries faster than this on *both* sides are never flagged: at
#: sub-10ms wall-clock, timer jitter and allocator state dwarf any code
#: delta (a 50us -> 100us "2x regression" is noise, not a slowdown).
NOISE_FLOOR_SECONDS = 0.01


@dataclass(slots=True)
class CompareReport:
    """Outcome of :func:`compare_payloads`.

    ``only_old`` / ``only_new`` are ``(id, seconds)`` pairs for the
    benchmarks present on just one side.  They are *excluded* from the
    regression verdict (there is nothing to compare against), but they
    are never silent: :meth:`format` prints them as dedicated removed/
    added sections so a renamed or dropped benchmark cannot slip
    through a green compare unnoticed.
    """

    rows: list[CompareRow]
    threshold: float
    only_old: list[tuple[str, float]]
    only_new: list[tuple[str, float]]

    @property
    def regressions(self) -> list[CompareRow]:
        return [
            r
            for r in self.rows
            if r.ratio > self.threshold
            and max(r.old_seconds, r.new_seconds) >= NOISE_FLOOR_SECONDS
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"{'benchmark':<34} {'old s':>10} {'new s':>10} {'ratio':>7}",
        ]
        for r in self.rows:
            if r.ratio <= self.threshold:
                flag = ""
            elif max(r.old_seconds, r.new_seconds) < NOISE_FLOOR_SECONDS:
                flag = "  (below noise floor, ignored)"
            else:
                flag = "  << REGRESSION"
            lines.append(
                f"{r.id:<34} {r.old_seconds:>10.4f} {r.new_seconds:>10.4f} "
                f"{r.ratio:>7.3f}{flag}"
            )
        if self.only_old:
            lines.append("")
            lines.append(
                f"removed ({len(self.only_old)} benchmark(s) in the baseline "
                "only, not compared):"
            )
            for bench_id, seconds in self.only_old:
                lines.append(f"  {bench_id:<32} {seconds:>10.4f}")
        if self.only_new:
            lines.append("")
            lines.append(
                f"added ({len(self.only_new)} benchmark(s) with no baseline "
                "entry, not compared):"
            )
            for bench_id, seconds in self.only_new:
                lines.append(f"  {bench_id:<32} {seconds:>10.4f}")
        if self.only_old or self.only_new:
            lines.append("")
        verdict = (
            "OK: no benchmark slowed past "
            if self.ok
            else f"FAIL: {len(self.regressions)} benchmark(s) slowed past "
        )
        lines.append(f"{verdict}{self.threshold:.2f}x")
        if self.only_old or self.only_new:
            lines.append(
                f"note: {len(self.only_new)} added / {len(self.only_old)} "
                "removed id(s) excluded from the regression check (see above)"
            )
        return "\n".join(lines)


def compare_payloads(old: dict, new: dict, threshold: float = 1.15) -> CompareReport:
    """Pair two payloads by benchmark id and flag slowdowns.

    Args:
        old: Baseline payload (earlier revision).
        new: Candidate payload.
        threshold: Maximum tolerated ``new/old`` time ratio; entries
            above it count as regressions (``ok`` becomes False).

    Returns:
        A report with one row per id present in both payloads, plus
        ``(id, seconds)`` pairs for ids unique to either side (reported
        as removed/added sections, never counted as regressions).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    old_by_id = {e["id"]: e for e in old["benchmarks"]}
    new_by_id = {e["id"]: e for e in new["benchmarks"]}
    rows = [
        CompareRow(id=i, old_seconds=old_by_id[i]["seconds"],
                   new_seconds=new_by_id[i]["seconds"])
        for i in sorted(old_by_id.keys() & new_by_id.keys())
    ]
    return CompareReport(
        rows=rows,
        threshold=threshold,
        only_old=[
            (i, old_by_id[i]["seconds"])
            for i in sorted(old_by_id.keys() - new_by_id.keys())
        ],
        only_new=[
            (i, new_by_id[i]["seconds"])
            for i in sorted(new_by_id.keys() - old_by_id.keys())
        ],
    )


def print_compare(report: CompareReport, out=sys.stdout) -> None:
    """Write a comparison report to ``out``."""
    print(report.format(), file=out)
