"""Performance-regression harness for the simulator hot paths.

The paper's evaluation is a large sweep of trace-driven simulations
(26 benchmarks x designs x capacities, Sections 5-7), so the wall-clock
cost of one :func:`repro.sm.simulate` call is the scaling bottleneck of
the whole reproduction.  This package measures it and keeps it fast:

* :mod:`repro.bench.micro` -- deterministic microbenchmarks of the
  component models (bank conflicts, coalescer, cache) and of full
  ``simulate()`` calls per kernel/partition;
* :mod:`repro.bench.suite` -- the suite-level benchmark: every
  experiment of ``python -m repro suite``, single job, cold in-memory
  cache, timed per experiment;
* :mod:`repro.bench.report` -- the schema-versioned ``BENCH_*.json``
  payload (``repro.bench/1``), plus validation and two-file comparison
  with a regression threshold.

Entry point: ``python -m repro bench`` (see :mod:`repro.cli`).  Timing
numbers are wall-clock and machine-dependent; everything else in the
payload (benchmark ids, op counts, simulated cycles) is deterministic,
and the pinned ``cycles`` metadata doubles as a cheap cycle-identity
check between two machines or two revisions.
"""

from repro.bench.report import (
    SCHEMA,
    BenchEntry,
    compare_payloads,
    default_path,
    load_payload,
    make_payload,
    validate_payload,
    write_payload,
)

__all__ = [
    "SCHEMA",
    "BenchEntry",
    "compare_payloads",
    "default_path",
    "load_payload",
    "make_payload",
    "validate_payload",
    "write_payload",
]
