#!/usr/bin/env python
"""Bring your own kernel: trace, compile, and place a custom workload.

Shows the full public API surface for a workload that is not in the
Table 1 suite: a warp-level histogram kernel written with
:class:`~repro.isa.WarpBuilder`, compiled with the register-hierarchy
pipeline, characterised (no-spill register demand, shared footprint),
and then placed by the Section 4.5 allocator and simulated against the
partitioned baseline.

Run:  python examples/custom_kernel.py
"""

from repro import (
    EnergyModel,
    LaunchConfig,
    WarpBuilder,
    allocate_unified,
    compile_kernel,
    partitioned_baseline,
    simulate,
)
from repro.core.partition import KB
from repro.isa import CTATrace, KernelTrace

WARP = 32
THREADS_PER_CTA = 256
BINS = 512  # histogram bins kept in shared memory
ITEMS_PER_THREAD = 24
SMEM_PER_CTA = BINS * 4
DATA, OUT = 1 << 24, 2 << 24


def histogram_warp(cta: int, warp: int) -> list:
    """One warp of a shared-memory histogram kernel."""
    b = WarpBuilder()
    lane0 = (cta * (THREADS_PER_CTA // WARP) + warp) * WARP
    # Zero this warp's slice of the bins.
    zero = b.iconst()
    for chunk in range(BINS // THREADS_PER_CTA):
        off = 4 * (warp * WARP + chunk * THREADS_PER_CTA)
        b.store_shared([off + 4 * t for t in range(WARP)], zero)
    b.barrier()
    for i in range(ITEMS_PER_THREAD):
        x = b.load_global(
            [DATA + 4 * ((i * 8192) + lane0 + t) for t in range(WARP)]
        )
        bin_id = b.alu(x)  # hash to a bin
        # Data-dependent scatter into the bins (deterministic stand-in).
        addrs = [4 * ((lane0 * 7 + i * 131 + t * 37) % BINS) for t in range(WARP)]
        old = b.load_shared(addrs, bin_id)
        new = b.alu(old, bin_id)
        b.store_shared(addrs, new)
    b.barrier()
    # Flush bins to global memory.
    for chunk in range(BINS // THREADS_PER_CTA):
        off = warp * WARP + chunk * THREADS_PER_CTA
        v = b.load_shared([4 * (off + t) for t in range(WARP)])
        b.store_global([OUT + 4 * (cta * BINS + off + t) for t in range(WARP)], v)
    return b.ops


def main() -> None:
    num_ctas = 16
    launch = LaunchConfig(
        threads_per_cta=THREADS_PER_CTA,
        num_ctas=num_ctas,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    ctas = [
        CTATrace([histogram_warp(c, w) for w in range(launch.warps_per_cta)])
        for c in range(num_ctas)
    ]
    trace = KernelTrace("histogram", launch, ctas)
    kernel = compile_kernel(trace)
    print(
        f"histogram: {trace.total_ops} warp ops, "
        f"{kernel.regs_per_thread} registers/thread to avoid spills, "
        f"{SMEM_PER_CTA} B shared per CTA"
    )

    baseline = simulate(kernel, partitioned_baseline())
    alloc = allocate_unified(
        384 * KB,
        regs_per_thread=kernel.regs_per_thread,
        threads_per_cta=THREADS_PER_CTA,
        smem_bytes_per_cta=SMEM_PER_CTA,
    )
    unified = simulate(kernel, alloc.partition)
    model = EnergyModel()
    e_base = model.evaluate(baseline).total_j
    e_uni = model.evaluate(unified, baseline_cycles=baseline.cycles).total_j

    print(f"baseline: {baseline.summary()}")
    print(f"unified : {unified.summary()}")
    print(f"allocator chose: {alloc.partition.describe()}")
    print(
        f"speedup {unified.speedup_over(baseline):.2f}x, "
        f"energy {e_uni / e_base:.2f}x, "
        f"DRAM {unified.dram_traffic_ratio(baseline):.2f}x"
    )


if __name__ == "__main__":
    main()
