#!/usr/bin/env python
"""Quickstart: simulate one benchmark under three memory designs.

Builds the `needle` (Needleman-Wunsch) benchmark trace, compiles it, and
runs it on a single simulated SM under:

1. the hard-partitioned baseline (256 KB RF / 64 KB shared / 64 KB cache),
2. the Fermi-like limited-flexibility design (better of the two splits),
3. the fully unified 384 KB design, partitioned by the paper's
   Section 4.5 algorithm.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import (
    EnergyModel,
    allocate_unified,
    compile_kernel,
    fermi_like,
    get_benchmark,
    partitioned_baseline,
    simulate,
)
from repro.core.partition import KB


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "needle"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"

    bench = get_benchmark(name)
    print(f"# {bench.name}: {bench.description} [{bench.category.value}]")
    trace = bench.build(scale)
    kernel = compile_kernel(trace)  # no-spill register budget
    print(
        f"trace: {trace.total_ops} warp instructions, "
        f"{trace.launch.num_ctas} CTAs x {trace.launch.threads_per_cta} threads, "
        f"{kernel.regs_per_thread} registers/thread, "
        f"{trace.launch.smem_bytes_per_cta} B shared/CTA"
    )

    energy_model = EnergyModel()
    baseline = simulate(kernel, partitioned_baseline())
    base_energy = energy_model.evaluate(baseline)
    print(f"\nbaseline   : {baseline.summary()}")

    from repro.sm.cta_scheduler import LaunchError

    fermi_runs = []
    for split in (0, 1):
        try:
            fermi_runs.append(simulate(kernel, fermi_like(split)))
        except LaunchError:
            pass
    rows = []
    if fermi_runs:
        fermi = min(fermi_runs, key=lambda r: r.cycles)
        rows.append(("fermi-like", fermi))

    alloc = allocate_unified(
        384 * KB,
        regs_per_thread=kernel.regs_per_thread,
        threads_per_cta=trace.launch.threads_per_cta,
        smem_bytes_per_cta=trace.launch.smem_bytes_per_cta,
    )
    unified = simulate(kernel, alloc.partition)
    rows.append(("unified", unified))

    for label, run in rows:
        energy = energy_model.evaluate(run, baseline_cycles=baseline.cycles)
        print(f"{label:11s}: {run.summary()}")
        print(
            f"             speedup {run.speedup_over(baseline):.2f}x | "
            f"energy {energy.total_j / base_energy.total_j:.2f}x | "
            f"DRAM {run.dram_traffic_ratio(baseline):.2f}x"
        )
    print(f"\nchosen unified split: {alloc.partition.describe()}")
    print(f"resident threads: {alloc.resident_threads} ({alloc.resident_ctas} CTAs)")


if __name__ == "__main__":
    main()
