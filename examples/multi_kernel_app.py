#!/usr/bin/env python
"""Per-kernel repartitioning for a multi-kernel application (Section 4.4).

A realistic pipeline runs kernels with conflicting memory appetites: a
register-blocked GEMM, a scratchpad-heavy dynamic-programming pass, and
a cache-hungry graph traversal.  A fixed partition must carry the
*envelope* of all their register and shared demands for the whole run —
starving the cache — while the unified design repartitions before each
launch (write-through means nothing to flush, Section 4.4).

Run:  python examples/multi_kernel_app.py [scale]
"""

import sys

from repro import compile_kernel, get_benchmark
from repro.core import ReconfigPolicy, run_application
from repro.core.partition import KB

PIPELINE = ("dgemm", "needle", "bfs")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    kernels = [compile_kernel(get_benchmark(n).build(scale)) for n in PIPELINE]

    fixed = run_application(kernels, 384 * KB, ReconfigPolicy.FIXED)
    per = run_application(kernels, 384 * KB, ReconfigPolicy.PER_KERNEL)

    print("# fixed partition (envelope of all kernels)")
    print(f"  {fixed.phases[0].partition.describe()}")
    for p in fixed.phases:
        print(f"  {p.kernel:8s}: {p.result.cycles:10.0f} cycles "
              f"({p.result.resident_threads} threads)")
    print(f"  total: {fixed.total_cycles:.0f} cycles")

    print("\n# per-kernel repartitioning (Section 4.5 before each launch)")
    for p in per.phases:
        flag = " [repartitioned]" if p.repartitioned else ""
        print(f"  {p.kernel:8s}: {p.result.cycles:10.0f} cycles "
              f"({p.result.resident_threads} threads) "
              f"{p.partition.describe()}{flag}")
    print(f"  total: {per.total_cycles:.0f} cycles "
          f"(incl. {per.drain_cycles:.0f} drain cycles for "
          f"{per.reconfigurations} repartitionings)")

    print(f"\nper-kernel repartitioning speedup: "
          f"{per.speedup_over(fixed):.2f}x")


if __name__ == "__main__":
    main()
