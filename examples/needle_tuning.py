#!/usr/bin/env python
"""Application tuning over the unified design space (paper Section 6.5).

needle's blocking factor trades shared-memory footprint (quadratic in
the factor) against work efficiency.  On a fixed 64 KB scratchpad only
bf<=32 is viable; unified memory opens the whole range.  This example
sweeps blocking factor x thread count, prints the frontier, and answers
the practical question: *given a memory budget, which configuration
should I ship?*

Run:  python examples/needle_tuning.py [scale]
"""

import sys

from repro import compile_kernel, partitioned_design, simulate
from repro.kernels.needle import build, smem_bytes_for
from repro.sm.cta_scheduler import LaunchError

BLOCKING_FACTORS = (16, 32, 64)
THREADS = (64, 128, 256, 512, 768, 1024)
BUDGETS_KB = (16, 48, 64, 128, 256, 520)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    results = []  # (bf, threads, smem_kb, cycles)
    for bf in BLOCKING_FACTORS:
        kernel = compile_kernel(build(scale, blocking_factor=bf))
        tpc = kernel.launch.threads_per_cta
        for threads in THREADS:
            if threads % tpc:
                continue
            ctas = threads // tpc
            smem_kb = (ctas * smem_bytes_for(bf) + 1023) // 1024
            part = partitioned_design(256, smem_kb, 64)
            try:
                run = simulate(kernel, part, thread_target=threads)
            except LaunchError:
                continue
            results.append((bf, threads, smem_kb, run.cycles))

    best = min(r[3] for r in results)
    print(f"{'bf':>4} {'threads':>8} {'smem KB':>8} {'perf':>6}")
    for bf, threads, smem_kb, cycles in results:
        print(f"{bf:>4} {threads:>8} {smem_kb:>8} {best / cycles:>6.2f}")

    print("\nbest configuration per shared-memory budget:")
    for budget in BUDGETS_KB:
        feasible = [r for r in results if r[2] <= budget]
        if not feasible:
            print(f"  {budget:>4} KB: nothing fits")
            continue
        bf, threads, smem_kb, cycles = min(feasible, key=lambda r: r[3])
        print(
            f"  {budget:>4} KB: bf={bf}, {threads} threads "
            f"({smem_kb} KB used, {best / cycles:.2f} of peak)"
        )


if __name__ == "__main__":
    main()
