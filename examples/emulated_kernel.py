#!/usr/bin/env python
"""Write a kernel as a per-thread program and let SIMT emulation trace it.

The hand-written suite in ``repro.kernels`` emits warp-level streams
directly; this example uses the general path instead — the Ocelot-style
functional emulator.  The kernel is an irregular Collatz-length search:
each thread iterates a data-dependent number of steps, so warps diverge
and reconverge, and the emitted trace carries the real active masks.

The traced kernel then flows through the normal pipeline: register
characterisation, the Section 4.5 allocator, and baseline-vs-unified
simulation.

Run:  python examples/emulated_kernel.py
"""

from repro import (
    allocate_unified,
    compile_kernel,
    partitioned_baseline,
    simulate,
)
from repro.core.partition import KB
from repro.emulator import Program, Special, emulate_kernel

IN, OUT = 0x100000, 0x200000


def build_program() -> Program:
    """Per-thread Collatz step count for a data-dependent seed."""
    p = Program()
    from repro.emulator.ast import Var

    g = Special("gtid")
    seed = p.load_global(g * 4 + IN, name="n")
    p.assign(seed % 97 + 2, name="n")
    p.assign(seed * 0, name="steps")
    with p.while_(Var("n").gt(1), max_iterations=300):
        with p.if_((Var("n") % 2).eq(0)):
            p.assign(Var("n") // 2, name="n")
        with p.else_():
            p.assign(Var("n") * 3 + 1, name="n")
        p.assign(Var("steps") + 1, name="steps")
    p.store_global(g * 4 + OUT, Var("steps"))
    return p


def main() -> None:
    program = build_program()
    trace = emulate_kernel(
        program, name="collatz", threads_per_cta=256, num_ctas=16
    )
    kernel = compile_kernel(trace)
    print(
        f"collatz: {trace.total_ops} warp instructions emulated, "
        f"{kernel.regs_per_thread} registers/thread, "
        f"divergent masks down to "
        f"{min(op.active for cta in trace.ctas for w in cta.warps for op in w)} lanes"
    )

    base = simulate(kernel, partitioned_baseline())
    alloc = allocate_unified(
        384 * KB,
        regs_per_thread=kernel.regs_per_thread,
        threads_per_cta=trace.launch.threads_per_cta,
        smem_bytes_per_cta=0,
    )
    uni = simulate(kernel, alloc.partition)
    print(f"baseline: {base.summary()}")
    print(f"unified : {uni.summary()}")
    print(f"allocator chose: {alloc.partition.describe()}")
    print(f"speedup {uni.speedup_over(base):.2f}x "
          f"(compute-bound integer kernel: unification costs nothing, and "
          f"the allocator frees 344 KB of cache for data it might reuse)")


if __name__ == "__main__":
    main()
