#!/usr/bin/env python
"""Design-space exploration: how much unified memory does an SM need?

Sweeps the unified pool capacity for one benchmark (Table 6 style, with
a finer grid), reporting performance, energy, and the allocator's chosen
split at each point, then recommends the smallest capacity within 2% of
peak performance and the lowest-energy capacity -- the Section 6.4
trade-off ("future systems could exploit this fact by disabling
unneeded memory").

Run:  python examples/design_space_exploration.py [benchmark] [scale]
"""

import sys

from repro import (
    AllocationError,
    EnergyModel,
    allocate_unified,
    compile_kernel,
    get_benchmark,
    partitioned_baseline,
    simulate,
)
from repro.core.partition import KB

CAPACITIES_KB = (96, 128, 160, 192, 224, 256, 320, 384, 448, 512)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pcr"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"

    bench = get_benchmark(name)
    trace = bench.build(scale)
    kernel = compile_kernel(trace)
    model = EnergyModel()

    baseline = simulate(kernel, partitioned_baseline())
    base_energy = model.evaluate(baseline).total_j

    print(f"# {name}: unified capacity sweep (vs 384KB partitioned baseline)")
    print(f"{'KB':>5} {'speedup':>8} {'energy':>7} {'threads':>8} "
          f"{'RF':>6} {'smem':>6} {'cache':>6}")
    sweep = []
    for cap in CAPACITIES_KB:
        try:
            alloc = allocate_unified(
                cap * KB,
                regs_per_thread=kernel.regs_per_thread,
                threads_per_cta=trace.launch.threads_per_cta,
                smem_bytes_per_cta=trace.launch.smem_bytes_per_cta,
            )
        except AllocationError:
            print(f"{cap:>5} {'does not fit one CTA':>30}")
            continue
        run = simulate(kernel, alloc.partition)
        energy = model.evaluate(run, baseline_cycles=baseline.cycles).total_j
        speedup = run.speedup_over(baseline)
        sweep.append((cap, speedup, energy / base_energy))
        p = alloc.partition
        print(
            f"{cap:>5} {speedup:>8.2f} {energy / base_energy:>7.2f} "
            f"{alloc.resident_threads:>8} {p.rf_kb:>6.1f} {p.smem_kb:>6.1f} "
            f"{p.cache_kb:>6.1f}"
        )

    if not sweep:
        return
    peak = max(s for _, s, _ in sweep)
    right_sized = next(cap for cap, s, _ in sweep if s >= 0.98 * peak)
    lowest_energy = min(sweep, key=lambda row: row[2])
    print(f"\nsmallest capacity within 2% of peak: {right_sized} KB")
    print(
        f"lowest-energy capacity: {lowest_energy[0]} KB "
        f"({lowest_energy[2]:.2f}x baseline energy)"
    )


if __name__ == "__main__":
    main()
