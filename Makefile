# Convenience targets for the reproduction workflow.

.PHONY: install test bench validate results clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:            ## regenerate every table/figure into benchmarks/results/
	pytest benchmarks/ --benchmark-only

validate:         ## the 11-claim reproduction scorecard
	python -m repro validate

results: bench
	@echo "regenerated tables:" && ls benchmarks/results/

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
