"""Unit tests for the WarpBuilder construction API."""

import pytest

from repro.isa import OpClass, WarpBuilder
from repro.isa.trace import WARP_SIZE


class TestValueNumbering:
    def test_fresh_registers_are_sequential(self):
        b = WarpBuilder()
        v0 = b.iconst()
        v1 = b.alu(v0)
        v2 = b.sfu(v1)
        assert (v0, v1, v2) == (0, 1, 2)
        assert b.num_vregs == 3

    def test_alu_into_reuses_destination(self):
        b = WarpBuilder()
        acc = b.iconst()
        x = b.iconst()
        out = b.alu_into(acc, x)
        assert out == acc
        op = b.ops[-1]
        assert op.dst == acc
        assert acc in op.srcs and x in op.srcs
        assert b.num_vregs == 2  # no fresh register allocated


class TestEmission:
    def test_load_returns_value_with_addresses(self):
        b = WarpBuilder()
        a = b.iconst()
        addrs = [128 + 4 * t for t in range(WARP_SIZE)]
        v = b.load_global(addrs, a)
        op = b.ops[-1]
        assert op.op is OpClass.LOAD_GLOBAL
        assert op.dst == v
        assert op.srcs == (a,)
        assert op.addrs == tuple(addrs)

    def test_store_has_no_destination(self):
        b = WarpBuilder()
        v = b.iconst()
        b.store_shared(range(0, 4 * WARP_SIZE, 4), v)
        op = b.ops[-1]
        assert op.op is OpClass.STORE_SHARED
        assert op.dst is None

    def test_barrier(self):
        b = WarpBuilder()
        b.barrier()
        assert b.ops[-1].op is OpClass.BARRIER

    def test_partial_active_mask_truncates_addresses(self):
        b = WarpBuilder()
        addrs = [4 * t for t in range(WARP_SIZE)]
        b.load_global(addrs, active=5)
        op = b.ops[-1]
        assert op.active == 5
        assert op.addrs == tuple(addrs[:5])

    def test_builder_level_active_mask(self):
        b = WarpBuilder(active=8)
        v = b.alu()
        assert b.ops[-1].active == 8
        b.store_global([4 * t for t in range(8)], v)
        assert b.ops[-1].active == 8

    def test_invalid_active_rejected(self):
        with pytest.raises(ValueError):
            WarpBuilder(active=0)

    def test_touch_consumes_values(self):
        b = WarpBuilder()
        pool = [b.iconst() for _ in range(4)]
        b.touch(*pool)
        assert set(b.ops[-1].srcs) == set(pool)
