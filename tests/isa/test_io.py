"""Round-trip tests for trace serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.io import load_trace, save_trace
from repro.isa.kernel import CTATrace, KernelTrace, LaunchConfig
from repro.isa.opcodes import OpClass
from repro.isa.trace import WarpOp
from repro.kernels import get_benchmark


def _traces_equal(a, b) -> bool:
    if (a.name, a.launch, a.uses_texture) != (b.name, b.launch, b.uses_texture):
        return False
    for ca, cb in zip(a.ctas, b.ctas):
        if ca.warps != cb.warps:
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["vectoradd", "needle", "bfs", "bicubictexture"])
    def test_lossless(self, name, tmp_path):
        trace = get_benchmark(name).build("tiny")
        path = tmp_path / f"{name}.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert _traces_equal(trace, loaded)
        assert loaded.total_ops == trace.total_ops

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.compiler import compile_kernel
        from repro.core import partitioned_baseline
        from repro.sm import simulate

        trace = get_benchmark("pcr").build("tiny")
        path = tmp_path / "pcr.npz"
        save_trace(trace, path)
        a = simulate(compile_kernel(trace), partitioned_baseline())
        b = simulate(compile_kernel(load_trace(path)), partitioned_baseline())
        assert a.cycles == b.cycles
        assert a.dram_accesses == b.dram_accesses

    def test_empty_address_tuple_survives(self, tmp_path):
        # A fully-predicated memory op carries addrs=() (present but
        # empty); the v1 format decoded it as None because only the
        # offset arithmetic (a1 > a0) reconstructed presence.
        warp = [
            WarpOp(op=OpClass.ALU, dst=0, srcs=()),
            WarpOp(op=OpClass.LOAD_GLOBAL, dst=1, srcs=(0,), addrs=(), active=0),
            WarpOp(op=OpClass.STORE_GLOBAL, srcs=(1,), addrs=(64,), active=1),
        ]
        trace = KernelTrace(
            "predicated",
            LaunchConfig(threads_per_cta=32, num_ctas=1),
            [CTATrace([warp])],
        )
        path = tmp_path / "predicated.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        ops = loaded.ctas[0].warps[0]
        assert ops[1].addrs == ()
        assert ops[1].active == 0
        assert _traces_equal(trace, loaded)

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.builds(
                    WarpOp,
                    op=st.just(OpClass.ALU),
                    dst=st.integers(0, 7),
                    srcs=st.tuples(st.integers(0, 7)),
                ),
                st.integers(0, 4).flatmap(
                    lambda n: st.builds(
                        WarpOp,
                        op=st.sampled_from(
                            [OpClass.LOAD_GLOBAL, OpClass.STORE_GLOBAL]
                        ),
                        srcs=st.just((0,)),
                        addrs=st.just(tuple(128 * i for i in range(n))),
                        active=st.just(n),
                    )
                ),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_roundtrip_property(self, ops, tmp_path_factory):
        trace = KernelTrace(
            "prop",
            LaunchConfig(threads_per_cta=32, num_ctas=1),
            [CTATrace([list(ops)])],
        )
        path = tmp_path_factory.mktemp("io") / "prop.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert _traces_equal(trace, loaded)

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        trace = get_benchmark("vectoradd").build("tiny")
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_compression_is_effective(self, tmp_path):
        # The flattened arrays compress far below a naive pickle.
        trace = get_benchmark("srad").build("tiny")
        path = tmp_path / "srad.npz"
        save_trace(trace, path)
        # ~11k ops with 32 addresses each; compressed file stays small.
        assert path.stat().st_size < 600_000
