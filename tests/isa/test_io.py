"""Round-trip tests for trace serialization."""

import pytest

from repro.isa.io import load_trace, save_trace
from repro.kernels import get_benchmark


def _traces_equal(a, b) -> bool:
    if (a.name, a.launch, a.uses_texture) != (b.name, b.launch, b.uses_texture):
        return False
    for ca, cb in zip(a.ctas, b.ctas):
        if ca.warps != cb.warps:
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["vectoradd", "needle", "bfs", "bicubictexture"])
    def test_lossless(self, name, tmp_path):
        trace = get_benchmark(name).build("tiny")
        path = tmp_path / f"{name}.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert _traces_equal(trace, loaded)
        assert loaded.total_ops == trace.total_ops

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.compiler import compile_kernel
        from repro.core import partitioned_baseline
        from repro.sm import simulate

        trace = get_benchmark("pcr").build("tiny")
        path = tmp_path / "pcr.npz"
        save_trace(trace, path)
        a = simulate(compile_kernel(trace), partitioned_baseline())
        b = simulate(compile_kernel(load_trace(path)), partitioned_baseline())
        assert a.cycles == b.cycles
        assert a.dram_accesses == b.dram_accesses

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        trace = get_benchmark("vectoradd").build("tiny")
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_compression_is_effective(self, tmp_path):
        # The flattened arrays compress far below a naive pickle.
        trace = get_benchmark("srad").build("tiny")
        path = tmp_path / "srad.npz"
        save_trace(trace, path)
        # ~11k ops with 32 addresses each; compressed file stays small.
        assert path.stat().st_size < 600_000
