"""Unit tests for kernel metadata and trace containers."""

import pytest

from repro.isa import CTATrace, KernelInfo, KernelTrace, LaunchConfig, OpClass, WarpBuilder
from repro.isa.trace import WARP_SIZE


def _warp(n_alu=3, barriers=0):
    b = WarpBuilder()
    v = b.iconst()
    for _ in range(n_alu - 1):
        v = b.alu(v)
    for _ in range(barriers):
        b.barrier()
    return b.ops


class TestLaunchConfig:
    def test_derived_quantities(self):
        lc = LaunchConfig(threads_per_cta=128, num_ctas=4, smem_bytes_per_cta=2048)
        assert lc.warps_per_cta == 4
        assert lc.total_threads == 512
        assert lc.smem_bytes_per_thread == 16.0

    def test_threads_must_be_warp_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            LaunchConfig(threads_per_cta=100, num_ctas=1)

    def test_positive_ctas(self):
        with pytest.raises(ValueError):
            LaunchConfig(threads_per_cta=WARP_SIZE, num_ctas=0)

    def test_negative_smem(self):
        with pytest.raises(ValueError):
            LaunchConfig(threads_per_cta=WARP_SIZE, num_ctas=1, smem_bytes_per_cta=-1)


class TestKernelInfo:
    def test_register_footprint(self):
        info = KernelInfo("k", regs_per_thread=20, smem_bytes_per_thread=16, threads_per_cta=256)
        assert info.rf_bytes_per_thread == 80
        assert info.rf_bytes(1024) == 80 * 1024
        assert info.smem_bytes(512) == 16 * 512


class TestCTATrace:
    def test_barrier_counts_must_match(self):
        good = CTATrace([_warp(barriers=2), _warp(barriers=2)])
        assert good.num_warps == 2
        with pytest.raises(ValueError, match="same number of barriers"):
            CTATrace([_warp(barriers=1), _warp(barriers=2)])

    def test_empty_cta_rejected(self):
        with pytest.raises(ValueError):
            CTATrace([])

    def test_total_ops(self):
        cta = CTATrace([_warp(3), _warp(5)])
        assert cta.total_ops == 8


class TestKernelTrace:
    def _trace(self, num_ctas=2, warps=2):
        lc = LaunchConfig(threads_per_cta=warps * WARP_SIZE, num_ctas=num_ctas)
        ctas = [CTATrace([_warp() for _ in range(warps)]) for _ in range(num_ctas)]
        return KernelTrace("k", lc, ctas)

    def test_shape_validation(self):
        lc = LaunchConfig(threads_per_cta=64, num_ctas=2)
        with pytest.raises(ValueError, match="CTAs"):
            KernelTrace("k", lc, [CTATrace([_warp(), _warp()])])
        with pytest.raises(ValueError, match="warps"):
            KernelTrace("k", lc, [CTATrace([_warp()]), CTATrace([_warp()])])

    def test_stats_cached_and_correct(self):
        t = self._trace()
        s = t.stats()
        assert s.total_ops == t.total_ops == 12
        assert s.alu_ops == 12
        assert t.stats() is s  # cached

    def test_iter_ops_covers_everything(self):
        t = self._trace()
        ops = list(t.iter_ops())
        assert len(ops) == t.total_ops
        assert all(op.op is OpClass.ALU for op in ops)
