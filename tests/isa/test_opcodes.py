"""Unit tests for the instruction-class taxonomy."""

import pytest

from repro.isa import MemSpace, OpClass


class TestMemoryClassification:
    def test_loads_are_memory(self):
        for op in (OpClass.LOAD_GLOBAL, OpClass.LOAD_SHARED, OpClass.LOAD_LOCAL):
            assert op.is_memory
            assert op.is_load
            assert not op.is_store

    def test_stores_are_memory(self):
        for op in (OpClass.STORE_GLOBAL, OpClass.STORE_SHARED, OpClass.STORE_LOCAL):
            assert op.is_memory
            assert op.is_store
            assert not op.is_load

    def test_non_memory_ops(self):
        for op in (OpClass.ALU, OpClass.SFU, OpClass.TEX, OpClass.BARRIER, OpClass.EXIT):
            assert not op.is_memory
            assert not op.is_load
            assert not op.is_store
            assert op.space is None

    def test_spaces(self):
        assert OpClass.LOAD_GLOBAL.space is MemSpace.GLOBAL
        assert OpClass.STORE_GLOBAL.space is MemSpace.GLOBAL
        assert OpClass.LOAD_SHARED.space is MemSpace.SHARED
        assert OpClass.STORE_SHARED.space is MemSpace.SHARED
        assert OpClass.LOAD_LOCAL.space is MemSpace.LOCAL
        assert OpClass.STORE_LOCAL.space is MemSpace.LOCAL


class TestLongLatency:
    """The two-level scheduler deschedules on these ops (paper Section 2.1)."""

    def test_global_and_texture_are_long_latency(self):
        assert OpClass.LOAD_GLOBAL.is_long_latency
        assert OpClass.STORE_GLOBAL.is_long_latency
        assert OpClass.TEX.is_long_latency

    def test_local_spill_traffic_is_long_latency(self):
        # Spills go through the global memory path.
        assert OpClass.LOAD_LOCAL.is_long_latency
        assert OpClass.STORE_LOCAL.is_long_latency

    def test_shared_memory_is_short_latency(self):
        # Shared memory is the low-latency scratchpad; it does not trigger
        # a deschedule.
        assert not OpClass.LOAD_SHARED.is_long_latency
        assert not OpClass.STORE_SHARED.is_long_latency

    def test_alu_sfu_are_short_latency(self):
        assert not OpClass.ALU.is_long_latency
        assert not OpClass.SFU.is_long_latency


@pytest.mark.parametrize("op", list(OpClass))
def test_values_unique_and_stable(op):
    assert OpClass(op.value) is op
