"""Unit tests for WarpOp records and TraceStats."""

import pytest

from repro.isa import OpClass, WarpOp
from repro.isa.trace import WARP_SIZE, TraceStats


class TestWarpOpValidation:
    def test_memory_op_requires_addresses(self):
        with pytest.raises(ValueError, match="requires per-thread addresses"):
            WarpOp(OpClass.LOAD_GLOBAL, dst=0)

    def test_address_count_must_match_active(self):
        with pytest.raises(ValueError, match="addresses for"):
            WarpOp(OpClass.LOAD_GLOBAL, dst=0, addrs=(0, 4), active=3)

    def test_alu_must_not_carry_addresses(self):
        with pytest.raises(ValueError, match="must not carry addresses"):
            WarpOp(OpClass.ALU, dst=0, addrs=(0,) * WARP_SIZE)

    @pytest.mark.parametrize("active", [0, -1, WARP_SIZE + 1])
    def test_active_bounds(self, active):
        with pytest.raises(ValueError, match="active thread count"):
            WarpOp(OpClass.ALU, dst=0, active=active)

    def test_partial_warp_memory_op(self):
        op = WarpOp(OpClass.STORE_GLOBAL, srcs=(1, 2), addrs=(0, 4, 8), active=3)
        assert op.active == 3
        assert op.addrs == (0, 4, 8)

    def test_regs_read_written(self):
        op = WarpOp(OpClass.ALU, dst=5, srcs=(1, 2, 3))
        assert op.regs_read == (1, 2, 3)
        assert op.regs_written == (5,)
        store = WarpOp(OpClass.STORE_SHARED, srcs=(7,), addrs=(0,) * WARP_SIZE)
        assert store.regs_written == ()


class TestTraceStats:
    def _mem(self, op, n=WARP_SIZE):
        return WarpOp(op, dst=0 if op.is_load else None, addrs=tuple(range(0, 4 * n, 4)))

    def test_counts_by_class(self):
        ops = [
            WarpOp(OpClass.ALU, dst=0),
            WarpOp(OpClass.ALU, dst=1),
            WarpOp(OpClass.SFU, dst=2),
            WarpOp(OpClass.TEX, dst=3),
            WarpOp(OpClass.BARRIER),
            self._mem(OpClass.LOAD_GLOBAL),
            self._mem(OpClass.STORE_GLOBAL),
            self._mem(OpClass.LOAD_SHARED),
            self._mem(OpClass.STORE_SHARED),
            self._mem(OpClass.LOAD_LOCAL),
            self._mem(OpClass.STORE_LOCAL),
        ]
        s = TraceStats.from_ops(ops)
        assert s.total_ops == 11
        assert s.alu_ops == 2
        assert s.sfu_ops == 1
        assert s.tex_ops == 1
        assert s.barriers == 1
        assert s.global_loads == s.global_stores == 1
        assert s.shared_loads == s.shared_stores == 1
        assert s.local_loads == s.local_stores == 1
        assert s.memory_ops == 6

    def test_empty_stream(self):
        s = TraceStats.from_ops([])
        assert s.total_ops == 0
        assert s.memory_ops == 0
