"""Tests for thread-count autotuning (paper Section 4.5 / ref [24])."""

import pytest

from repro.core import AllocationError, autotune_threads
from repro.core.partition import KB
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


class TestSweep:
    def test_points_are_distinct_residencies(self, rn):
        res = autotune_threads(rn.compiled("pcr"), 384 * KB)
        threads = [p.threads for p in res.points]
        assert len(threads) == len(set(threads))
        assert all(t % 256 == 0 for t in threads)  # pcr CTAs are 256 wide

    def test_best_is_minimal_cycles(self, rn):
        res = autotune_threads(rn.compiled("bfs"), 384 * KB)
        assert res.best.result.cycles == min(p.result.cycles for p in res.points)
        assert res.gain_over_max_threads >= 1.0

    def test_lower_thread_counts_grow_the_cache(self, rn):
        res = autotune_threads(rn.compiled("dgemm"), 384 * KB)
        pts = sorted(res.points, key=lambda p: p.threads)
        caches = [p.allocation.partition.cache_bytes for p in pts]
        assert caches == sorted(caches, reverse=True)

    def test_min_threads_respected(self, rn):
        res = autotune_threads(rn.compiled("vectoradd"), 384 * KB, min_threads=512)
        assert all(p.threads >= 512 for p in res.points)

    def test_unfittable_kernel_raises(self, rn):
        with pytest.raises(AllocationError):
            autotune_threads(rn.compiled("dgemm"), 8 * KB)
