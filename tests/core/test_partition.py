"""Unit tests for MemoryPartition and the design-point factories."""

import pytest

from repro.core import (
    DesignStyle,
    MemoryPartition,
    fermi_like,
    fermi_like_best_split,
    partitioned_baseline,
    partitioned_design,
)
from repro.core.partition import BANK_WIDTH, KB, NUM_BANKS


class TestBaseline:
    def test_section_2_1_capacities(self):
        p = partitioned_baseline()
        assert p.rf_kb == 256
        assert p.smem_kb == 64
        assert p.cache_kb == 64
        assert p.total_bytes == 384 * KB
        assert p.style is DesignStyle.PARTITIONED

    def test_bank_geometry_matches_paper(self):
        p = partitioned_baseline()
        # 32 MRF banks of 8 KB; 32 shared and 32 cache banks of 2 KB.
        assert p.rf_geometry.num_banks == NUM_BANKS
        assert p.rf_geometry.bank_kb == 8
        assert p.smem_geometry.bank_kb == 2
        assert p.cache_geometry.bank_kb == 2

    def test_tag_storage_is_1_125_kb(self):
        # Paper Section 4.1: 64 KB cache needs 1.125 KB of tags.
        assert partitioned_baseline().tag_bytes == int(1.125 * KB)


class TestUnifiedGeometry:
    def test_384kb_unified_bank_is_12kb(self):
        p = MemoryPartition(
            DesignStyle.UNIFIED,
            rf_bytes=228 * KB,
            smem_bytes=66 * KB + 512,
            cache_bytes=384 * KB - 228 * KB - 66 * KB - 512,
        )
        assert p.rf_geometry.bank_kb == 12
        assert p.smem_geometry == p.cache_geometry == p.rf_geometry

    def test_384kb_unified_tag_overhead(self):
        # Paper: up to 7.125 KB of tags if all 384 KB can become cache.
        p = MemoryPartition(
            DesignStyle.UNIFIED, rf_bytes=1, smem_bytes=0, cache_bytes=384 * KB - 1
        )
        assert p.tag_bytes == pytest.approx(7.125 * KB, rel=0.01)


class TestFermiLike:
    def test_splits(self):
        a = fermi_like(0)
        assert (a.smem_kb, a.cache_kb) == (96, 32)
        b = fermi_like(1)
        assert (b.smem_kb, b.cache_kb) == (32, 96)
        assert a.rf_kb == b.rf_kb == 256
        assert a.total_bytes == b.total_bytes == 384 * KB

    def test_pool_geometry_shared(self):
        p = fermi_like(0)
        assert p.smem_geometry == p.cache_geometry
        assert p.smem_geometry.bank_kb == 4  # 128 KB pool over 32 banks
        assert p.rf_geometry.bank_kb == 8

    def test_best_split_heuristic(self):
        assert fermi_like_best_split(80 * KB).smem_kb == 96
        assert fermi_like_best_split(10 * KB).smem_kb == 32


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MemoryPartition(DesignStyle.PARTITIONED, rf_bytes=-1, smem_bytes=0, cache_bytes=0)

    def test_zero_rf_rejected(self):
        with pytest.raises(ValueError, match="register file"):
            MemoryPartition(DesignStyle.PARTITIONED, rf_bytes=0, smem_bytes=1, cache_bytes=1)

    def test_custom_partitioned_design(self):
        p = partitioned_design(128, 32, 16)
        assert p.total_bytes == 176 * KB

    def test_describe_readable(self):
        text = partitioned_baseline().describe()
        assert "256" in text and "64" in text and "partitioned" in text

    def test_bank_width_constant(self):
        assert BANK_WIDTH == 16
