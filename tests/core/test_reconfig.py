"""Tests for per-kernel repartitioning (paper Section 4.4)."""

import pytest

from repro.core import (
    AllocationError,
    ReconfigPolicy,
    fixed_envelope_partition,
    run_application,
)
from repro.core.partition import KB
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


@pytest.fixture(scope="module")
def diverse_app(rn):
    # Register-heavy, scratch-heavy, cache-heavy: the worst case for a
    # single fixed partition.
    return [rn.compiled(n) for n in ("dgemm", "needle", "bfs")]


class TestFixedEnvelope:
    def test_envelope_covers_every_kernel(self, diverse_app):
        part = fixed_envelope_partition(diverse_app, 384 * KB)
        for k in diverse_app:
            tpc = k.launch.threads_per_cta
            assert part.rf_bytes >= 4 * k.regs_per_thread * tpc
            assert part.smem_bytes >= k.launch.smem_bytes_per_cta
        assert part.total_bytes == 384 * KB

    def test_single_kernel_envelope_equals_allocation(self, rn):
        k = rn.compiled("bfs")
        part = fixed_envelope_partition([k], 384 * KB)
        assert part.rf_kb == pytest.approx(36)

    def test_impossible_envelope_raises(self, diverse_app):
        with pytest.raises(AllocationError):
            fixed_envelope_partition(diverse_app, 16 * KB)

    def test_empty_application_rejected(self):
        with pytest.raises(ValueError):
            fixed_envelope_partition([], 384 * KB)


class TestPolicies:
    def test_per_kernel_beats_fixed_on_diverse_app(self, diverse_app):
        fixed = run_application(diverse_app, 384 * KB, "fixed")
        per = run_application(diverse_app, 384 * KB, "per-kernel")
        # Three kernels with conflicting demands: right-sizing wins big.
        assert per.speedup_over(fixed) > 1.2
        assert per.reconfigurations == 2
        assert per.drain_cycles > 0

    def test_uniform_app_needs_no_reconfiguration(self, rn):
        ks = [rn.compiled("vectoradd"), rn.compiled("vectoradd")]
        per = run_application(ks, 384 * KB, ReconfigPolicy.PER_KERNEL)
        assert per.reconfigurations == 0
        assert per.drain_cycles == 0

    def test_phase_partitions_follow_kernels(self, diverse_app):
        per = run_application(diverse_app, 384 * KB, "per-kernel")
        by_kernel = {p.kernel: p.partition for p in per.phases}
        assert by_kernel["dgemm"].rf_kb > by_kernel["bfs"].rf_kb
        assert by_kernel["needle"].smem_kb > by_kernel["dgemm"].smem_kb
        assert by_kernel["bfs"].cache_kb == max(
            p.partition.cache_kb for p in per.phases
        )

    def test_fixed_policy_uses_one_partition(self, diverse_app):
        fixed = run_application(diverse_app, 384 * KB, "fixed")
        parts = {p.partition for p in fixed.phases}
        assert len(parts) == 1
        assert fixed.reconfigurations == 0

    def test_totals_aggregate(self, diverse_app):
        per = run_application(diverse_app, 384 * KB, "per-kernel")
        assert per.total_cycles == pytest.approx(
            sum(p.result.cycles for p in per.phases) + per.drain_cycles
        )
        assert per.total_dram_accesses == sum(
            p.result.dram_accesses for p in per.phases
        )

    def test_string_policy_accepted(self, diverse_app):
        assert run_application(diverse_app, 384 * KB, "fixed").policy is ReconfigPolicy.FIXED
