"""Tests for the bank-layout renderer (paper Figures 5-6)."""

from repro.core import DesignStyle, MemoryPartition, fermi_like, partitioned_baseline
from repro.core.diagram import bank_layout
from repro.core.partition import KB


class TestLayouts:
    def test_baseline_shows_three_structures(self):
        out = bank_layout(partitioned_baseline())
        assert "register file: 32 banks of 8 KB" in out
        assert "shared memory: 32 banks of 2 KB" in out
        assert "cache: 32 banks of 2 KB" in out

    def test_unified_proportions(self):
        p = MemoryPartition(
            DesignStyle.UNIFIED,
            rf_bytes=96 * KB,
            smem_bytes=96 * KB,
            cache_bytes=192 * KB,
        )
        out = bank_layout(p, rows=8)
        grid_rows = [l for l in out.splitlines() if l.startswith("  ") and " = " not in l]
        glyphs = [r.strip()[0] for r in grid_rows]
        # 8 rows split 2 R / 2 S / 4 C.
        assert glyphs == ["R", "R", "S", "S", "C", "C", "C", "C"]
        assert "12 KB" in out

    def test_fermi_pool_described(self):
        out = bank_layout(fermi_like(0))
        assert "shared/cache pool" in out
        assert "split 96/32" in out

    def test_legend_present(self):
        for p in (partitioned_baseline(), fermi_like(1)):
            assert "R = registers" in bank_layout(p)
