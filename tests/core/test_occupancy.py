"""Unit tests for occupancy computation."""

import pytest

from repro.core import max_resident_threads, occupancy_limits, partitioned_baseline, partitioned_design
from repro.core.partition import KB


class TestBaselineOccupancy:
    def test_light_kernel_reaches_full_occupancy(self):
        # 9 regs/thread, no shared memory: neither resource binds.
        lim = occupancy_limits(
            partitioned_baseline(), regs_per_thread=9, threads_per_cta=256, smem_bytes_per_cta=0
        )
        assert lim.resident_threads == 1024
        assert lim.limiting_resource == "threads"

    def test_register_limited_kernel(self):
        # 80 regs/thread: 256 KB / (80*4*128) = 6.4 -> 6 CTAs of 128.
        lim = occupancy_limits(
            partitioned_baseline(), regs_per_thread=80, threads_per_cta=128, smem_bytes_per_cta=0
        )
        assert lim.ctas_by_registers == 6
        assert lim.resident_threads == 768
        assert lim.limiting_resource == "registers"

    def test_dgemm_baseline_is_smem_bound(self):
        # dgemm (Table 1): 57 regs and 66.5 B/thread of shared memory.
        # Its 228 KB register footprint fits the 256 KB baseline RF, but
        # 68 KB of shared memory does not fit 64 KB -> 7 CTAs resident.
        lim = occupancy_limits(
            partitioned_baseline(),
            regs_per_thread=57,
            threads_per_cta=128,
            smem_bytes_per_cta=int(66.5 * 128),
        )
        assert lim.ctas_by_registers == 8
        assert lim.ctas_by_smem == 7
        assert lim.limiting_resource == "shared memory"

    def test_shared_memory_limited_kernel(self):
        # needle-like: 8.25 KB of shared memory per 32-thread CTA.
        lim = occupancy_limits(
            partitioned_baseline(),
            regs_per_thread=18,
            threads_per_cta=32,
            smem_bytes_per_cta=int(8.25 * KB),
        )
        assert lim.ctas_by_smem == 7  # 64 KB / 8.25 KB
        assert lim.resident_threads == 7 * 32
        assert lim.limiting_resource == "shared memory"

    def test_thread_target_sweep(self):
        for target in (256, 512, 768, 1024):
            t = max_resident_threads(
                partitioned_baseline(),
                regs_per_thread=9,
                threads_per_cta=256,
                smem_bytes_per_cta=0,
                thread_target=target,
            )
            assert t == target


class TestEdgeCases:
    def test_zero_residency_when_cta_does_not_fit(self):
        tiny = partitioned_design(16, 1, 1)
        lim = occupancy_limits(
            tiny, regs_per_thread=64, threads_per_cta=256, smem_bytes_per_cta=0
        )
        assert lim.resident_ctas == 0

    def test_invalid_arguments(self):
        p = partitioned_baseline()
        with pytest.raises(ValueError):
            occupancy_limits(p, 0, 32, 0)
        with pytest.raises(ValueError):
            occupancy_limits(p, 8, 0, 0)
        with pytest.raises(ValueError):
            occupancy_limits(p, 8, 32, -4)

    def test_target_never_exceeds_hardware_cap(self):
        t = max_resident_threads(
            partitioned_baseline(),
            regs_per_thread=9,
            threads_per_cta=256,
            smem_bytes_per_cta=0,
            thread_target=4096,
        )
        assert t == 1024
