"""Unit and property tests for the Section 4.5 allocation algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllocationError, DesignStyle, allocate_unified
from repro.core.partition import KB, MAX_THREADS


class TestPaperExamples:
    """Figure 8 configurations the paper reports for the 384 KB design."""

    def test_bfs_allocation(self):
        # bfs: 9 regs/thread, no shared memory -> 36 KB RF at 1024 threads,
        # remainder (348 KB) becomes cache.
        a = allocate_unified(384 * KB, regs_per_thread=9, threads_per_cta=256)
        assert a.resident_threads == 1024
        assert a.partition.rf_kb == 36
        assert a.partition.smem_kb == 0
        assert a.partition.cache_kb == 384 - 36

    def test_dgemm_allocation(self):
        # dgemm: 57 regs/thread -> 228 KB RF at 1024 threads.
        a = allocate_unified(
            384 * KB,
            regs_per_thread=57,
            threads_per_cta=128,
            smem_bytes_per_cta=int(66.5 * 128),
        )
        assert a.resident_threads == 1024
        assert a.partition.rf_kb == 228
        assert a.partition.cache_bytes >= 0

    def test_needle_like_allocation_devotes_bulk_to_smem(self):
        # needle: few registers, huge shared memory per CTA.
        a = allocate_unified(
            384 * KB,
            regs_per_thread=18,
            threads_per_cta=32,
            smem_bytes_per_cta=264 * KB // 32,
        )
        assert a.partition.smem_bytes > a.partition.rf_bytes

    def test_style_is_unified(self):
        a = allocate_unified(384 * KB, regs_per_thread=16, threads_per_cta=256)
        assert a.partition.style is DesignStyle.UNIFIED


class TestConstraints:
    def test_capacity_conservation(self):
        a = allocate_unified(
            256 * KB, regs_per_thread=24, threads_per_cta=192, smem_bytes_per_cta=4096
        )
        p = a.partition
        assert p.total_bytes == 256 * KB

    def test_thread_target_caps_residency(self):
        a = allocate_unified(
            384 * KB, regs_per_thread=9, threads_per_cta=256, thread_target=512
        )
        assert a.resident_threads == 512
        # Freed register capacity flows to cache.
        full = allocate_unified(384 * KB, regs_per_thread=9, threads_per_cta=256)
        assert a.partition.cache_bytes > full.partition.cache_bytes

    def test_cta_granularity(self):
        a = allocate_unified(100 * KB, regs_per_thread=40, threads_per_cta=192)
        assert a.resident_threads % 192 == 0

    def test_unfittable_kernel_raises(self):
        with pytest.raises(AllocationError):
            allocate_unified(
                64 * KB,
                regs_per_thread=64,
                threads_per_cta=512,
                smem_bytes_per_cta=0,
            )

    def test_thread_target_below_cta_raises(self):
        with pytest.raises(AllocationError):
            allocate_unified(
                384 * KB, regs_per_thread=8, threads_per_cta=512, thread_target=256
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(total_bytes=0, regs_per_thread=8, threads_per_cta=32),
            dict(total_bytes=1024, regs_per_thread=0, threads_per_cta=32),
            dict(total_bytes=1024, regs_per_thread=8, threads_per_cta=0),
            dict(
                total_bytes=1024,
                regs_per_thread=8,
                threads_per_cta=32,
                smem_bytes_per_cta=-1,
            ),
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            allocate_unified(**kwargs)


@given(
    total_kb=st.sampled_from([128, 256, 384, 512]),
    regs=st.integers(min_value=1, max_value=64),
    tpc=st.sampled_from([32, 64, 128, 256, 512]),
    smem_per_thread=st.integers(min_value=0, max_value=264),
    target=st.sampled_from([256, 512, 768, 1024]),
)
@settings(max_examples=200, deadline=None)
def test_allocation_invariants(total_kb, regs, tpc, smem_per_thread, target):
    total = total_kb * KB
    try:
        a = allocate_unified(
            total,
            regs_per_thread=regs,
            threads_per_cta=tpc,
            smem_bytes_per_cta=smem_per_thread * tpc,
            thread_target=target,
        )
    except AllocationError:
        # Must genuinely not fit: either one CTA exceeds the pool or the
        # thread target is below one CTA.
        per_cta = 4 * regs * tpc + smem_per_thread * tpc
        assert per_cta > total or min(target, MAX_THREADS) < tpc
        return
    p = a.partition
    # Conservation and non-negativity.
    assert p.total_bytes == total
    assert p.cache_bytes >= 0
    # Registers and shared memory exactly cover the residency.
    assert p.rf_bytes == 4 * regs * a.resident_threads
    assert p.smem_bytes == smem_per_thread * a.resident_threads
    # Residency respects caps and granularity.
    assert a.resident_threads <= min(target, MAX_THREADS)
    assert a.resident_threads % tpc == 0
    # Maximality: one more CTA must not fit.
    extra = a.resident_ctas + 1
    per_cta = 4 * regs * tpc + smem_per_thread * tpc
    assert extra * per_cta > total or extra * tpc > min(target, MAX_THREADS)
