"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("needle", "dgemm", "vectoradd", "gpu-mummer"):
            assert name in out


class TestRun:
    def test_unified_run_prints_allocation_and_comparison(self, capsys):
        assert main(["run", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "allocation:" in out
        assert "speedup" in out

    def test_baseline_run(self, capsys):
        assert main(["run", "vectoradd", "--scale", "tiny", "--design", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "speedup" not in out  # nothing to compare against

    def test_fermi_run(self, capsys):
        assert main(["run", "bfs", "--scale", "tiny", "--design", "fermi"]) == 0
        assert "fermi-like" in capsys.readouterr().out

    def test_thread_and_reg_overrides(self, capsys):
        assert main(
            ["run", "pcr", "--scale", "tiny", "--threads", "256", "--regs", "24"]
        ) == 0
        assert "256 threads" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(KeyError):
            main(["run", "nosuch", "--scale", "tiny"])


class TestExperiment:
    def test_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "SRAM bank access energy" in capsys.readouterr().out

    def test_figure8(self, capsys):
        assert main(["experiment", "figure8", "--scale", "tiny"]) == 0
        assert "384KB unified memory partitioning" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "nosuch"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestAutotuneAndSweep:
    def test_autotune(self, capsys):
        assert main(["autotune", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "gain over max-threads" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "bfs", "--scale", "tiny", "--capacities", "128,384"]
        ) == 0
        out = capsys.readouterr().out
        assert "128" in out and "384" in out

    def test_sweep_reports_unfittable(self, capsys):
        assert main(
            ["sweep", "dgemm", "--scale", "tiny", "--capacities", "16,384"]
        ) == 0
        assert "does not fit" in capsys.readouterr().out
