"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("needle", "dgemm", "vectoradd", "gpu-mummer"):
            assert name in out


class TestRun:
    def test_unified_run_prints_allocation_and_comparison(self, capsys):
        assert main(["run", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "allocation:" in out
        assert "speedup" in out

    def test_baseline_run(self, capsys):
        assert main(["run", "vectoradd", "--scale", "tiny", "--design", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "speedup" not in out  # nothing to compare against

    def test_fermi_run(self, capsys):
        assert main(["run", "bfs", "--scale", "tiny", "--design", "fermi"]) == 0
        assert "fermi-like" in capsys.readouterr().out

    def test_thread_and_reg_overrides(self, capsys):
        assert main(
            ["run", "pcr", "--scale", "tiny", "--threads", "256", "--regs", "24"]
        ) == 0
        assert "256 threads" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(KeyError):
            main(["run", "nosuch", "--scale", "tiny"])


class TestChip:
    def test_two_sm_run_prints_per_sm_table_and_energy(self, capsys):
        assert main(
            ["chip", "matrixmul", "--scale", "tiny", "--sms", "2", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "Per-SM results" in out
        assert "2 SMs" in out
        assert "channel utilisation" in out
        assert "energy (measured per-SM)" in out

    def test_partitioned_dram_skips_channel_report(self, capsys):
        assert main(
            ["chip", "matrixmul", "--scale", "tiny", "--sms", "2",
             "--partitioned-dram", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "channel utilisation" not in out

    def test_metrics_and_manifest(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        metrics = tmp_path / "chip.json"
        assert main(
            ["chip", "vectoradd", "--scale", "tiny", "--sms", "2",
             "--design", "baseline", "--cache-dir", str(cache),
             "--metrics-out", str(metrics), "-q"]
        ) == 0
        capsys.readouterr()
        payload = json.loads(metrics.read_text())
        assert payload["chip_version"] == 2
        assert len(payload["per_sm"]) == 2
        assert payload["config"]["num_sms"] == 2
        assert len(list((cache / "manifests").glob("run-*.json"))) == 1

    def test_metrics_out_identical_across_jobs(self, capsys, tmp_path):
        texts = []
        for jobs in ("1", "4"):
            metrics = tmp_path / f"chip-j{jobs}.json"
            assert main(
                ["chip", "vectoradd", "--scale", "tiny", "--sms", "2",
                 "--design", "baseline", "--jobs", jobs,
                 "--metrics-out", str(metrics), "-q"]
            ) == 0
            capsys.readouterr()
            texts.append(metrics.read_bytes())
        assert texts[0] == texts[1]

    def test_profile_flag_adds_top_stall_and_rollup(self, capsys):
        assert main(
            ["chip", "matrixmul", "--scale", "tiny", "--sms", "2",
             "--design", "baseline", "--profile", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "top stall" in out
        assert "chip stall roll-up" in out
        assert "issue " in out

    def test_without_profile_no_stall_column(self, capsys):
        assert main(
            ["chip", "matrixmul", "--scale", "tiny", "--sms", "2",
             "--design", "baseline", "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "top stall" not in out

    def test_profile_manifest_records_chip_stats(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["chip", "vectoradd", "--scale", "tiny", "--sms", "2",
             "--design", "baseline", "--profile",
             "--cache-dir", str(cache), "-q"]
        ) == 0
        capsys.readouterr()
        manifest = json.loads(
            next((cache / "manifests").glob("run-*.json")).read_text()
        )
        chip = manifest["chip"]
        assert len(chip["channels"]["bytes"]) == 8
        assert chip["dispatcher"]["ctas_dispatched"] > 0
        assert len(chip["dispatcher"]["ctas_per_sm"]) == 2


class TestExperiment:
    def test_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "SRAM bank access energy" in capsys.readouterr().out

    def test_figure8(self, capsys):
        assert main(["experiment", "figure8", "--scale", "tiny"]) == 0
        assert "384KB unified memory partitioning" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "nosuch"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_metrics_out_identical_across_jobs(self, capsys, tmp_path):
        m1, m4 = tmp_path / "m1.json", tmp_path / "m4.json"
        argv = ["experiment", "figure8", "--scale", "tiny", "-q"]
        assert main(argv + ["--jobs", "1", "--metrics-out", str(m1)]) == 0
        assert main(argv + ["--jobs", "4", "--metrics-out", str(m4)]) == 0
        capsys.readouterr()
        assert m1.read_bytes() == m4.read_bytes()
        payload = json.loads(m1.read_text())
        assert payload["schema"] == "repro.obs.run_metrics/1"
        assert payload["totals"]["simulations"] == len(payload["simulations"])
        assert payload["experiments"][0]["id"] == "figure8"

    def test_cache_dir_writes_manifest(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["experiment", "table4", "--cache-dir", str(cache)]
        ) == 0
        capsys.readouterr()
        manifests = list((cache / "manifests").glob("run-*.json"))
        assert len(manifests) == 1
        m = json.loads(manifests[0].read_text())
        assert m["schema"] == "repro.obs.manifest/1"
        assert m["command"].startswith("repro experiment table4")
        assert m["versions"]["result_format"] >= 2
        assert m["sm_config_digest"]
        assert m["cache"]["entries"]


class TestSuite:
    def test_only_selects_experiments(self, capsys):
        assert main(["suite", "--scale", "tiny", "--only", " table4 ,"]) == 0
        assert "SRAM bank access energy" in capsys.readouterr().out

    def test_empty_only_is_a_clean_error(self, capsys):
        assert main(["suite", "--scale", "tiny", "--only", " , "]) == 2
        assert "selects no experiments" in capsys.readouterr().err

    def test_unknown_only_rejected(self, capsys):
        assert main(["suite", "--scale", "tiny", "--only", "table4,nosuch"]) == 2
        assert "unknown experiment(s): nosuch" in capsys.readouterr().err


class TestProfileAndTrace:
    def test_profile_prints_attribution(self, capsys):
        assert main(
            ["profile", "matrixmul", "--scale", "tiny", "--design", "baseline"]
        ) == 0
        captured = capsys.readouterr()
        assert "Stall attribution" in captured.out
        for cause in ("issue", "raw", "memory", "issue_port", "barrier"):
            assert cause in captured.out
        assert "conservation" in captured.err

    def test_profile_writes_metrics_and_trace(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main(
            ["profile", "vectoradd", "--scale", "tiny", "--design", "baseline",
             "--window", "500", "--metrics-out", str(metrics),
             "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro.obs.metrics/1"
        assert payload["window"] == 500
        assert payload["samples"]
        from repro.obs import validate_trace

        assert validate_trace(json.loads(trace.read_text())) == []

    def test_trace_command_writes_valid_file(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "needle", "--scale", "tiny", "--design", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        from repro.obs import validate_trace

        assert validate_trace(
            json.loads((tmp_path / "needle.trace.json").read_text())
        ) == []

    @pytest.mark.parametrize("command", ("profile", "trace"))
    def test_no_engine_fallback_note(self, capsys, tmp_path, command):
        """Instrumented columnar runs replay; no fallback note remains."""
        argv = [command, "vectoradd", "--scale", "tiny",
                "--design", "baseline", "--engine", "columnar", "-v"]
        if command == "trace":
            argv += ["--out", str(tmp_path / "t.json")]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "falls back" not in err
        assert "event engine" not in err

    def test_profile_outputs_identical_across_engines(self, capsys, tmp_path):
        """--metrics-out / --profile-out byte-identity, event vs columnar."""
        payloads = {}
        for engine in ("columnar", "event"):
            metrics = tmp_path / f"m-{engine}.json"
            profile = tmp_path / f"p-{engine}.json"
            assert main(
                ["profile", "matrixmul", "--scale", "tiny",
                 "--design", "baseline", "--engine", engine,
                 "--window", "500", "--metrics-out", str(metrics),
                 "--profile-out", str(profile), "-q"]
            ) == 0
            capsys.readouterr()
            payloads[engine] = (metrics.read_bytes(), profile.read_bytes())
        assert payloads["columnar"] == payloads["event"]

    def test_trace_respects_max_events(self, capsys, tmp_path):
        out_path = tmp_path / "capped.json"
        assert main(
            ["trace", "bfs", "--scale", "tiny", "--design", "baseline",
             "--out", str(out_path), "--max-events", "100"]
        ) == 0
        assert "dropped" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert len(payload["traceEvents"]) == 100
        assert payload["otherData"]["droppedEvents"] > 0


class TestChipScopeProfileAndTrace:
    @pytest.mark.parametrize("command", ("profile", "trace"))
    @pytest.mark.parametrize(
        "flags",
        (["--total-bw", "128"], ["--channels", "4"], ["--partitioned-dram"]),
        ids=("total-bw", "channels", "partitioned-dram"),
    )
    def test_chip_only_flags_require_sms(self, capsys, command, flags):
        with pytest.raises(SystemExit) as exc:
            main([command, "vectoradd", "--scale", "tiny",
                  "--design", "baseline", *flags])
        assert exc.value.code == 2
        assert "--sms" in capsys.readouterr().err

    def test_chip_profile_prints_rollup_and_per_sm(self, capsys):
        assert main(
            ["profile", "matrixmul", "--scale", "tiny", "--design", "baseline",
             "--sms", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "Chip stall attribution" in captured.out
        assert "sm0:" in captured.out
        assert "sm1:" in captured.out
        assert "sum_sm(issue + stalls)" in captured.err

    def test_chip_profile_writes_chipmetrics_and_trace(self, capsys, tmp_path):
        metrics = tmp_path / "cm.json"
        trace = tmp_path / "ct.json"
        assert main(
            ["profile", "vectoradd", "--scale", "tiny", "--design", "baseline",
             "--sms", "2", "--window", "500",
             "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        from repro.obs import validate_chipmetrics, validate_trace

        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro.obs.chipmetrics/1"
        assert payload["num_sms"] == 2
        assert validate_chipmetrics(payload) == []
        assert validate_trace(json.loads(trace.read_text())) == []

    def test_chip_profile_metrics_identical_across_engines(
        self, capsys, tmp_path
    ):
        payloads = {}
        for engine in ("columnar", "event"):
            metrics = tmp_path / f"cm-{engine}.json"
            assert main(
                ["profile", "needle", "--scale", "tiny", "--design", "baseline",
                 "--sms", "2", "--window", "500", "--engine", engine,
                 "--metrics-out", str(metrics), "-q"]
            ) == 0
            capsys.readouterr()
            payloads[engine] = metrics.read_bytes()
        assert payloads["columnar"] == payloads["event"]

    def test_chip_trace_covers_all_tracks(self, capsys, tmp_path):
        out_path = tmp_path / "chip.trace.json"
        assert main(
            ["trace", "matrixmul", "--scale", "tiny", "--design", "baseline",
             "--sms", "2", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 SMs" in out
        payload = json.loads(out_path.read_text())
        assert payload["otherData"]["schema"] == "repro.obs.trace/2"
        events = payload["traceEvents"]
        # SM warp tracks, both DRAM-channel and dispatcher processes.
        assert {e["pid"] for e in events if e.get("cat") == "issue"} == {0, 1}
        assert any(e["pid"] == 2 and e["ph"] == "X" for e in events)  # channels
        assert any(
            e["pid"] == 3 and e["ph"] == "X" and e["name"].startswith("cta")
            for e in events
        )

    def test_chip_trace_partitioned_dram(self, capsys, tmp_path):
        out_path = tmp_path / "part.trace.json"
        assert main(
            ["trace", "vectoradd", "--scale", "tiny", "--design", "baseline",
             "--sms", "2", "--partitioned-dram", "--out", str(out_path)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        dram = [e for e in payload["traceEvents"]
                if e["pid"] == 2 and e["ph"] == "X"]
        assert {e["tid"] for e in dram} == {0, 1}


class TestVerbosity:
    def test_quiet_suppresses_summary(self, capsys):
        assert main(["experiment", "table4", "-q"]) == 0
        assert "total:" not in capsys.readouterr().err

    def test_default_prints_summary(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "total:" in capsys.readouterr().err


class TestAutotuneAndSweep:
    def test_autotune(self, capsys):
        assert main(["autotune", "vectoradd", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "gain over max-threads" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "bfs", "--scale", "tiny", "--capacities", "128,384"]
        ) == 0
        out = capsys.readouterr().out
        assert "128" in out and "384" in out

    def test_sweep_reports_unfittable(self, capsys):
        assert main(
            ["sweep", "dgemm", "--scale", "tiny", "--capacities", "16,384"]
        ) == 0
        assert "does not fit" in capsys.readouterr().out


class TestSpansFlags:
    def test_experiment_with_spans_writes_log_and_timeline(
        self, capsys, tmp_path
    ):
        spans = tmp_path / "spans.json"
        timeline = tmp_path / "sweep.trace.json"
        cache = tmp_path / "cache"
        assert main(
            ["experiment", "figure7", "--scale", "tiny", "--jobs", "2",
             "--spans-out", str(spans), "--spans-trace-out", str(timeline),
             "--cache-dir", str(cache)]
        ) == 0
        err = capsys.readouterr().err
        assert "[spans]" in err
        from repro.obs.spans import validate_spans
        from repro.obs import validate_trace

        payload = json.loads(spans.read_text())
        assert validate_spans(payload) == []
        assert payload["phases"][0]["label"] == "figure7"
        assert payload["command"].startswith("repro experiment figure7")
        assert validate_trace(json.loads(timeline.read_text())) == []
        # Also persisted next to the manifests, with an index.
        stored = list((cache / "spans").glob("spans-*.json"))
        assert len(stored) == 1
        assert (cache / "spans" / "index.json").exists()

    def test_spans_off_by_default(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["experiment", "figure7", "--scale", "tiny",
             "--cache-dir", str(cache)]
        ) == 0
        assert "[spans]" not in capsys.readouterr().err
        assert not (cache / "spans").exists()

    def test_metrics_identical_with_and_without_spans(self, capsys, tmp_path):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        assert main(["experiment", "figure7", "--scale", "tiny",
                     "--metrics-out", str(plain)]) == 0
        assert main(["experiment", "figure7", "--scale", "tiny", "--spans",
                     "--jobs", "2", "--metrics-out", str(traced)]) == 0
        capsys.readouterr()
        assert plain.read_bytes() == traced.read_bytes()


class TestCompare:
    def _metrics(self, tmp_path, name="m.json"):
        path = tmp_path / name
        assert main(["experiment", "figure7", "--scale", "tiny",
                     "--metrics-out", str(path)]) == 0
        return path

    def test_self_compare_reports_zero_delta(self, capsys, tmp_path):
        m = self._metrics(tmp_path)
        capsys.readouterr()
        diff_out = tmp_path / "d.json"
        assert main(["compare", str(m), str(m), "--label-a", "base",
                     "--label-b", "cand", "--json-out", str(diff_out)]) == 0
        out = capsys.readouterr().out
        assert "delta +0" in out
        assert "speedup 1.000x" in out
        diff = json.loads(diff_out.read_text())
        assert diff["schema"] == "repro.obs.diff/1"
        assert diff["cycles"]["delta"] == 0.0
        assert diff["simulations"]["only_a"] == []

    def test_profile_self_compare_reverifies_conservation(
        self, capsys, tmp_path
    ):
        prof = tmp_path / "p.json"
        assert main(["profile", "vectoradd", "--scale", "tiny", "--design",
                     "baseline", "--profile-out", str(prof)]) == 0
        capsys.readouterr()
        assert main(["compare", str(prof), str(prof)]) == 0
        out = capsys.readouterr().out
        assert "re-verified exactly" in out
        assert "delta +0" in out

    def test_conservation_violation_exits_one(self, capsys, tmp_path):
        prof = tmp_path / "p.json"
        assert main(["profile", "vectoradd", "--scale", "tiny", "--design",
                     "baseline", "--profile-out", str(prof)]) == 0
        payload = json.loads(prof.read_text())
        payload["issue_cycles"] += 1.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["compare", str(prof), str(bad)]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_mixed_kinds_exit_two(self, capsys, tmp_path):
        m = self._metrics(tmp_path)
        prof = tmp_path / "p.json"
        assert main(["profile", "vectoradd", "--scale", "tiny", "--design",
                     "baseline", "--profile-out", str(prof)]) == 0
        capsys.readouterr()
        assert main(["compare", str(m), str(prof)]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_unreadable_payload_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        with pytest.raises(SystemExit) as exc:
            main(["compare", str(missing), str(missing)])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_chip_result_compare(self, capsys, tmp_path):
        m = tmp_path / "chip.json"
        assert main(["chip", "matrixmul", "--scale", "tiny", "--sms", "2",
                     "--metrics-out", str(m), "-q"]) == 0
        capsys.readouterr()
        assert main(["compare", str(m), str(m)]) == 0
        assert "speedup 1.000x" in capsys.readouterr().out


class TestTraceCompare:
    def test_pivots_two_traces(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            assert main(["trace", "vectoradd", "--scale", "tiny", "--design",
                         "baseline", "--out", str(path)]) == 0
        out_path = tmp_path / "pivot.json"
        capsys.readouterr()
        assert main(["trace", "--compare", str(a), str(b),
                     "--out", str(out_path)]) == 0
        assert "pivoted" in capsys.readouterr().out
        from repro.obs import validate_trace

        pivot = json.loads(out_path.read_text())
        assert validate_trace(pivot) == []
        assert pivot["otherData"]["schema"] == "repro.obs.trace.pivot/1"

    def test_no_benchmark_and_no_compare_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace"])
        assert exc.value.code == 2
        capsys.readouterr()
