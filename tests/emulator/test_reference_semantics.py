"""Property test: SIMT execution matches per-thread sequential semantics.

For race-free programs (each lane writes only its own locations), the
warp-lockstep execution with divergence masks must produce exactly the
memory image of running every thread to completion one at a time.  A
tiny sequential interpreter provides the oracle; hypothesis generates
random structured programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import Program, Special, emulate_warp
from repro.emulator.ast import (
    _OPS,
    Assign,
    BinOp,
    Const,
    If,
    LoadGlobal,
    Special as Sp,
    StoreGlobal,
    Var,
    While,
)
from repro.emulator.machine import _MASK32, MemoryImage

OUT = 0x10000
IN = 0x20000


def interpret_thread(stmts, tid: int, mem: dict[int, int], background) -> None:
    """Sequential per-thread oracle."""
    env: dict[str, int] = {}

    def ev(e) -> int:
        if isinstance(e, Const):
            return e.value & _MASK32
        if isinstance(e, Sp):
            return tid  # programs below only use gtid/tid (equal: 1 warp)
        if isinstance(e, Var):
            return env[e.name]
        if isinstance(e, BinOp):
            return _OPS[e.op](ev(e.left), ev(e.right)) & _MASK32
        raise AssertionError(e)

    def run(block):
        for s in block:
            if isinstance(s, Assign):
                env[s.var] = ev(s.expr)
            elif isinstance(s, StoreGlobal):
                mem[ev(s.addr)] = ev(s.value)
            elif isinstance(s, LoadGlobal):
                a = ev(s.addr)
                env[s.var] = mem.get(a, background(a) & _MASK32)
            elif isinstance(s, If):
                run(s.then if ev(s.cond) else s.orelse)
            elif isinstance(s, While):
                for _ in range(s.max_iterations):
                    if not ev(s.cond):
                        break
                    run(s.body)
            else:
                raise AssertionError(s)

    run(stmts)


@st.composite
def programs(draw):
    """Random race-free structured programs over tid."""
    p = Program()
    t = Special("tid")
    x = p.assign(t * draw(st.integers(1, 5)) + draw(st.integers(0, 9)), name="x")
    depth = draw(st.integers(1, 3))
    for i in range(depth):
        kind = draw(st.integers(0, 3))
        k = draw(st.integers(0, 31))
        if kind == 0:
            with p.if_(Var("x").gt(k)):
                p.assign(Var("x") - draw(st.integers(0, 3)), name="x")
            with p.else_():
                p.assign(Var("x") + draw(st.integers(0, 3)), name="x")
        elif kind == 1:
            n = p.assign(t % draw(st.integers(1, 5)), name=f"n{i}")
            with p.while_(Var(f"n{i}").gt(0), max_iterations=40):
                p.assign(Var("x") + Var(f"n{i}"), name="x")
                p.assign(Var(f"n{i}") - 1, name=f"n{i}")
        elif kind == 2:
            v = p.load_global(t * 4 + IN + draw(st.integers(0, 2)) * 256)
            p.assign(Var("x") ^ v, name="x")
        else:
            p.assign(Var("x") * draw(st.integers(1, 3)) + t, name="x")
    p.store_global(t * 4 + OUT, Var("x"))
    return p


@given(programs())
@settings(max_examples=60, deadline=None)
def test_simt_matches_sequential(p):
    stmts = p.statements
    gmem = MemoryImage()
    emulate_warp(p, gmem=gmem)
    background = gmem._init
    ref: dict[int, int] = {}
    for tid in range(32):
        interpret_thread(stmts, tid, ref, background)
    for tid in range(32):
        assert gmem.read(OUT + 4 * tid) == ref[OUT + 4 * tid], f"lane {tid}"


@given(programs())
@settings(max_examples=25, deadline=None)
def test_emulated_programs_compile_and_simulate(p):
    from repro.compiler import compile_kernel
    from repro.core import partitioned_baseline
    from repro.emulator import emulate_kernel
    from repro.sm import simulate

    trace = emulate_kernel(p, threads_per_cta=32, num_ctas=2)
    r = simulate(compile_kernel(trace), partitioned_baseline())
    assert r.instructions == trace.total_ops
