"""Tests for the per-thread SIMT emulator."""

import pytest

from repro.emulator import EmulationError, Program, Special, emulate_kernel, emulate_warp
from repro.emulator.machine import MemoryImage
from repro.isa import OpClass


def ops_of(trace):
    return [op.op for op in trace]


class TestExpressions:
    def test_arithmetic_values(self):
        p = Program()
        gtid = Special("gtid")
        p.store_global(gtid * 4 + 0x1000, gtid * 3 + 1)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem)
        for lane in range(32):
            assert gmem.read(0x1000 + 4 * lane) == 3 * lane + 1

    def test_each_operator_emits_one_op(self):
        p = Program()
        t = Special("tid")
        p.assign(t * 4 + 8 - 2)  # three operators
        trace = emulate_warp(p)
        binops = [o for o in trace if o.op is OpClass.ALU and len(o.srcs) == 2]
        consts = [o for o in trace if o.op is OpClass.ALU and not o.srcs]
        assert len(binops) == 3
        assert len(consts) == 4  # tid plus the constants 4, 8, 2

    def test_constants_materialised_once(self):
        p = Program()
        t = Special("tid")
        p.assign(t * 4)
        p.assign(t + 4)  # the 4 and tid registers are reused
        trace = emulate_warp(p)
        consts = [o for o in trace if o.op is OpClass.ALU and not o.srcs]
        assert len(consts) == 2

    def test_division_uses_sfu(self):
        p = Program()
        p.assign(Special("tid") // 3)
        trace = emulate_warp(p)
        assert any(o.op is OpClass.SFU for o in trace)

    def test_division_by_zero_raises(self):
        p = Program()
        p.assign(Special("tid") // 0)
        with pytest.raises(EmulationError, match="division by zero"):
            emulate_warp(p)

    def test_comparisons_yield_01(self):
        p = Program()
        flag = p.assign(Special("tid").lt(4))
        p.store_global(Special("tid") * 4, flag)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem)
        assert gmem.read(0) == 1
        assert gmem.read(4 * 10) == 0

    def test_values_wrap_to_32_bits(self):
        p = Program()
        p.store_global(Special("tid") * 4, (Special("tid") + 1) * 0x7FFFFFFF * 4)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem)
        assert gmem.read(0) == (0x7FFFFFFF * 4) & 0xFFFFFFFF

    def test_undefined_variable_rejected(self):
        from repro.emulator import Assign, Var

        with pytest.raises(EmulationError, match="undefined variable"):
            emulate_warp([Assign("x", Var("nope"))])


class TestDivergence:
    def test_if_splits_active_mask(self):
        p = Program()
        t = Special("tid")
        with p.if_(t.lt(5)):
            p.store_global(t * 4 + 0x100, t)
        trace = emulate_warp(p)
        store = [o for o in trace if o.op is OpClass.STORE_GLOBAL][0]
        assert store.active == 5

    def test_else_gets_complement(self):
        p = Program()
        t = Special("tid")
        with p.if_(t.lt(5)):
            p.store_global(t * 4 + 0x100, t)
        with p.else_():
            p.store_global(t * 4 + 0x200, t)
        trace = emulate_warp(p)
        stores = [o for o in trace if o.op is OpClass.STORE_GLOBAL]
        assert [s.active for s in stores] == [5, 27]

    def test_reconvergence_restores_full_mask(self):
        p = Program()
        t = Special("tid")
        with p.if_(t.lt(3)):
            p.assign(t + 1)
        p.store_global(t * 4 + 0x300, t)  # after the if: full warp again
        trace = emulate_warp(p)
        store = [o for o in trace if o.op is OpClass.STORE_GLOBAL][-1]
        assert store.active == 32

    def test_predicated_assign_merges_lanes(self):
        p = Program()
        t = Special("tid")
        x = p.assign(t * 2, name="x")
        with p.if_(t.lt(4)):
            p.assign(t * 100, name="x")
        p.store_global(t * 4 + 0x400, x)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem)
        assert gmem.read(0x400 + 4 * 2) == 200  # taken lane updated
        assert gmem.read(0x400 + 4 * 10) == 20  # untaken lane kept x = 2*t

    def test_empty_branch_emits_nothing(self):
        p = Program()
        t = Special("tid")
        with p.if_(t.gt(1000)):  # no lane takes it
            p.store_global(t * 4, t)
        trace = emulate_warp(p)
        assert not any(o.op is OpClass.STORE_GLOBAL for o in trace)

    def test_nested_divergence(self):
        p = Program()
        t = Special("tid")
        with p.if_(t.lt(16)):
            with p.if_(t.lt(4)):
                p.store_global(t * 4 + 0x500, t)
        trace = emulate_warp(p)
        store = [o for o in trace if o.op is OpClass.STORE_GLOBAL][0]
        assert store.active == 4


class TestLoops:
    def test_collatz_style_loop_shrinks_mask(self):
        # Each lane iterates tid times: the while mask shrinks as lanes
        # finish, and op active counts decrease monotonically.
        p = Program()
        t = Special("tid")
        n = p.assign(t % 4, name="n")
        with p.while_(n.gt(0)):
            p.assign(n - 1, name="n")
        trace = emulate_warp(p)
        actives = [o.active for o in trace if o.op is OpClass.ALU]
        assert min(actives) < 32  # divergence happened
        assert actives[-1] <= 16  # the deepest iteration has few lanes

    def test_loop_computes_correct_values(self):
        # sum(0..tid%4) by repeated decrement.
        p = Program()
        t = Special("tid")
        n = p.assign(t % 4, name="n")
        acc = p.assign(t * 0, name="acc")
        with p.while_(n.gt(0)):
            p.assign(acc + n, name="acc")
            p.assign(n - 1, name="n")
        p.store_global(t * 4 + 0x600, acc)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem)
        for lane in range(8):
            k = lane % 4
            assert gmem.read(0x600 + 4 * lane) == k * (k + 1) // 2

    def test_runaway_loop_guard(self):
        p = Program()
        one = p.assign(Special("tid") * 0 + 1, name="one")
        with p.while_(one.gt(0), max_iterations=10):
            p.assign(one + 0, name="one")
        with pytest.raises(EmulationError, match="exceeded"):
            emulate_warp(p)


class TestMemoryAndBarriers:
    def test_shared_roundtrip(self):
        p = Program()
        t = Special("tid")
        p.store_shared(t * 4, t * 7)
        p.barrier()
        v = p.load_shared(((t + 1) % 32) * 4)
        p.store_global(t * 4 + 0x700, v)
        gmem = MemoryImage()
        emulate_warp(p, gmem=gmem, smem_bytes=128)
        assert gmem.read(0x700) == 7  # lane 0 reads lane 1's value

    def test_shared_out_of_range(self):
        p = Program()
        p.store_shared(Special("tid") * 4 + 4096, Special("tid"))
        with pytest.raises(EmulationError, match="out of range"):
            emulate_warp(p, smem_bytes=128)

    def test_divergent_barrier_rejected(self):
        p = Program()
        with p.if_(Special("tid").lt(4)):
            p.barrier()
        with pytest.raises(EmulationError, match="divergent"):
            emulate_warp(p)

    def test_default_memory_is_deterministic(self):
        a = MemoryImage()
        b = MemoryImage()
        assert a.read(12345) == b.read(12345)


class TestKernelEmulation:
    def _program(self):
        p = Program()
        g = Special("gtid")
        x = p.load_global(g * 4 + 0x10000)
        with p.if_((x % 2).eq(0)):
            p.store_global(g * 4 + 0x20000, x // 2)
        with p.else_():
            p.store_global(g * 4 + 0x20000, x * 3 + 1)
        return p

    def test_kernel_trace_shape(self):
        trace = emulate_kernel(self._program(), threads_per_cta=64, num_ctas=3)
        assert trace.launch.num_ctas == 3
        assert trace.launch.warps_per_cta == 2
        assert trace.total_ops > 0

    def test_compiles_and_simulates(self):
        from repro.compiler import compile_kernel
        from repro.core import partitioned_baseline
        from repro.sm import simulate

        trace = emulate_kernel(self._program(), threads_per_cta=64, num_ctas=2)
        r = simulate(compile_kernel(trace), partitioned_baseline())
        assert r.cycles > 0
        assert r.instructions == trace.total_ops

    def test_inter_cta_memory_visibility(self):
        # CTA 0 writes, CTA 1 reads the same location (in-order CTAs).
        p = Program()
        cta = Special("cta")
        with p.if_(cta.eq(0)):
            p.store_global(Special("tid") * 4 + 0x900, Special("tid") + 100)
        with p.else_():
            v = p.load_global(Special("tid") * 4 + 0x900)
            p.store_global(Special("tid") * 4 + 0xA00, v)
        trace = emulate_kernel(p, threads_per_cta=32, num_ctas=2)
        # Find the CTA-1 store's value via a fresh re-run with an image.
        gmem = MemoryImage()
        emulate_warp(p, cta=0, gmem=gmem)
        emulate_warp(p, cta=1, gmem=gmem)
        assert gmem.read(0xA00) == 100

    def test_divergent_warp_barrier_counts_rejected_at_cta_level(self):
        # Warp-varying barrier execution is structurally illegal.
        p = Program()
        with p.if_(Special("warp").eq(0)):
            p.barrier()
        with pytest.raises(ValueError, match="barriers"):
            emulate_kernel(p, threads_per_cta=64, num_ctas=1)
