"""Regenerate the golden SimResult fixtures in this directory.

Usage::

    PYTHONPATH=src python tests/golden/generate.py

Only run this when a *deliberate* model change moves cycle counts; the
whole point of the fixtures is that performance work on the simulator
must reproduce them bit-for-bit (see docs/performance.md, section
"cycle-identity contract").  Refresh EXPERIMENTS.md and
tests/integration/test_golden.py alongside.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import fermi_like, partitioned_baseline
from repro.experiments.runner import Runner
from repro.sm.serialize import result_to_dict

#: (kernel, design-name) cases pinned by tests/integration/test_golden_results.py.
KERNELS = ("vectoradd", "matrixmul", "needle", "bfs", "dgemm", "aes")
DESIGNS = ("baseline", "fermi0", "unified384")

HERE = Path(__file__).parent


def case_result(rn: Runner, kernel: str, design: str):
    """Simulate one golden case; mirrors the CLI's --design choices."""
    if design == "baseline":
        return rn.simulate(kernel, partitioned_baseline())
    if design == "fermi0":
        return rn.simulate(kernel, fermi_like(0))
    if design == "unified384":
        result, _ = rn.unified(kernel, total_kb=384)
        return result
    raise ValueError(f"unknown design {design!r}")


def main() -> None:
    rn = Runner("tiny")
    for kernel in KERNELS:
        for design in DESIGNS:
            result = case_result(rn, kernel, design)
            path = HERE / f"{kernel}__{design}.json"
            path.write_text(
                json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {path.name}: {result.cycles:.0f} cycles")


if __name__ == "__main__":
    main()
