"""Unit and integration tests for the SM timing simulator."""

import pytest

from repro.core import partitioned_baseline, partitioned_design
from repro.sm import SMConfig, simulate
from repro.sm.cta_scheduler import LaunchError
from tests.util import (
    compiled,
    multi_warp_kernel,
    single_warp_kernel,
    warp_alu_chain,
    warp_alu_independent,
    warp_streaming_loads,
    warp_with_barriers,
)

BASE = partitioned_baseline()


class TestComputeTiming:
    def test_independent_ops_are_issue_bound(self):
        k = compiled(single_warp_kernel(warp_alu_independent(100)))
        r = simulate(k, BASE)
        # One warp, one op per cycle: ~100 cycles.
        assert r.cycles == pytest.approx(100, abs=2)
        assert r.instructions == 100

    def test_dependent_chain_is_latency_bound(self):
        cfg = SMConfig()
        k = compiled(single_warp_kernel(warp_alu_chain(50)))
        r = simulate(k, BASE, cfg)
        # Each op waits for its predecessor's 8-cycle ALU latency.
        assert r.cycles == pytest.approx(50 * (cfg.alu_latency + 1), rel=0.1)

    def test_multiple_warps_hide_alu_latency(self):
        chain = warp_alu_chain(50)
        one = simulate(compiled(single_warp_kernel(chain)), BASE)
        many = simulate(
            compiled(multi_warp_kernel([chain] * 8)), BASE
        )
        # 8 warps interleave: total cycles grow far less than 8x.
        assert many.cycles < one.cycles * 2.5
        assert many.instructions == one.instructions * 8

    def test_deterministic(self):
        k = compiled(multi_warp_kernel([warp_alu_chain(30)] * 4, num_ctas=2))
        a = simulate(k, BASE)
        b = simulate(k, BASE)
        assert a.cycles == b.cycles
        assert a.dram_accesses == b.dram_accesses


class TestMemoryTiming:
    def test_cold_loads_pay_dram_latency(self):
        cfg = SMConfig()
        k = compiled(single_warp_kernel(warp_streaming_loads(10)))
        r = simulate(k, BASE, cfg)
        # Each load misses and its consumer waits ~400+ cycles.
        assert r.cycles > 10 * cfg.dram_latency * 0.9
        assert r.cache_stats.read_misses == 10

    def test_rereads_hit_in_cache(self):
        from repro.isa import WarpBuilder

        b = WarpBuilder()
        for _ in range(3):
            for i in range(8):
                v = b.load_global([i * 128 + 4 * t for t in range(32)])
                b.touch(v)
        k = compiled(single_warp_kernel(b.ops))
        r = simulate(k, BASE)
        assert r.cache_stats.read_misses == 8
        assert r.cache_stats.read_hits == 16
        # 8 line fills, one DRAM access each.
        assert r.dram_accesses == 8
        assert r.dram_bytes == 8 * 128

    def test_zero_cache_counts_sector_traffic(self):
        k = compiled(single_warp_kernel(warp_streaming_loads(6)))
        no_cache = partitioned_design(256, 64, 0)
        r = simulate(k, no_cache)
        assert not r.cache_stats.read_hits
        # Each 128B warp load = 4 sectors.
        assert r.dram_accesses == 24

    def test_store_traffic_is_counted(self):
        from repro.isa import WarpBuilder

        b = WarpBuilder()
        v = b.iconst()
        b.store_global([4 * t for t in range(32)], v)
        r = simulate(compiled(single_warp_kernel(b.ops)), BASE)
        # Write-through traffic behind a cache is combined into one
        # per-line burst; the 128 written bytes are still accounted.
        assert r.dram_accesses == 1
        assert r.dram_bytes == 128
        assert r.cache_stats.write_misses == 1

    def test_store_traffic_without_cache_counts_sectors(self):
        from repro.isa import WarpBuilder

        b = WarpBuilder()
        v = b.iconst()
        b.store_global([4 * t for t in range(32)], v)
        r = simulate(compiled(single_warp_kernel(b.ops)), partitioned_design(256, 64, 0))
        assert r.dram_accesses == 4  # four 32-byte sector writes
        assert r.dram_bytes == 128

    def test_dram_bandwidth_bound_workload(self):
        # 64 distinct lines streamed by one warp: at least 64*16 cycles of
        # pure transfer time at 8 B/cycle.
        k = compiled(single_warp_kernel(warp_streaming_loads(64)))
        r = simulate(k, BASE)
        assert r.cycles >= 64 * 16

    def test_more_threads_tolerate_latency(self):
        streams = [warp_streaming_loads(16, base=i * (1 << 20)) for i in range(8)]
        k8 = compiled(multi_warp_kernel(streams))
        k1 = compiled(single_warp_kernel(streams[0]))
        r8 = simulate(k8, BASE)
        r1 = simulate(k1, BASE)
        # 8 warps of independent streams overlap their misses.
        per_warp_8 = r8.cycles
        assert per_warp_8 < r1.cycles * 8 * 0.5


class TestBarriers:
    def test_barrier_joins_warps(self):
        fast = warp_with_barriers(3, alu_per_phase=1)
        slow = warp_with_barriers(3, alu_per_phase=20)
        r = simulate(compiled(multi_warp_kernel([fast, slow])), BASE)
        # The fast warp must wait: runtime tracks the slow warp.
        slow_alone = simulate(compiled(single_warp_kernel(slow)), BASE)
        assert r.cycles >= slow_alone.cycles

    def test_barrier_only_warps_complete(self):
        from repro.isa import WarpBuilder

        ops = []
        for _ in range(2):
            b = WarpBuilder()
            b.iconst()
            b.barrier()
            ops.append(b.ops)
        r = simulate(compiled(multi_warp_kernel(ops)), BASE)
        assert r.instructions == 4


class TestOccupancyIntegration:
    def test_ctas_sequenced_when_capacity_bound(self):
        # 16 KB of shared memory per CTA: only 4 fit in 64 KB.
        chain = warp_alu_chain(40)
        k = compiled(
            multi_warp_kernel([chain], smem_bytes_per_cta=16 * 1024, num_ctas=8)
        )
        r = simulate(k, BASE)
        assert r.resident_ctas == 4
        assert r.instructions == 8 * 40

    def test_thread_target_caps_parallelism(self):
        streams = [warp_streaming_loads(12, base=i * (1 << 20)) for i in range(8)]
        k = compiled(multi_warp_kernel(streams, num_ctas=4))
        wide = simulate(k, BASE, thread_target=1024)
        narrow = simulate(k, BASE, thread_target=256)
        assert narrow.resident_threads == 256
        assert wide.resident_threads > narrow.resident_threads
        assert narrow.cycles > wide.cycles  # less latency hiding

    def test_unfittable_kernel_raises(self):
        k = compiled(single_warp_kernel(warp_alu_chain(4), smem_bytes_per_cta=1 << 20))
        with pytest.raises(LaunchError):
            simulate(k, BASE)


class TestSpillInteraction:
    def _pressure_kernel(self):
        from repro.isa import WarpBuilder

        b = WarpBuilder()
        pool = [b.iconst() for _ in range(24)]
        for r in range(6):
            x = b.load_global([r * 4096 + 4 * t for t in range(32)])
            for acc in pool:
                b.alu_into(acc, x)
        for acc in pool:
            b.touch(acc)
        return single_warp_kernel(b.ops)

    def test_spills_slow_execution_and_add_traffic(self):
        trace = self._pressure_kernel()
        full = simulate(compiled(trace), BASE)
        tight = simulate(compiled(trace, regs=8), BASE)
        assert tight.instructions > full.instructions
        assert tight.cycles > full.cycles
        assert tight.dram_accesses >= full.dram_accesses


class TestCounters:
    def test_energy_counts_populated(self):
        k = compiled(single_warp_kernel(warp_streaming_loads(8)))
        r = simulate(k, BASE)
        c = r.energy_counts
        assert c.mrf_writes >= 8  # every load result returns to the MRF
        assert c.tag_lookups == 8
        assert c.cache_row_reads == 8 * 8
        assert c.dram_bits == r.dram_bytes * 8

    def test_zero_cache_partition_records_no_tag_lookups(self):
        # Regression: a 0 KB cache has no tag array, yet the simulator
        # used to count one tag lookup per coalesced line and the energy
        # model then priced tag energy for hardware that does not exist.
        k = compiled(single_warp_kernel(warp_streaming_loads(8)))
        r = simulate(k, partitioned_design(256, 512, 0))
        assert r.energy_counts.tag_lookups == 0
        assert r.energy_counts.cache_rows == 0
        # The cached-path accounting is unchanged when a cache exists.
        assert simulate(k, BASE).energy_counts.tag_lookups == 8

    def test_histogram_covers_all_instructions(self):
        k = compiled(single_warp_kernel(warp_alu_independent(50)))
        r = simulate(k, BASE)
        # Barriers do not reach the banks; everything else does.
        assert r.conflict_histogram.total == 50

    def test_summary_readable(self):
        k = compiled(single_warp_kernel(warp_alu_independent(10)))
        r = simulate(k, BASE)
        assert "cycles" in r.summary()
        assert r.ipc > 0
